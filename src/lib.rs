//! # pardis — a parallel approach to CORBA
//!
//! A from-scratch Rust reproduction of **PARDIS** (Katarzyna Keahey and
//! Dennis Gannon, *PARDIS: A Parallel Approach to CORBA*, HPDC 1997):
//! CORBA-style middleware extended with **SPMD objects** and
//! **distributed sequences**, so that a request broker can interact
//! directly with the distributed resources of parallel applications.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`pardis_core`] — the ORB: SPMD objects, distributed sequences,
//!   futures, naming, and the two distributed-argument transfer methods
//!   (centralized §3.2 and multi-port §3.3),
//! * [`pardis_idl`] — the IDL compiler (CORBA IDL + `dsequence`),
//! * [`pardis_rts`] — the generic run-time system interface (MPI-like),
//! * [`pardis_net`] — hosts, ports, rate-limited links, GIOP-style
//!   messages, object references,
//! * [`pardis_cdr`] — CDR marshaling,
//! * [`pardis_sim`] — a discrete-event simulator of the paper's 1997
//!   testbed that regenerates its tables and figure,
//! * [`stubs`] — Rust stubs generated **at build time** from the IDL
//!   files in `examples/idl/` (see `build.rs`),
//! * [`apps`] — the example servant implementations shared by the
//!   runnable examples, tests, and benchmarks.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use pardis::prelude::*;
//! use pardis::apps::diffusion::DiffusionServant;
//! use pardis::stubs::diffusion::{diff_objectProxy, diff_objectSkeleton};
//!
//! let world = World::new(LinkSpec::unlimited());
//! // Parallel application A: a 4-thread SPMD diffusion object.
//! let server = world.spawn_machine("HOST1", 4, |ctx| {
//!     diff_objectSkeleton::register(&ctx, "example", DiffusionServant::new(), vec![]).unwrap();
//!     ctx.serve_forever().unwrap();
//! });
//! // Parallel application B: a 2-thread SPMD client.
//! let client = world.spawn_machine("HOST2", 2, |ctx| {
//!     let diff = diff_objectProxy::_spmd_bind(&ctx, "example", Some("HOST1")).unwrap();
//!     let mut my_diff_array = DSequence::<f64>::new(ctx.rts(), 64, None).unwrap();
//!     for x in my_diff_array.local_data_mut() { *x = 1.0; }
//!     diff.diffusion(&ctx, 8, &mut my_diff_array).unwrap();
//!     let heat = diff.total_heat(&ctx, &my_diff_array).unwrap();
//!     if ctx.is_comm_thread() {
//!         ctx.send_shutdown(diff.proxy.objref()).unwrap();
//!     }
//!     heat
//! });
//! assert_eq!(client.join(), vec![64.0, 64.0]);
//! server.join();
//! ```

pub use pardis_cdr;
pub use pardis_core;
pub use pardis_idl;
pub use pardis_net;
pub use pardis_rts;
pub use pardis_sim;

pub use pardis_core::prelude;

/// Rust stubs generated from `examples/idl/*.idl` by `build.rs` using
/// the PARDIS IDL compiler.
pub mod stubs {
    /// Stubs for `examples/idl/diffusion.idl` — the paper's running
    /// example.
    #[allow(
        non_camel_case_types,
        non_snake_case,
        dead_code,
        unused_mut,
        unused_variables,
        clippy::derivable_impls,
        clippy::needless_return
    )]
    pub mod diffusion {
        include!(concat!(env!("OUT_DIR"), "/diffusion.rs"));
    }
    /// Stubs for `examples/idl/simulation.idl` — the multi-application
    /// demo (vector service + monitor).
    #[allow(
        non_camel_case_types,
        non_snake_case,
        dead_code,
        unused_mut,
        unused_variables,
        clippy::derivable_impls,
        clippy::needless_return
    )]
    pub mod simulation {
        include!(concat!(env!("OUT_DIR"), "/simulation.rs"));
    }
    /// Stubs for `examples/idl/types.idl` — the full-type-system
    /// exercise.
    #[allow(
        non_camel_case_types,
        non_snake_case,
        dead_code,
        unused_mut,
        unused_variables,
        clippy::derivable_impls,
        clippy::needless_return
    )]
    pub mod types {
        include!(concat!(env!("OUT_DIR"), "/types.rs"));
    }
}

pub mod apps;
