//! The paper's running example: a parallel diffusion simulation exposed
//! as an SPMD object.
//!
//! Each computing thread of the server owns a block of the diffusion
//! array; one timestep is a 3-point stencil with nearest-neighbour halo
//! exchange over the PARDIS run-time system interface — a genuinely
//! parallel computation, not a mock.

use crate::stubs::diffusion::{diff_objectImpl, diffusion_failed};
use pardis_core::{DSequence, OrbCtx, PardisError, PardisResult};
use pardis_rts::Endpoint;

/// Tag space for the halo exchange (user tags, below the RTS reserved
/// range).
const HALO_LEFT: u32 = 0x1001;
const HALO_RIGHT: u32 = 0x1002;

/// One computing thread's share of the diffusion object.
#[derive(Debug, Default)]
pub struct DiffusionServant {
    steps_completed: i32,
}

impl DiffusionServant {
    /// Create a fresh servant (register one per computing thread).
    pub fn new() -> DiffusionServant {
        DiffusionServant::default()
    }
}

impl diff_objectImpl for DiffusionServant {
    fn diffusion(
        &mut self,
        ctx: &OrbCtx,
        timestep: i32,
        darray: &mut DSequence<f64>,
    ) -> PardisResult<()> {
        if timestep < 0 {
            // The IDL-declared exception.
            return Err(PardisError::UserException(diffusion_failed::NAME.into()));
        }
        diffuse_steps(ctx.rts(), darray, timestep as usize)?;
        self.steps_completed += timestep;
        Ok(())
    }

    fn total_heat(&mut self, ctx: &OrbCtx, darray: &DSequence<f64>) -> PardisResult<f64> {
        let local: f64 = darray.local_data().iter().sum();
        Ok(ctx
            .rts()
            .allreduce_f64(&[local], pardis_rts::ReduceOp::Sum)
            .map_err(PardisError::from)?[0])
    }

    fn _get_steps_completed(&mut self, _ctx: &OrbCtx) -> PardisResult<i32> {
        Ok(self.steps_completed)
    }
}

/// Run `steps` diffusion timesteps over a distributed array, exchanging
/// one-element halos with block neighbours each step. The stencil is
/// `u[i] <- u[i-1]/4 + u[i]/2 + u[i+1]/4` with reflecting boundaries, so
/// total heat is conserved.
pub fn diffuse_steps(rts: &Endpoint, arr: &mut DSequence<f64>, steps: usize) -> PardisResult<()> {
    let rank = rts.rank();
    let size = rts.size();
    for _ in 0..steps {
        let local = arr.local_data_mut();
        let n = local.len();
        let left_edge = local.first().copied().unwrap_or(0.0);
        let right_edge = local.last().copied().unwrap_or(0.0);
        // Post sends first; the in-process RTS buffers them, so this
        // cannot deadlock regardless of rank order.
        if rank > 0 {
            rts.send(
                rank - 1,
                HALO_LEFT,
                bytes::Bytes::copy_from_slice(&left_edge.to_le_bytes()),
            )
            .map_err(PardisError::from)?;
        }
        if rank + 1 < size {
            rts.send(
                rank + 1,
                HALO_RIGHT,
                bytes::Bytes::copy_from_slice(&right_edge.to_le_bytes()),
            )
            .map_err(PardisError::from)?;
        }
        let mut left_halo = None;
        let mut right_halo = None;
        if rank + 1 < size {
            let b = rts.recv(rank + 1, HALO_LEFT).map_err(PardisError::from)?;
            right_halo = Some(f64::from_le_bytes(b[..8].try_into().expect("8 bytes")));
        }
        if rank > 0 {
            let b = rts.recv(rank - 1, HALO_RIGHT).map_err(PardisError::from)?;
            left_halo = Some(f64::from_le_bytes(b[..8].try_into().expect("8 bytes")));
        }
        if n == 0 {
            continue;
        }
        let old = local.to_vec();
        for i in 0..n {
            let l = if i == 0 {
                left_halo.unwrap_or(old[0])
            } else {
                old[i - 1]
            };
            let r = if i == n - 1 {
                right_halo.unwrap_or(old[n - 1])
            } else {
                old[i + 1]
            };
            local[i] = 0.25 * l + 0.5 * old[i] + 0.25 * r;
        }
    }
    Ok(())
}

/// Sequential reference implementation, for verification.
pub fn reference_diffusion(data: &mut [f64], steps: usize) {
    let n = data.len();
    for _ in 0..steps {
        let old = data.to_vec();
        for i in 0..n {
            let l = if i == 0 { old[0] } else { old[i - 1] };
            let r = if i == n - 1 { old[n - 1] } else { old[i + 1] };
            data[i] = 0.25 * l + 0.5 * old[i] + 0.25 * r;
        }
    }
}

/// Workload generator: a hot spot in the middle of a cold bar, the
/// classic diffusion initial condition.
pub fn hot_spot(len: usize) -> Vec<f64> {
    let mut v = vec![0.0; len];
    if len > 0 {
        let mid = len / 2;
        v[mid] = 100.0;
        if mid > 0 {
            v[mid - 1] = 50.0;
        }
        if mid + 1 < len {
            v[mid + 1] = 50.0;
        }
    }
    v
}
