//! Servant for `examples/idl/types.idl`: a sample collector exercising
//! the non-distributed parts of the IDL mapping (structs, enums,
//! sequences, exceptions, attributes, oneway).

use crate::stubs::types::typetest::{bad_sample, collectorImpl, Batch, Mode, Sample};
use pardis_core::{OrbCtx, PardisError, PardisResult};

/// Collects [`Sample`]s; rejects invalid ones with the IDL exception.
#[derive(Debug)]
pub struct CollectorServant {
    samples: Vec<Sample>,
    mode: Mode,
    threshold: f64,
    total_added: i32,
}

impl Default for CollectorServant {
    fn default() -> Self {
        CollectorServant {
            samples: Vec::new(),
            mode: Mode::SAFE,
            threshold: 0.5,
            total_added: 0,
        }
    }
}

impl CollectorServant {
    /// Create an empty collector.
    pub fn new() -> CollectorServant {
        CollectorServant::default()
    }
}

impl collectorImpl for CollectorServant {
    fn add(&mut self, _ctx: &OrbCtx, s: &Sample) -> PardisResult<i32> {
        if !s.valid {
            return Err(PardisError::UserException(bad_sample::NAME.into()));
        }
        self.samples.push(s.clone());
        self.total_added += 1;
        Ok(self.samples.len() as i32)
    }

    fn stats(
        &mut self,
        _ctx: &OrbCtx,
        running_mean: &mut f64,
        count: &mut i32,
    ) -> PardisResult<()> {
        *count = self.samples.len() as i32;
        let sum: f64 = self.samples.iter().map(|s| s.value).sum();
        let mean = if self.samples.is_empty() {
            0.0
        } else {
            sum / self.samples.len() as f64
        };
        // inout semantics: blend the caller's running mean with ours.
        *running_mean = (*running_mean + mean) / 2.0;
        Ok(())
    }

    fn summarize(&mut self, _ctx: &OrbCtx, label: &str) -> PardisResult<Batch> {
        Ok(Batch {
            label: label.to_string(),
            values: self.samples.iter().map(|s| s.value).collect(),
        })
    }

    fn dump(&mut self, _ctx: &OrbCtx) -> PardisResult<Vec<Sample>> {
        Ok(self.samples.clone())
    }

    fn set_mode(&mut self, _ctx: &OrbCtx, m: Mode) -> PardisResult<()> {
        self.mode = m;
        Ok(())
    }

    fn mode(&mut self, _ctx: &OrbCtx) -> PardisResult<Mode> {
        Ok(self.mode)
    }

    fn checksum(&mut self, _ctx: &OrbCtx, data: &[u8]) -> PardisResult<u64> {
        // FNV-1a, deterministic across both sides.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Ok(h)
    }

    fn reset(&mut self, _ctx: &OrbCtx) -> PardisResult<()> {
        self.samples.clear();
        Ok(())
    }

    fn _get_total_added(&mut self, _ctx: &OrbCtx) -> PardisResult<i32> {
        Ok(self.total_added)
    }

    fn _get_threshold(&mut self, _ctx: &OrbCtx) -> PardisResult<f64> {
        Ok(self.threshold)
    }

    fn _set_threshold(&mut self, _ctx: &OrbCtx, value: f64) -> PardisResult<()> {
        self.threshold = value;
        Ok(())
    }
}
