//! Servants for `examples/idl/simulation.idl`: a parallel vector
//! service and a monitoring unit.

use crate::stubs::simulation::pardis_demo::{monitorImpl, vector_serviceImpl, Stats};
use pardis_core::{DSequence, OrbCtx, PardisError, PardisResult};
use pardis_rts::ReduceOp;

/// One computing thread's share of the vector service.
#[derive(Debug, Default)]
pub struct VectorServant;

impl VectorServant {
    /// Create a fresh servant.
    pub fn new() -> VectorServant {
        VectorServant
    }
}

fn allreduce(ctx: &OrbCtx, v: f64, op: ReduceOp) -> PardisResult<f64> {
    Ok(ctx
        .rts()
        .allreduce_f64(&[v], op)
        .map_err(PardisError::from)?[0])
}

impl vector_serviceImpl for VectorServant {
    fn dot(&mut self, ctx: &OrbCtx, a: &DSequence<f64>, b: &DSequence<f64>) -> PardisResult<f64> {
        if a.len() != b.len() {
            return Err(PardisError::BadDistArg(format!(
                "dot of length {} with length {}",
                a.len(),
                b.len()
            )));
        }
        let local: f64 = a
            .local_data()
            .iter()
            .zip(b.local_data())
            .map(|(x, y)| x * y)
            .sum();
        allreduce(ctx, local, ReduceOp::Sum)
    }

    fn scale(&mut self, _ctx: &OrbCtx, factor: f64, v: &mut DSequence<f64>) -> PardisResult<()> {
        for x in v.local_data_mut() {
            *x *= factor;
        }
        Ok(())
    }

    fn stats(&mut self, ctx: &OrbCtx, v: &DSequence<f64>) -> PardisResult<Stats> {
        let (mut lmin, mut lmax, mut lsum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for &x in v.local_data() {
            lmin = lmin.min(x);
            lmax = lmax.max(x);
            lsum += x;
        }
        let min = allreduce(ctx, lmin, ReduceOp::Min)?;
        let max = allreduce(ctx, lmax, ReduceOp::Max)?;
        let sum = allreduce(ctx, lsum, ReduceOp::Sum)?;
        let n = v.len().max(1) as f64;
        Ok(Stats {
            min,
            max,
            mean: sum / n,
        })
    }

    fn axpy(
        &mut self,
        _ctx: &OrbCtx,
        alpha: f64,
        x: &DSequence<f64>,
        y: &mut DSequence<f64>,
    ) -> PardisResult<()> {
        if x.len() != y.len() {
            return Err(PardisError::BadDistArg(format!(
                "axpy of length {} with length {}",
                x.len(),
                y.len()
            )));
        }
        for (yi, xi) in y.local_data_mut().iter_mut().zip(x.local_data()) {
            *yi += alpha * xi;
        }
        Ok(())
    }
}

/// The monitoring unit: counts and remembers progress reports. Usually a
/// 1-thread object, but works SPMD too.
#[derive(Debug, Default)]
pub struct MonitorServant {
    reports: Vec<(String, f64)>,
}

impl MonitorServant {
    /// Create a fresh monitor.
    pub fn new() -> MonitorServant {
        MonitorServant::default()
    }

    /// Reports received so far (inspection for tests).
    pub fn reports(&self) -> &[(String, f64)] {
        &self.reports
    }
}

impl monitorImpl for MonitorServant {
    fn report(&mut self, _ctx: &OrbCtx, stage: &str, value: f64) -> PardisResult<()> {
        self.reports.push((stage.to_string(), value));
        Ok(())
    }

    fn _get_reports_received(&mut self, _ctx: &OrbCtx) -> PardisResult<i32> {
        Ok(self.reports.len() as i32)
    }
}
