//! Example servant implementations shared by the runnable examples,
//! integration tests, and benchmarks.
//!
//! Each submodule implements one of the IDL interfaces in
//! `examples/idl/` using the build-time-generated stubs in
//! [`crate::stubs`].

pub mod collector;
pub mod diffusion;
pub mod vector;
