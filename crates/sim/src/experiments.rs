//! Experiment drivers regenerating the paper's Tables 1 and 2 and
//! Figure 4 on the simulated testbed.

use crate::scripts::{centralized_invoke, multiport_invoke, CentralizedTiming, MultiportTiming};
use crate::testbed::Testbed;

/// The argument size used by the paper's tables: 2^19 doubles.
pub const TABLE_DOUBLES: u64 = 1 << 19;

/// Table 1: centralized method, server threads n ∈ {1,2,4,8} × client
/// threads c ∈ {2,4}, 2^19 doubles.
pub fn table1(tb: &Testbed) -> Vec<CentralizedTiming> {
    let mut rows = Vec::new();
    for &c in &[2usize, 4] {
        for &n in &[1usize, 2, 4, 8] {
            rows.push(centralized_invoke(tb, c, n, TABLE_DOUBLES * 8));
        }
    }
    rows
}

/// Table 2: multi-port method, server threads n ∈ {1,2,4,8} × client
/// threads c ∈ {1,2,4}, 2^19 doubles.
pub fn table2(tb: &Testbed) -> Vec<MultiportTiming> {
    let mut rows = Vec::new();
    for &c in &[1usize, 2, 4] {
        for &n in &[1usize, 2, 4, 8] {
            rows.push(multiport_invoke(tb, c, n, TABLE_DOUBLES * 8));
        }
    }
    rows
}

/// One point of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Sequence length in doubles.
    pub doubles: u64,
    /// Effective bandwidth of the centralized method, MB/s (payload
    /// bytes over total invocation time, "including all the invocation
    /// overhead").
    pub centralized_mbps: f64,
    /// Effective bandwidth of the multi-port method, MB/s.
    pub multiport_mbps: f64,
}

/// Figure 4: effective `in`-argument bandwidth vs sequence length at the
/// most powerful configuration considered (c = 4, n = 8), lengths
/// 10^1 .. 10^7 doubles (three points per decade).
pub fn figure4(tb: &Testbed) -> Vec<Fig4Point> {
    figure4_at(tb, 4, 8)
}

/// Figure 4 sweep at an arbitrary configuration.
pub fn figure4_at(tb: &Testbed, c: usize, n: usize) -> Vec<Fig4Point> {
    let mut points = Vec::new();
    let mut lens: Vec<u64> = Vec::new();
    let mut x = 10f64;
    while x <= 1.0e7 + 1.0 {
        lens.push(x as u64);
        x *= 10f64.powf(1.0 / 3.0);
    }
    for doubles in lens {
        let bytes = doubles * 8;
        let cen = centralized_invoke(tb, c, n, bytes);
        let mp = multiport_invoke(tb, c, n, bytes);
        points.push(Fig4Point {
            doubles,
            centralized_mbps: bytes as f64 / (cen.total_ns as f64 / 1e9) / 1e6,
            multiport_mbps: bytes as f64 / (mp.total_ns as f64 / 1e9) / 1e6,
        });
    }
    points
}

/// Peak effective bandwidth (MB/s, at which length in doubles) of each
/// method over a figure-4 sweep: `(centralized, multiport)`.
pub fn peaks(points: &[Fig4Point]) -> ((f64, u64), (f64, u64)) {
    let mut cen = (0.0f64, 0u64);
    let mut mp = (0.0f64, 0u64);
    for p in points {
        if p.centralized_mbps > cen.0 {
            cen = (p.centralized_mbps, p.doubles);
        }
        if p.multiport_mbps > mp.0 {
            mp = (p.multiport_mbps, p.doubles);
        }
    }
    (cen, mp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::paper_testbed;

    #[test]
    fn table1_shape() {
        let rows = table1(&paper_testbed());
        assert_eq!(rows.len(), 8);
        // Within each client group, T grows with n.
        for g in rows.chunks(4) {
            for w in g.windows(2) {
                assert!(
                    w[1].total_ns >= w[0].total_ns,
                    "T must grow with n: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        // And c=4 is slower than c=2 at equal n.
        for i in 0..4 {
            assert!(rows[i + 4].total_ns > rows[i].total_ns);
        }
    }

    #[test]
    fn table2_shape() {
        let rows = table2(&paper_testbed());
        assert_eq!(rows.len(), 12);
        // The most powerful configuration is the fastest overall.
        let best = rows.iter().map(|r| r.total_ns).min().unwrap();
        let c4n8 = rows.iter().find(|r| r.c == 4 && r.n == 8).unwrap().total_ns;
        assert!(c4n8 <= best + best / 10);
        // And it beats the weakest by a clear margin.
        let c1n1 = rows.iter().find(|r| r.c == 1 && r.n == 1).unwrap().total_ns;
        assert!((c4n8 as f64) < 0.85 * c1n1 as f64);
    }

    #[test]
    fn figure4_crossover() {
        let pts = figure4(&paper_testbed());
        // Small sizes: roughly equal (within 2x).
        let small = &pts[0];
        let r = small.multiport_mbps / small.centralized_mbps;
        assert!((0.5..2.0).contains(&r), "{small:?}");
        // Large sizes: multi-port clearly ahead.
        let large = pts.iter().find(|p| p.doubles >= 1 << 19).unwrap();
        assert!(
            large.multiport_mbps > 1.5 * large.centralized_mbps,
            "{large:?}"
        );
        // Peak bandwidths in the paper's regime.
        let ((cen_peak, _), (mp_peak, _)) = peaks(&pts);
        assert!(cen_peak > 5.0 && cen_peak < 16.0, "centralized {cen_peak}");
        assert!(mp_peak > 10.0 && mp_peak < 20.0, "multiport {mp_peak}");
    }
}
