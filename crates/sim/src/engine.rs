//! The virtual-time engine.
//!
//! Every computing thread carries its own clock; primitive operations
//! (compute, shared-memory copies, barriers, network flows) advance
//! those clocks. The one shared resource is the **link**: it carries one
//! ATM-style frame at a time, and a batch of concurrent flows is
//! serviced frame-by-frame in earliest-ready order, which is exactly
//! what lets concurrent senders slot their frames into each other's
//! descheduling gaps.

use crate::testbed::{LinkParams, MachineSpec};

/// Virtual nanoseconds since simulation start.
pub type SimTime = u64;

/// Identifies a computing thread as (machine index, thread index).
pub type ThreadId = (usize, usize);

/// One directed network transfer of `bytes` from a source thread to a
/// destination thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// Sending thread.
    pub src: ThreadId,
    /// Receiving thread.
    pub dst: ThreadId,
    /// Payload size.
    pub bytes: u64,
}

/// The simulator state: machines, per-thread clocks, the shared link.
#[derive(Debug, Clone)]
pub struct Sim {
    machines: Vec<MachineSpec>,
    /// Per-machine per-thread clocks.
    clocks: Vec<Vec<SimTime>>,
    link: LinkParams,
    link_free: SimTime,
    /// Wire time accumulated on the link (utilization accounting).
    pub wire_busy: SimTime,
}

impl Sim {
    /// Create a simulation over `machines` joined by one shared link.
    pub fn new(machines: Vec<MachineSpec>, link: LinkParams) -> Sim {
        let clocks = machines.iter().map(|m| vec![0; m.threads]).collect();
        Sim {
            machines,
            clocks,
            link,
            link_free: 0,
            wire_busy: 0,
        }
    }

    /// A machine's description.
    pub fn machine(&self, m: usize) -> &MachineSpec {
        &self.machines[m]
    }

    /// Current clock of a thread.
    pub fn now(&self, th: ThreadId) -> SimTime {
        self.clocks[th.0][th.1]
    }

    /// Force a thread's clock forward to at least `t`.
    pub fn wait_until(&mut self, th: ThreadId, t: SimTime) {
        let c = &mut self.clocks[th.0][th.1];
        if *c < t {
            *c = t;
        }
    }

    /// Busy a thread for `dur`.
    pub fn advance(&mut self, th: ThreadId, dur: SimTime) {
        self.clocks[th.0][th.1] += dur;
    }

    /// Process `bytes` at `rate` bytes/sec on a thread (marshaling,
    /// unmarshaling, local copies).
    pub fn compute(&mut self, th: ThreadId, bytes: u64, rate: f64) {
        let dur = (bytes as f64 / rate * 1e9) as SimTime;
        self.advance(th, dur);
    }

    /// Intra-machine message: the sender copies `bytes` through shared
    /// memory, the receiver copies them out; completion is a rendezvous.
    /// This is MPICH-over-shm — the substrate of the centralized
    /// method's gather and scatter.
    pub fn shm_transfer(&mut self, from: ThreadId, to: ThreadId, bytes: u64) {
        debug_assert_eq!(from.0, to.0, "shm transfer within one machine");
        let m = &self.machines[from.0];
        let copy = (bytes as f64 / m.shm_rate * 1e9) as SimTime;
        let start = self.now(from).max(self.now(to));
        // Sender writes the buffer, then the receiver reads it.
        let sent = start + copy + m.shm_latency_ns;
        let done = sent + copy;
        self.wait_until(from, sent);
        self.wait_until(to, done);
    }

    /// Barrier across all threads of a machine: everyone advances to the
    /// latest participant. Returns per-thread wait times.
    pub fn barrier(&mut self, machine: usize) -> Vec<SimTime> {
        let max = *self.clocks[machine].iter().max().expect("threads exist");
        self.clocks[machine]
            .iter_mut()
            .map(|c| {
                let wait = max - *c;
                *c = max;
                wait
            })
            .collect()
    }

    /// A small control message over the link (request headers, replies):
    /// one frame of `bytes`, paying latency and per-side syscall costs.
    pub fn small_message(&mut self, from: ThreadId, to: ThreadId, bytes: u64) {
        let done = self.flow_set(&[Flow {
            src: from,
            dst: to,
            bytes,
        }]);
        debug_assert_eq!(done.len(), 1);
    }

    /// Service a batch of concurrent flows over the shared link,
    /// frame-by-frame. Returns each flow's completion time (both
    /// endpoint clocks are advanced).
    ///
    /// Semantics:
    /// * a thread sends its flows in the order given (a thread cannot
    ///   overlap its own sends — it is one OS thread);
    /// * the link carries one frame at a time; among ready flows the
    ///   earliest-ready one transmits next, so concurrent flows
    ///   interleave at frame granularity;
    /// * after each frame the sending and receiving threads pay their
    ///   machine's per-frame cost (syscall + descheduling penalty) —
    ///   this is the §3.2 scheduler interference: the *link* is free
    ///   during that gap, and only another active flow can use it.
    pub fn flow_set(&mut self, flows: &[Flow]) -> Vec<SimTime> {
        #[derive(Debug)]
        struct Active {
            idx: usize,
            src: ThreadId,
            dst: ThreadId,
            remaining: u64,
            /// Earliest time the *sender* can put the next frame on the
            /// wire.
            src_ready: SimTime,
            /// Earliest time the *receiver* can accept the next frame.
            dst_ready: SimTime,
            /// Service counter for round-robin fairness among flows
            /// that are ready at the same instant.
            last_served: u64,
            started: bool,
        }

        let mut done = vec![0; flows.len()];
        if flows.is_empty() {
            return done;
        }

        // Per-sender and per-receiver FIFOs. A thread sends its flows
        // in order (one OS thread), and a receiving thread posts its
        // rendezvous receives in order too — the MPI-style ordered
        // receive that sequentializes two clients feeding one server
        // thread (the paper's c=2, n=1 observation in §3.3).
        let mut sender_q: std::collections::HashMap<ThreadId, std::collections::VecDeque<usize>> =
            std::collections::HashMap::new();
        let mut recv_q: std::collections::HashMap<ThreadId, std::collections::VecDeque<usize>> =
            std::collections::HashMap::new();
        for (i, f) in flows.iter().enumerate() {
            sender_q.entry(f.src).or_default().push_back(i);
            recv_q.entry(f.dst).or_default().push_back(i);
        }

        let mut active: Vec<Active> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| Active {
                idx: i,
                src: f.src,
                dst: f.dst,
                remaining: f.bytes.max(1),
                src_ready: self.now(f.src) + self.link.latency_ns,
                dst_ready: self.now(f.dst),
                last_served: 0,
                started: false,
            })
            .collect();
        let mut serve_counter: u64 = 0;

        while !active.is_empty() {
            // Choose the eligible flow (head of both its sender's and
            // receiver's queues) that can start its next frame earliest;
            // break ties round-robin (least recently served) so flows
            // that became ready together interleave fairly instead of
            // one monopolizing the wire.
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (ai, a) in active.iter().enumerate() {
                if sender_q[&a.src].front().copied() != Some(a.idx)
                    || recv_q[&a.dst].front().copied() != Some(a.idx)
                {
                    continue;
                }
                let start = a.src_ready.max(a.dst_ready).max(self.link_free);
                let key = (start, a.last_served);
                match best {
                    None => best = Some((ai, start, a.last_served)),
                    Some((_, bs, bl)) if key < (bs, bl) => best = Some((ai, start, a.last_served)),
                    _ => {}
                }
            }
            let (ai, start, _) = best.expect("some sender queue head is active");
            serve_counter += 1;
            active[ai].last_served = serve_counter;
            let a = &mut active[ai];
            let frame = a.remaining.min(self.link.mtu);
            let wire = ((frame + self.link.per_frame_overhead) as f64 / self.link.bandwidth * 1e9)
                as SimTime;
            let wire_done = start + wire;
            self.link_free = wire_done;
            self.wire_busy += wire;
            a.started = true;
            // Per-frame endpoint costs: syscall plus descheduling
            // penalty (the sender/receiver may not run again
            // immediately; the wire is idle for them — but not for other
            // flows).
            let src_cost = self.machines[a.src.0].per_frame_cost_ns();
            let dst_cost = self.machines[a.dst.0].per_frame_cost_ns();
            a.src_ready = wire_done + src_cost;
            a.dst_ready = wire_done + dst_cost;
            a.remaining -= frame;
            if a.remaining == 0 {
                let idx = a.idx;
                let src = a.src;
                let dst = a.dst;
                let src_fin = a.src_ready;
                let dst_fin = a.dst_ready;
                done[idx] = dst_fin;
                self.wait_until(src, src_fin);
                self.wait_until(dst, dst_fin);
                sender_q.get_mut(&src).expect("queue exists").pop_front();
                recv_q.get_mut(&dst).expect("queue exists").pop_front();
                active.swap_remove(ai);
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{LinkParams, MachineSpec};

    fn machine(threads: usize) -> MachineSpec {
        MachineSpec {
            name: "m".into(),
            processors: 4,
            threads,
            pack_rate: 100e6,
            shm_rate: 200e6,
            shm_latency_ns: 1_000,
            syscall_ns: 10_000,
            desched_step_ns: 100_000,
            desched_slope_ns: 0,
            background_load: 1,
        }
    }

    fn link() -> LinkParams {
        LinkParams {
            bandwidth: 10e6, // 10 MB/s
            latency_ns: 0,
            mtu: 1000,
            per_frame_overhead: 0,
        }
    }

    #[test]
    fn compute_advances_clock() {
        let mut sim = Sim::new(vec![machine(2)], link());
        sim.compute((0, 0), 1_000_000, 100e6); // 10 ms
        assert_eq!(sim.now((0, 0)), 10_000_000);
        assert_eq!(sim.now((0, 1)), 0);
    }

    #[test]
    fn barrier_aligns_clocks_and_reports_waits() {
        let mut sim = Sim::new(vec![machine(3)], link());
        sim.advance((0, 0), 100);
        sim.advance((0, 2), 300);
        let waits = sim.barrier(0);
        assert_eq!(waits, vec![200, 300, 0]);
        for t in 0..3 {
            assert_eq!(sim.now((0, t)), 300);
        }
    }

    #[test]
    fn shm_transfer_rendezvous() {
        let mut sim = Sim::new(vec![machine(2)], link());
        sim.shm_transfer((0, 0), (0, 1), 2_000_000); // 10 ms per copy side
                                                     // Sender: copy 10ms + 1us latency; receiver: +10ms more.
        assert_eq!(sim.now((0, 0)), 10_001_000);
        assert_eq!(sim.now((0, 1)), 20_001_000);
    }

    #[test]
    fn single_flow_wire_time() {
        let mut sim = Sim::new(vec![machine(1), machine(1)], link());
        // 10_000 bytes at 10 MB/s = 1 ms wire in 10 frames, plus
        // 10 frames of per-side costs on the endpoint clocks.
        sim.flow_set(&[Flow {
            src: (0, 0),
            dst: (1, 0),
            bytes: 10_000,
        }]);
        let wire_ms = 1.0;
        assert!(sim.wire_busy as f64 / 1e6 >= wire_ms * 0.99);
        // Endpoint finishes after wire + its per-frame costs; frames do
        // not pipeline for a single flow (the sender stalls each gap).
        assert!(sim.now((1, 0)) > sim.wire_busy);
    }

    #[test]
    fn concurrent_flows_interleave() {
        // Two flows from different sender threads: total time should be
        // close to the pure wire time of both, because each sender's
        // per-frame gap is filled by the other flow. One flow alone of
        // 2x bytes pays every gap.
        let n = 100_000u64;
        let mut solo = Sim::new(vec![machine(2), machine(2)], link());
        solo.flow_set(&[Flow {
            src: (0, 0),
            dst: (1, 0),
            bytes: 2 * n,
        }]);
        let t_solo = solo.now((1, 0));

        let mut dual = Sim::new(vec![machine(2), machine(2)], link());
        let done = dual.flow_set(&[
            Flow {
                src: (0, 0),
                dst: (1, 0),
                bytes: n,
            },
            Flow {
                src: (0, 1),
                dst: (1, 1),
                bytes: n,
            },
        ]);
        let t_dual = *done.iter().max().unwrap();
        assert!(
            t_dual < t_solo,
            "interleaving should beat one serial sender: dual={t_dual} solo={t_solo}"
        );
    }

    #[test]
    fn same_sender_flows_are_sequential() {
        // Two flows from the SAME thread cannot interleave with each
        // other (one OS thread): total ≈ solo of 2x.
        let n = 50_000u64;
        let mut sim = Sim::new(vec![machine(2), machine(2)], link());
        let done = sim.flow_set(&[
            Flow {
                src: (0, 0),
                dst: (1, 0),
                bytes: n,
            },
            Flow {
                src: (0, 0),
                dst: (1, 1),
                bytes: n,
            },
        ]);
        let mut solo = Sim::new(vec![machine(2), machine(2)], link());
        let done_solo = solo.flow_set(&[Flow {
            src: (0, 0),
            dst: (1, 0),
            bytes: 2 * n,
        }]);
        let t = *done.iter().max().unwrap() as f64;
        let ts = done_solo[0] as f64;
        assert!((t - ts).abs() / ts < 0.05, "sequential: {t} vs {ts}");
    }

    #[test]
    fn deterministic() {
        let build = || {
            let mut sim = Sim::new(vec![machine(4), machine(4)], link());
            let flows: Vec<Flow> = (0..4)
                .flat_map(|s| {
                    (0..4).map(move |d| Flow {
                        src: (0, s),
                        dst: (1, d),
                        bytes: 10_000 + (s * 4 + d) as u64 * 1000,
                    })
                })
                .collect();
            sim.flow_set(&flows)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn small_message_pays_latency() {
        let mut lk = link();
        lk.latency_ns = 500_000;
        let mut sim = Sim::new(vec![machine(1), machine(1)], lk);
        sim.small_message((0, 0), (1, 0), 64);
        assert!(sim.now((1, 0)) >= 500_000);
    }
}
