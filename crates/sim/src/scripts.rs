//! Invocation scripts: the two transfer methods of §3, expressed as
//! sequences of engine primitives, with the same phase breakdown the
//! paper's tables report.
//!
//! The modeled experiment is the paper's: a blocking invocation carrying
//! **one `in` argument** (a distributed sequence of doubles), no reply
//! payload, client and server both assuming uniform blockwise
//! distribution unless explicit layouts are given.

use crate::block::Layout;
use crate::engine::{Flow, Sim, SimTime};
use crate::testbed::Testbed;

/// Bytes of invocation header traffic.
const HEADER_BYTES: u64 = 256;
/// Bytes of the (empty) reply.
const REPLY_BYTES: u64 = 64;

/// Machine indices in the scripts.
const CLIENT: usize = 0;
const SERVER: usize = 1;

fn ms(t: SimTime) -> f64 {
    t as f64 / 1e6
}

/// Phase breakdown of a centralized invocation (Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CentralizedTiming {
    /// Client computing threads.
    pub c: usize,
    /// Server computing threads.
    pub n: usize,
    /// Total invocation time (client side).
    pub total_ns: SimTime,
    /// Pack + send at the client's communicating thread (the paper's
    /// t_ps: "the time it took to complete the process of sending").
    pub pack_send_ns: SimTime,
    /// Receive + unpack at the server's communicating thread (t_r).
    pub recv_unpack_ns: SimTime,
    /// Gathering the argument from the client's computing threads.
    pub gather_ns: SimTime,
    /// Scattering the argument to the server's computing threads.
    pub scatter_ns: SimTime,
}

impl CentralizedTiming {
    /// Total in milliseconds.
    pub fn total_ms(&self) -> f64 {
        ms(self.total_ns)
    }
    /// t_ps in milliseconds.
    pub fn pack_send_ms(&self) -> f64 {
        ms(self.pack_send_ns)
    }
    /// t_r in milliseconds.
    pub fn recv_unpack_ms(&self) -> f64 {
        ms(self.recv_unpack_ns)
    }
    /// Gather in milliseconds.
    pub fn gather_ms(&self) -> f64 {
        ms(self.gather_ns)
    }
    /// Scatter in milliseconds.
    pub fn scatter_ms(&self) -> f64 {
        ms(self.scatter_ns)
    }
}

/// Phase breakdown of a multi-port invocation (Table 2 columns). The
/// pack/unpack values are maxima over the threads involved, as in the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiportTiming {
    /// Client computing threads.
    pub c: usize,
    /// Server computing threads.
    pub n: usize,
    /// Total invocation time (client side).
    pub total_ns: SimTime,
    /// Max over client threads of marshaling time.
    pub pack_ns: SimTime,
    /// Max over server threads of receive + unmarshal time.
    pub unpack_recv_ns: SimTime,
    /// Time the client's communicating thread spends in the
    /// post-invocation (exit) barrier — the paper reads send
    /// sequentialization vs interleaving off this column.
    pub barrier_ns: SimTime,
}

impl MultiportTiming {
    /// Total in milliseconds.
    pub fn total_ms(&self) -> f64 {
        ms(self.total_ns)
    }
    /// Pack in milliseconds.
    pub fn pack_ms(&self) -> f64 {
        ms(self.pack_ns)
    }
    /// Unpack+recv in milliseconds.
    pub fn unpack_recv_ms(&self) -> f64 {
        ms(self.unpack_recv_ns)
    }
    /// Exit-barrier wait in milliseconds.
    pub fn barrier_ms(&self) -> f64 {
        ms(self.barrier_ns)
    }
}

/// Simulate one centralized invocation (§3.2, figure 2) carrying one
/// `in` argument of `bytes` bytes, blockwise on both sides.
pub fn centralized_invoke(tb: &Testbed, c: usize, n: usize, bytes: u64) -> CentralizedTiming {
    let tb = tb.with_threads(c, n);
    let mut sim = Sim::new(vec![tb.client.clone(), tb.server.clone()], tb.link);
    let layout_c = Layout::block(bytes, c);
    let layout_n = Layout::block(bytes, n);

    // "the computing threads of the client first synchronize"
    sim.barrier(CLIENT);
    let t0 = sim.now((CLIENT, 0));

    // Gather at the communicating thread through the RTS (linear).
    for t in 1..c {
        sim.shm_transfer((CLIENT, t), (CLIENT, 0), layout_c.count(t));
    }
    let gather_ns = sim.now((CLIENT, 0)) - t0;

    // Marshal everything into one message and send it.
    let ps_start = sim.now((CLIENT, 0));
    sim.compute((CLIENT, 0), bytes, tb.client.pack_rate);
    sim.flow_set(&[Flow {
        src: (CLIENT, 0),
        dst: (SERVER, 0),
        bytes: bytes + HEADER_BYTES,
    }]);
    let pack_send_ns = sim.now((CLIENT, 0)) - ps_start;

    // Server communicating thread unmarshals...
    let r_start = sim.now((SERVER, 0));
    sim.compute((SERVER, 0), bytes, tb.server.pack_rate);
    let recv_unpack_ns = sim.now((SERVER, 0)) - r_start;

    // ...and scatters to the computing threads.
    let s_start = sim.now((SERVER, 0));
    for t in 1..n {
        sim.shm_transfer((SERVER, 0), (SERVER, t), layout_n.count(t));
    }
    let scatter_ns = sim.now((SERVER, 0)) - s_start;

    // Dispatch (a no-op service), post-invocation synchronization,
    // completion status back to the client.
    sim.barrier(SERVER);
    sim.small_message((SERVER, 0), (CLIENT, 0), REPLY_BYTES);
    sim.barrier(CLIENT);

    CentralizedTiming {
        c,
        n,
        total_ns: sim.now((CLIENT, 0)) - t0,
        pack_send_ns,
        recv_unpack_ns,
        gather_ns,
        scatter_ns,
    }
}

/// Simulate one multi-port invocation (§3.3, figure 3) with explicit
/// client and server layouts (in bytes per thread).
pub fn multiport_invoke_layouts(
    tb: &Testbed,
    layout_c: &Layout,
    layout_n: &Layout,
) -> MultiportTiming {
    let c = layout_c.nthreads();
    let n = layout_n.nthreads();
    let tb = tb.with_threads(c, n);
    let mut sim = Sim::new(vec![tb.client.clone(), tb.server.clone()], tb.link);
    let bytes = layout_c.len();
    debug_assert_eq!(bytes, layout_n.len());

    sim.barrier(CLIENT);
    let t0 = sim.now((CLIENT, 0));

    // Invocation header, delivered centrally, then relayed to the
    // server's computing threads so they await argument transfer.
    sim.small_message((CLIENT, 0), (SERVER, 0), HEADER_BYTES);
    for t in 1..n {
        sim.shm_transfer((SERVER, 0), (SERVER, t), HEADER_BYTES);
    }

    // Every client thread marshals the part of the data it owns —
    // in parallel.
    let mut pack_ns: SimTime = 0;
    for s in 0..c {
        let p0 = sim.now((CLIENT, s));
        sim.compute((CLIENT, s), layout_c.count(s), tb.client.pack_rate);
        pack_ns = pack_ns.max(sim.now((CLIENT, s)) - p0);
    }

    // Direct thread-to-thread fragments, interleaving on the one link.
    let mut flows = Vec::new();
    for s in 0..c {
        for (d, frag_bytes) in layout_c.transfers_to(s, layout_n) {
            flows.push(Flow {
                src: (CLIENT, s),
                dst: (SERVER, d),
                bytes: frag_bytes,
            });
        }
    }
    sim.flow_set(&flows);

    // Exit barrier on the client right after the sends: the paper reads
    // sequentialized vs interleaved sends off the communicating thread's
    // wait here.
    let waits = sim.barrier(CLIENT);
    let barrier_ns = waits[0];

    // Each server thread unmarshals what it received — in parallel,
    // each over its own (smaller) chunk.
    let mut unpack_recv_ns: SimTime = 0;
    for t in 0..n {
        let u0 = sim.now((SERVER, t));
        sim.compute((SERVER, t), layout_n.count(t), tb.server.pack_rate);
        unpack_recv_ns = unpack_recv_ns.max(sim.now((SERVER, t)) - u0);
    }

    sim.barrier(SERVER);
    sim.small_message((SERVER, 0), (CLIENT, 0), REPLY_BYTES);
    sim.barrier(CLIENT);

    MultiportTiming {
        c,
        n,
        total_ns: sim.now((CLIENT, 0)) - t0,
        pack_ns,
        unpack_recv_ns,
        barrier_ns,
    }
}

/// Simulate one multi-port invocation with uniform blockwise layouts on
/// both sides, carrying one `in` argument of `bytes` bytes.
pub fn multiport_invoke(tb: &Testbed, c: usize, n: usize, bytes: u64) -> MultiportTiming {
    multiport_invoke_layouts(tb, &Layout::block(bytes, c), &Layout::block(bytes, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::paper_testbed;

    const MB4: u64 = (1u64 << 19) * 8; // 2^19 doubles

    #[test]
    fn centralized_total_grows_with_client_threads() {
        let tb = paper_testbed();
        let t2 = centralized_invoke(&tb, 2, 1, MB4);
        let t4 = centralized_invoke(&tb, 4, 1, MB4);
        assert!(
            t4.total_ns > t2.total_ns,
            "c=4 {} !> c=2 {}",
            t4.total_ms(),
            t2.total_ms()
        );
    }

    #[test]
    fn centralized_total_grows_with_server_threads() {
        let tb = paper_testbed();
        let n1 = centralized_invoke(&tb, 2, 1, MB4);
        let n8 = centralized_invoke(&tb, 2, 8, MB4);
        assert!(n8.total_ns > n1.total_ns);
        assert!(n8.scatter_ns > n1.scatter_ns);
    }

    #[test]
    fn multiport_total_shrinks_with_resources() {
        let tb = paper_testbed();
        let small = multiport_invoke(&tb, 1, 1, MB4);
        let big = multiport_invoke(&tb, 4, 8, MB4);
        assert!(
            big.total_ns < small.total_ns,
            "c=4,n=8 {} !< c=1,n=1 {}",
            big.total_ms(),
            small.total_ms()
        );
    }

    #[test]
    fn multiport_never_loses_to_centralized() {
        // The paper: "we have not found a case in which it would
        // underperform the centralized method."
        let tb = paper_testbed();
        for (c, n) in [(1, 1), (2, 1), (2, 4), (4, 8), (1, 8), (4, 1)] {
            let cen = centralized_invoke(&tb, c, n, MB4);
            let mp = multiport_invoke(&tb, c, n, MB4);
            assert!(
                mp.total_ns <= cen.total_ns + cen.total_ns / 20,
                "c={c} n={n}: mp {} vs cen {}",
                mp.total_ms(),
                cen.total_ms()
            );
        }
    }

    #[test]
    fn sequentialized_sends_show_in_exit_barrier() {
        // c=2, n=1: both client threads feed the single server thread,
        // whose ordered receives sequentialize them; the thread that
        // finished first waits roughly half the send in the barrier.
        let tb = paper_testbed();
        let t = multiport_invoke(&tb, 2, 1, MB4);
        assert!(
            t.barrier_ns > t.total_ns / 5,
            "expected a large exit-barrier wait, got {} of {}",
            t.barrier_ms(),
            t.total_ms()
        );
        // c=2, n=2: independent destinations interleave; the barrier
        // wait collapses.
        let t22 = multiport_invoke(&tb, 2, 2, MB4);
        assert!(
            t22.barrier_ns < t.barrier_ns / 4,
            "interleaved sends should synchronize: {} vs {}",
            t22.barrier_ms(),
            t.barrier_ms()
        );
    }

    #[test]
    fn pack_time_drops_with_more_client_threads() {
        let tb = paper_testbed();
        let p1 = multiport_invoke(&tb, 1, 4, MB4).pack_ns;
        let p4 = multiport_invoke(&tb, 4, 4, MB4).pack_ns;
        assert!(p4 * 3 < p1, "pack should parallelize: {p1} -> {p4}");
    }

    #[test]
    fn uneven_split_is_comparable() {
        // §3.3: "cases when the sequence is split unevenly are of
        // comparable efficiency".
        let tb = paper_testbed();
        let even = multiport_invoke(&tb, 4, 8, MB4);
        let uneven = multiport_invoke_layouts(
            &tb,
            &Layout::block(MB4, 4),
            &Layout::proportional(MB4, &[2, 4, 2, 4, 2, 4, 2, 4]),
        );
        let ratio = uneven.total_ns as f64 / even.total_ns as f64;
        assert!(
            (0.8..1.4).contains(&ratio),
            "uneven/even ratio {ratio} out of range ({} vs {} ms)",
            uneven.total_ms(),
            even.total_ms()
        );
    }

    #[test]
    fn small_messages_make_methods_comparable() {
        // Figure 4: for small data sizes the two methods perform nearly
        // the same.
        let tb = paper_testbed();
        let small = 80; // 10 doubles
        let cen = centralized_invoke(&tb, 4, 8, small);
        let mp = multiport_invoke(&tb, 4, 8, small);
        let ratio = cen.total_ns as f64 / mp.total_ns as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "small-size ratio {ratio} ({} vs {} ms)",
            cen.total_ms(),
            mp.total_ms()
        );
    }

    #[test]
    fn deterministic_runs() {
        let tb = paper_testbed();
        assert_eq!(
            multiport_invoke(&tb, 3, 5, MB4),
            multiport_invoke(&tb, 3, 5, MB4)
        );
    }
}
