//! Machine and link descriptions, including the paper's testbed.
//!
//! Constants below are calibrated so the simulator lands in the same
//! regime as the paper's Tables 1 and 2 (hundreds of milliseconds for a
//! 2^19-double argument, ~10 MB/s centralized effective bandwidth).
//! Absolute agreement is not the goal — the authors' exact software
//! stack is gone — but the *shape* of every trend is: see
//! `EXPERIMENTS.md` at the repository root.

/// Description of one parallel machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Display name.
    pub name: String,
    /// Physical processors.
    pub processors: usize,
    /// Computing threads of the SPMD program running on it.
    pub threads: usize,
    /// Marshaling (pack/unpack) rate, bytes/sec.
    pub pack_rate: f64,
    /// Shared-memory copy rate for RTS transfers, bytes/sec.
    pub shm_rate: f64,
    /// Per-message latency of an RTS shared-memory transfer.
    pub shm_latency_ns: u64,
    /// Fixed syscall cost paid by an endpoint per network frame.
    pub syscall_ns: u64,
    /// Extra descheduling penalty per frame when the machine is
    /// oversubscribed: paid when `threads + background_load >
    /// processors` (the §3.2 scheduler-interference step).
    pub desched_step_ns: u64,
    /// Smooth per-thread slope of the descheduling penalty (models
    /// growing run-queue pressure even below full subscription).
    pub desched_slope_ns: u64,
    /// System daemons etc. competing for processors.
    pub background_load: usize,
}

impl MachineSpec {
    /// The per-frame endpoint cost: syscall plus scheduler-interference
    /// penalties. MPICH's busy-polling makes *every* computing thread
    /// runnable, so pressure scales with the thread count, with a step
    /// once the machine is oversubscribed.
    pub fn per_frame_cost_ns(&self) -> u64 {
        let over = (self.threads + self.background_load).saturating_sub(self.processors) as u64;
        self.syscall_ns
            + self.desched_slope_ns * (self.threads.saturating_sub(1)) as u64
            + self.desched_step_ns * over
    }
}

/// Shared-link characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Usable bandwidth, bytes/sec of wire time.
    pub bandwidth: f64,
    /// One-way message latency.
    pub latency_ns: u64,
    /// Frame payload bytes (ATM AAL5 LANE: 9180).
    pub mtu: u64,
    /// Wire overhead charged per frame (cell headers and LANE
    /// encapsulation).
    pub per_frame_overhead: u64,
}

/// A client machine, a server machine, one link.
#[derive(Debug, Clone, PartialEq)]
pub struct Testbed {
    /// The client machine (threads set per experiment).
    pub client: MachineSpec,
    /// The server machine (threads set per experiment).
    pub server: MachineSpec,
    /// The shared link.
    pub link: LinkParams,
}

impl Testbed {
    /// Copy with the given client/server thread counts.
    pub fn with_threads(&self, c: usize, n: usize) -> Testbed {
        let mut tb = self.clone();
        tb.client.threads = c;
        tb.server.threads = n;
        tb
    }
}

/// The paper's testbed: a 4-processor SGI Onyx R4400 client, a
/// 10-processor SGI Power Challenge R8000 server, one dedicated
/// 155 Mb/s ATM link with LAN Emulation.
pub fn paper_testbed() -> Testbed {
    Testbed {
        client: MachineSpec {
            name: "SGI Onyx R4400 (client)".into(),
            processors: 4,
            threads: 1,
            // R4400-era memcpy with marshaling logic on top.
            pack_rate: 85.0e6,
            shm_rate: 90.0e6,
            shm_latency_ns: 30_000,
            syscall_ns: 45_000,
            // Oversubscription on the 4-way Onyx hurts badly: the
            // communicating thread competes with spinning peers.
            desched_step_ns: 290_000,
            desched_slope_ns: 4_000,
            background_load: 1,
        },
        server: MachineSpec {
            name: "SGI Power Challenge R8000 (server)".into(),
            processors: 10,
            threads: 1,
            pack_rate: 110.0e6,
            shm_rate: 120.0e6,
            shm_latency_ns: 25_000,
            syscall_ns: 40_000,
            desched_step_ns: 290_000,
            // 10 processors: below the step for n <= 8, but run-queue
            // pressure still grows slightly with thread count.
            desched_slope_ns: 4_500,
            background_load: 1,
        },
        link: LinkParams {
            // 155 Mb/s SONET minus ATM cell tax and LANE ≈ 16.5 MB/s of
            // usable payload bandwidth.
            bandwidth: 16.5e6,
            latency_ns: 900_000,
            mtu: 9180,
            per_frame_overhead: 432,
        },
    }
}

/// A present-day testbed for the counterfactual ablation: many cores
/// (no oversubscription at the paper's thread counts), memory systems
/// three orders of magnitude faster, cheap syscalls, a 10 GbE-class
/// link. Running the paper's experiments here shows which effects were
/// artifacts of 1997 hardware.
pub fn modern_testbed() -> Testbed {
    Testbed {
        client: MachineSpec {
            name: "modern many-core (client)".into(),
            processors: 32,
            threads: 1,
            pack_rate: 8.0e9,
            shm_rate: 12.0e9,
            shm_latency_ns: 500,
            syscall_ns: 1_500,
            desched_step_ns: 20_000,
            desched_slope_ns: 50,
            background_load: 1,
        },
        server: MachineSpec {
            name: "modern many-core (server)".into(),
            processors: 32,
            threads: 1,
            pack_rate: 8.0e9,
            shm_rate: 12.0e9,
            shm_latency_ns: 500,
            syscall_ns: 1_500,
            desched_step_ns: 20_000,
            desched_slope_ns: 50,
            background_load: 1,
        },
        link: LinkParams {
            bandwidth: 1.1e9, // ~10 GbE payload rate
            latency_ns: 30_000,
            mtu: 9000, // jumbo frames
            per_frame_overhead: 60,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modern_testbed_has_no_oversubscription_step() {
        let tb = modern_testbed();
        let mut m = tb.client.clone();
        m.threads = 8;
        // 8 + 1 << 32 processors: only the tiny slope applies.
        assert!(m.per_frame_cost_ns() < 10_000);
    }

    #[test]
    fn per_frame_cost_steps_at_oversubscription() {
        let tb = paper_testbed();
        let mut m = tb.client.clone();
        m.threads = 2; // 2 + 1 bg <= 4 processors: no step
        let base = m.per_frame_cost_ns();
        m.threads = 4; // 4 + 1 bg > 4: one step
        let over = m.per_frame_cost_ns();
        assert!(over > base + m.desched_step_ns / 2);
    }

    #[test]
    fn server_stays_below_step_through_eight() {
        let tb = paper_testbed();
        let mut m = tb.server.clone();
        m.threads = 8;
        let c8 = m.per_frame_cost_ns();
        m.threads = 1;
        let c1 = m.per_frame_cost_ns();
        // Growth is smooth-slope only.
        assert_eq!(c8 - c1, 7 * m.desched_slope_ns);
    }

    #[test]
    fn with_threads_copies() {
        let tb = paper_testbed().with_threads(4, 8);
        assert_eq!(tb.client.threads, 4);
        assert_eq!(tb.server.threads, 8);
    }
}
