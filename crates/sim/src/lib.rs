//! # pardis-sim — a discrete-event model of the PARDIS 1997 testbed
//!
//! The paper's evaluation (§3) ran on hardware that no longer exists: a
//! 4-processor SGI Onyx (R4400) client, a 10-processor SGI Power
//! Challenge (R8000) server, and a dedicated 155 Mb/s ATM link with LAN
//! Emulation, with MPICH busy-polling over shared memory inside each
//! machine. Two of the paper's key observations are artifacts of that
//! configuration and cannot be observed faithfully on a modern
//! many-core host:
//!
//! 1. **Scheduler interference** — MPICH's spin-waiting threads compete
//!    with the communicating thread for processors, so a thread
//!    descheduled at a syscall resumes late; the penalty grows with the
//!    machine's thread count (§3.2).
//! 2. **Send interleaving** — with several concurrently active
//!    transfers, the shared link stays busy while any one sender is
//!    descheduled, so multi-port transfer *recovers* the wasted wire
//!    time (§3.3: "data transfer from two separate computing threads of
//!    the client did not happen sequentially, but was interleaved").
//!
//! This crate reproduces them in virtual time: per-thread clocks, a
//! frame-serialized shared link, per-frame syscall/descheduling costs,
//! and linear gather/scatter through communicating threads. The
//! [`experiments`] module regenerates **Table 1**, **Table 2** and
//! **Figure 4** of the paper; `pardis-bench` prints them.
//!
//! Everything is deterministic — same inputs, same virtual times.
//!
//! ```
//! use pardis_sim::{scripts, testbed};
//!
//! let tb = testbed::paper_testbed();
//! let len = 1 << 19; // doubles, as in the paper's tables
//! let cen = scripts::centralized_invoke(&tb, 2, 1, len * 8);
//! let mp  = scripts::multiport_invoke(&tb, 4, 8, len * 8);
//! // Centralized with few resources is slower than multi-port with many.
//! assert!(mp.total_ms() < cen.total_ms());
//! ```

pub mod block;
pub mod engine;
pub mod experiments;
pub mod scripts;
pub mod testbed;

pub use engine::{Flow, Sim, SimTime, ThreadId};
pub use testbed::{LinkParams, MachineSpec, Testbed};
