//! Blockwise and proportional ownership math for the simulator.
//!
//! Mirrors `pardis-core::dist` for the simulator's purposes (the crate
//! is deliberately standalone so experiments can be replayed without the
//! full ORB).

use std::ops::Range;

/// Per-thread element counts (contiguous in rank order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    counts: Vec<u64>,
    offsets: Vec<u64>,
}

impl Layout {
    /// Explicit counts.
    pub fn from_counts(counts: Vec<u64>) -> Layout {
        assert!(!counts.is_empty());
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        Layout { counts, offsets }
    }

    /// Uniform blockwise split: the first `len % n` threads own one
    /// extra element.
    pub fn block(len: u64, n: usize) -> Layout {
        let base = len / n as u64;
        let rem = (len % n as u64) as usize;
        Layout::from_counts((0..n).map(|t| base + u64::from(t < rem)).collect())
    }

    /// Largest-remainder proportional split (matches
    /// `pardis-core::DistTempl::proportional`).
    pub fn proportional(len: u64, weights: &[u32]) -> Layout {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0);
        let mut counts = vec![0u64; weights.len()];
        let mut rems: Vec<(u64, usize)> = Vec::with_capacity(weights.len());
        let mut assigned = 0u64;
        for (t, &w) in weights.iter().enumerate() {
            let exact = len * w as u64;
            counts[t] = exact / total;
            rems.push((exact % total, t));
            assigned += counts[t];
        }
        rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, t) in rems.iter().take((len - assigned) as usize) {
            counts[t] += 1;
        }
        Layout::from_counts(counts)
    }

    /// Number of threads.
    pub fn nthreads(&self) -> usize {
        self.counts.len()
    }

    /// Total element count.
    pub fn len(&self) -> u64 {
        *self.offsets.last().expect("nonempty")
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements owned by `t`.
    pub fn count(&self, t: usize) -> u64 {
        self.counts[t]
    }

    /// Global range owned by `t`.
    pub fn range(&self, t: usize) -> Range<u64> {
        self.offsets[t]..self.offsets[t + 1]
    }

    /// The `(dst, element_count)` fragments thread `src` must send so
    /// data laid out by `self` lands laid out by `dst_layout`.
    pub fn transfers_to(&self, src: usize, dst_layout: &Layout) -> Vec<(usize, u64)> {
        let my = self.range(src);
        if my.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for d in 0..dst_layout.nthreads() {
            let dr = dst_layout.range(d);
            let start = my.start.max(dr.start);
            let end = my.end.min(dr.end);
            if start < end {
                out.push((d, end - start));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_split() {
        let l = Layout::block(10, 4);
        assert_eq!(l.count(0), 3);
        assert_eq!(l.count(2), 2);
        assert_eq!(l.len(), 10);
        assert_eq!(l.range(1), 3..6);
    }

    #[test]
    fn transfers_cover_all() {
        let src = Layout::block(100, 4);
        let dst = Layout::block(100, 8);
        let total: u64 = (0..4)
            .flat_map(|s| src.transfers_to(s, &dst))
            .map(|(_, c)| c)
            .sum();
        assert_eq!(total, 100);
        // 4 -> 8 block with a remainder: each source thread feeds 2 or 3
        // destinations (ranges of 25 overlap 2–3 ranges of 12–13).
        for s in 0..4 {
            let k = src.transfers_to(s, &dst).len();
            assert!((2..=3).contains(&k), "source {s} feeds {k}");
        }
        // Exact 4 -> 8 split (no remainder): exactly 2 each.
        let src = Layout::block(96, 4);
        let dst = Layout::block(96, 8);
        for s in 0..4 {
            assert_eq!(src.transfers_to(s, &dst).len(), 2);
        }
    }

    #[test]
    fn proportional_matches_paper_example() {
        let l = Layout::proportional(12, &[2, 4, 2, 4]);
        assert_eq!(l.count(0), 2);
        assert_eq!(l.count(1), 4);
        assert_eq!(l.count(3), 4);
    }

    #[test]
    fn uneven_lengths_sum() {
        for len in [1u64, 7, 97, 1 << 19] {
            let l = Layout::proportional(len, &[3, 1, 5]);
            assert_eq!(l.len(), len);
        }
    }
}
