//! End-to-end tests of SPMD invocation: parallel client and parallel
//! server, both transfer methods, distributed inout arguments,
//! proportional distributions, futures, exceptions, and the
//! poll-requests server mode.

use pardis_cdr::{CdrReader, Decode};
use pardis_core::prelude::*;
use pardis_net::ior::OpArgDist;
use pardis_net::DistSpec;

const DIFF_TYPE: &str = "IDL:diff_object:1.0";

/// The paper's running example: a diffusion service. Operation
/// `diffusion(in long timesteps, inout dsequence<double> darray)` runs
/// `timesteps` of a 3-point stencil with halo exchange over the RTS.
struct DiffServant;

impl Servant for DiffServant {
    fn type_id(&self) -> &str {
        DIFF_TYPE
    }

    fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()> {
        match req.operation() {
            "diffusion" => {
                let mut args = req.args();
                let timesteps = i32::decode(&mut args).map_err(PardisError::from)?;
                let mut arr: DSequence<f64> = req.dist_seq(0)?;
                diffuse(req.ctx(), &mut arr, timesteps as usize)?;
                req.return_dist_seq(0, &arr)?;
                req.set_result(|_| Ok(()))
            }
            "sum" => {
                // in dsequence<double> -> double (non-distributed result)
                let arr: DSequence<f64> = req.dist_seq(0)?;
                let local: f64 = arr.local_data().iter().sum();
                let total = req
                    .ctx()
                    .rts()
                    .allreduce_f64(&[local], pardis_rts::ReduceOp::Sum)
                    .map_err(PardisError::from)?[0];
                req.set_result(|w| {
                    w.put_f64(total);
                    Ok(())
                })
            }
            "fail" => Err(PardisError::UserException("diffusion_overflow".into())),
            other => Err(PardisError::BadOperation(other.to_string())),
        }
    }
}

/// One Jacobi smoothing step per timestep with nearest-neighbour halo
/// exchange — a genuinely parallel computation over the RTS.
fn diffuse(ctx: &OrbCtx, arr: &mut DSequence<f64>, steps: usize) -> PardisResult<()> {
    let rts = ctx.rts();
    let rank = rts.rank();
    let size = rts.size();
    const HALO_L: u32 = 100;
    const HALO_R: u32 = 101;
    for _ in 0..steps {
        let local = arr.local_data_mut();
        let n = local.len();
        // Exchange halos with neighbours (empty parts still participate
        // with a zero-length message to keep the pattern uniform).
        let left_edge = local.first().copied().unwrap_or(0.0);
        let right_edge = local.last().copied().unwrap_or(0.0);
        let mut left_halo = None;
        let mut right_halo = None;
        if rank > 0 {
            rts.send(
                rank - 1,
                HALO_L,
                bytes::Bytes::copy_from_slice(&left_edge.to_le_bytes()),
            )
            .map_err(PardisError::from)?;
        }
        if rank + 1 < size {
            rts.send(
                rank + 1,
                HALO_R,
                bytes::Bytes::copy_from_slice(&right_edge.to_le_bytes()),
            )
            .map_err(PardisError::from)?;
        }
        if rank + 1 < size {
            let b = rts.recv(rank + 1, HALO_L).map_err(PardisError::from)?;
            right_halo = Some(f64::from_le_bytes(b[..8].try_into().unwrap()));
        }
        if rank > 0 {
            let b = rts.recv(rank - 1, HALO_R).map_err(PardisError::from)?;
            left_halo = Some(f64::from_le_bytes(b[..8].try_into().unwrap()));
        }
        if n == 0 {
            continue;
        }
        let old = local.to_vec();
        for i in 0..n {
            let l = if i == 0 {
                left_halo.unwrap_or(old[0])
            } else {
                old[i - 1]
            };
            let r = if i == n - 1 {
                right_halo.unwrap_or(old[n - 1])
            } else {
                old[i + 1]
            };
            local[i] = 0.25 * l + 0.5 * old[i] + 0.25 * r;
        }
    }
    Ok(())
}

/// Sequential reference implementation for verification.
fn diffuse_seq(data: &mut [f64], steps: usize) {
    let n = data.len();
    for _ in 0..steps {
        let old = data.to_vec();
        for i in 0..n {
            let l = if i == 0 { old[0] } else { old[i - 1] };
            let r = if i == n - 1 { old[n - 1] } else { old[i + 1] };
            data[i] = 0.25 * l + 0.5 * old[i] + 0.25 * r;
        }
    }
}

fn start_server(world: &World, nthreads: usize, dists: Vec<OpArgDist>) -> MachineHandleAlias {
    world.spawn_machine("server", nthreads, move |ctx| {
        ctx.register("example", Box::new(DiffServant), dists.clone())
            .unwrap();
        ctx.serve_forever().unwrap();
    })
}

type MachineHandleAlias = pardis_core::MachineHandle<()>;

fn spmd_diffusion_roundtrip(mode: TransferMode, c: usize, n: usize, len: usize, steps: usize) {
    let world = World::new(LinkSpec::unlimited());
    let server = start_server(&world, n, vec![]);

    let client = world.spawn_machine("client", c, move |ctx| {
        let mut proxy = ctx
            .spmd_bind("example", Some("server"), Some(DIFF_TYPE))
            .unwrap();
        proxy.set_mode(mode).unwrap();

        // Build the input: global values 0..len distributed blockwise.
        let mut seq = DSequence::<f64>::new(ctx.rts(), len, None).unwrap();
        let off = seq.local_range().start;
        for (i, x) in seq.local_data_mut().iter_mut().enumerate() {
            *x = (off + i) as f64;
        }

        // diffusion(in long, inout dsequence<double>)
        let mut spec = RequestSpec::simple("diffusion");
        let mut w = pardis_cdr::CdrWriter::new(ctx.endian());
        w.put_i32(steps as i32);
        spec.nondist_body = w.into_shared();
        spec.dist_args = vec![proxy.dist_arg("diffusion", 0, ArgDir::InOut, &seq).unwrap()];

        let reply = proxy.invoke(&ctx, spec).unwrap();
        let new_local: Vec<f64> =
            pardis_core::Elem::from_native_bytes(reply.dist_local(0).unwrap());
        assert_eq!(new_local.len(), seq.local_len());

        // Verify against the sequential reference.
        let mut want: Vec<f64> = (0..len).map(|i| i as f64).collect();
        diffuse_seq(&mut want, steps);
        let r = seq.local_range();
        for (i, (&got, &exp)) in new_local.iter().zip(&want[r.clone()]).enumerate() {
            assert!(
                (got - exp).abs() < 1e-9,
                "mode {mode:?} c={c} n={n}: element {} differs: {got} vs {exp}",
                r.start + i
            );
        }

        if ctx.is_comm_thread() {
            ctx.send_shutdown(proxy.objref()).unwrap();
        }
    });

    client.join();
    server.join();
}

#[test]
fn centralized_various_shapes() {
    for (c, n) in [(1, 1), (2, 1), (1, 3), (2, 4), (4, 2)] {
        spmd_diffusion_roundtrip(TransferMode::Centralized, c, n, 64, 3);
    }
}

#[test]
fn multiport_various_shapes() {
    for (c, n) in [(1, 1), (2, 1), (1, 3), (2, 4), (4, 2), (3, 5)] {
        spmd_diffusion_roundtrip(TransferMode::MultiPort, c, n, 64, 3);
    }
}

#[test]
fn both_modes_uneven_length() {
    // Length not divisible by thread counts exercises remainder blocks.
    spmd_diffusion_roundtrip(TransferMode::Centralized, 3, 4, 61, 2);
    spmd_diffusion_roundtrip(TransferMode::MultiPort, 3, 4, 61, 2);
}

#[test]
fn proportional_server_distribution() {
    // Server pre-registers Proportions(2,4,2,4) for diffusion arg 0 —
    // the paper's §2.2 example.
    let world = World::new(LinkSpec::unlimited());
    let dists = vec![OpArgDist {
        op: "diffusion".into(),
        arg_index: 0,
        dist: DistSpec::Proportions(vec![2, 4, 2, 4]),
    }];
    let server = start_server(&world, 4, dists);

    let client = world.spawn_machine("client", 2, move |ctx| {
        let mut proxy = ctx.spmd_bind("example", None, Some(DIFF_TYPE)).unwrap();
        proxy.set_mode(TransferMode::MultiPort).unwrap();

        let len = 48;
        let mut seq = DSequence::<f64>::new(ctx.rts(), len, None).unwrap();
        let off = seq.local_range().start;
        for (i, x) in seq.local_data_mut().iter_mut().enumerate() {
            *x = (off + i) as f64;
        }

        let arg = proxy.dist_arg("diffusion", 0, ArgDir::InOut, &seq).unwrap();
        // The resolved server template follows the registered proportions.
        assert_eq!(arg.server_templ.counts(), &[8, 16, 8, 16]);

        let mut spec = RequestSpec::simple("diffusion");
        let mut w = pardis_cdr::CdrWriter::new(ctx.endian());
        w.put_i32(2);
        spec.nondist_body = w.into_shared();
        spec.dist_args = vec![arg];

        let reply = proxy.invoke(&ctx, spec).unwrap();
        let new_local: Vec<f64> =
            pardis_core::Elem::from_native_bytes(reply.dist_local(0).unwrap());
        let mut want: Vec<f64> = (0..len).map(|i| i as f64).collect();
        diffuse_seq(&mut want, 2);
        let r = seq.local_range();
        for (&got, &exp) in new_local.iter().zip(&want[r]) {
            assert!((got - exp).abs() < 1e-9);
        }
        if ctx.is_comm_thread() {
            ctx.send_shutdown(proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}

#[test]
fn nd_bind_parallel_clients() {
    // Per-thread bind: each client thread interacts independently with
    // the SPMD object using the non-distributed mapping.
    let world = World::new(LinkSpec::unlimited());
    let server = start_server(&world, 3, vec![]);

    let client = world.spawn_machine("client", 4, move |ctx| {
        let proxy = ctx.bind("example", None, Some(DIFF_TYPE)).unwrap();
        let data: Vec<f64> = (0..30).map(|i| (i + ctx.rank()) as f64).collect();
        let mut spec = RequestSpec::simple("sum");
        spec.dist_args = vec![proxy.dist_arg_nd("sum", 0, ArgDir::In, &data).unwrap()];
        let reply = proxy.invoke(&ctx, spec).unwrap();
        let mut r = CdrReader::new(&reply.nondist_body, ctx.endian());
        let total = f64::decode(&mut r).unwrap();
        let want: f64 = data.iter().sum();
        assert_eq!(total, want);
        // All threads synchronize, then one shuts the server down.
        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            ctx.send_shutdown(proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}

#[test]
fn nd_bind_multiport_single_client_thread() {
    // c=1 multi-port (the paper's Table 2 includes this column).
    let world = World::new(LinkSpec::unlimited());
    let server = start_server(&world, 4, vec![]);
    let client = world.spawn_machine("client", 1, move |ctx| {
        let mut proxy = ctx.bind("example", None, Some(DIFF_TYPE)).unwrap();
        proxy.set_mode(TransferMode::MultiPort).unwrap();
        let data: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mut spec = RequestSpec::simple("diffusion");
        let mut w = pardis_cdr::CdrWriter::new(ctx.endian());
        w.put_i32(1);
        spec.nondist_body = w.into_shared();
        spec.dist_args = vec![proxy
            .dist_arg_nd("diffusion", 0, ArgDir::InOut, &data)
            .unwrap()];
        let reply = proxy.invoke(&ctx, spec).unwrap();
        let got: Vec<f64> = pardis_core::Elem::from_native_bytes(reply.dist_local(0).unwrap());
        let mut want = data.clone();
        diffuse_seq(&mut want, 1);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
        ctx.send_shutdown(proxy.objref()).unwrap();
    });
    client.join();
    server.join();
}

#[test]
fn futures_overlap_computation() {
    let world = World::new(LinkSpec::unlimited());
    let server = start_server(&world, 2, vec![]);
    let client = world.spawn_machine("client", 2, move |ctx| {
        let proxy = ctx.spmd_bind("example", None, None).unwrap();
        let seq = {
            let mut s = DSequence::<f64>::new(ctx.rts(), 16, None).unwrap();
            for x in s.local_data_mut() {
                *x = 1.0;
            }
            s
        };
        let mut spec = RequestSpec::simple("sum");
        spec.dist_args = vec![proxy.dist_arg("sum", 0, ArgDir::In, &seq).unwrap()];
        let fut = proxy.invoke_nb(&ctx, spec).unwrap();
        // "use remote resources concurrently with its own": do local work
        // while the request is outstanding.
        let local_work: f64 = (0..1000).map(|i| i as f64).sum();
        assert!(local_work > 0.0);
        let reply = fut.wait().unwrap();
        let mut r = CdrReader::new(&reply.nondist_body, ctx.endian());
        assert_eq!(f64::decode(&mut r).unwrap(), 16.0);
        if ctx.is_comm_thread() {
            ctx.send_shutdown(proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}

#[test]
fn user_exception_propagates_both_modes() {
    let world = World::new(LinkSpec::unlimited());
    let server = start_server(&world, 2, vec![]);
    let client = world.spawn_machine("client", 2, move |ctx| {
        let proxy = ctx.spmd_bind("example", None, None).unwrap();
        for mode in [TransferMode::Centralized, TransferMode::MultiPort] {
            let err = proxy
                .invoke_with_mode(&ctx, RequestSpec::simple("fail"), mode)
                .unwrap_err();
            match err {
                PardisError::UserException(name) => assert_eq!(name, "diffusion_overflow"),
                other => panic!("expected user exception, got {other}"),
            }
        }
        if ctx.is_comm_thread() {
            ctx.send_shutdown(proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}

#[test]
fn bad_operation_is_system_exception() {
    let world = World::new(LinkSpec::unlimited());
    let server = start_server(&world, 1, vec![]);
    let client = world.spawn_machine("client", 1, move |ctx| {
        let proxy = ctx.bind("example", None, None).unwrap();
        let err = proxy
            .invoke(&ctx, RequestSpec::simple("no_such_op"))
            .unwrap_err();
        assert!(matches!(err, PardisError::SystemException(_)), "{err}");
        ctx.send_shutdown(proxy.objref()).unwrap();
    });
    client.join();
    server.join();
}

#[test]
fn interface_mismatch_detected_at_bind() {
    let world = World::new(LinkSpec::unlimited());
    let server = start_server(&world, 1, vec![]);
    let client = world.spawn_machine("client", 1, move |ctx| {
        let err = ctx
            .bind("example", None, Some("IDL:other:1.0"))
            .unwrap_err();
        assert!(matches!(err, PardisError::InterfaceMismatch { .. }));
        // Clean shutdown via a correctly typed proxy.
        let proxy = ctx.bind("example", None, Some(DIFF_TYPE)).unwrap();
        ctx.send_shutdown(proxy.objref()).unwrap();
    });
    client.join();
    server.join();
}

#[test]
fn poll_requests_interrupts_computation() {
    // The server computes on its own and drains outstanding requests
    // when it chooses to (paper §2.1).
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("server", 2, |ctx| {
        ctx.register("example", Box::new(DiffServant), vec![])
            .unwrap();
        let mut served = 0usize;
        let mut iterations = 0usize;
        while served < 2 {
            // "Own computation".
            std::hint::black_box((0..100).sum::<usize>());
            iterations += 1;
            served += ctx.poll_requests().unwrap();
            assert!(iterations < 5_000_000, "server never saw the requests");
        }
        served
    });
    let client = world.spawn_machine("client", 2, |ctx| {
        let proxy = ctx.spmd_bind("example", None, None).unwrap();
        for _ in 0..2 {
            let seq = DSequence::<f64>::new(ctx.rts(), 8, None).unwrap();
            let mut spec = RequestSpec::simple("sum");
            spec.dist_args = vec![proxy.dist_arg("sum", 0, ArgDir::In, &seq).unwrap()];
            let reply = proxy.invoke(&ctx, spec).unwrap();
            let mut r = CdrReader::new(&reply.nondist_body, ctx.endian());
            assert_eq!(f64::decode(&mut r).unwrap(), 0.0);
        }
    });
    client.join();
    assert_eq!(server.join(), vec![2, 2]);
}

#[test]
fn translation_mode_roundtrips() {
    // Both peers translating (paper §3.3's heterogeneity remark): data
    // must still arrive intact because pack/unpack swaps symmetrically.
    let world = World::new(LinkSpec::unlimited());
    let opts = OrbOptions {
        translate: true,
        ..Default::default()
    };
    let o2 = opts.clone();
    let server = world.spawn_machine_with("server", 2, opts, |ctx| {
        ctx.register("example", Box::new(DiffServant), vec![])
            .unwrap();
        ctx.serve_forever().unwrap();
    });
    let client = world.spawn_machine_with("client", 2, o2, move |ctx| {
        let mut proxy = ctx.spmd_bind("example", None, None).unwrap();
        for mode in [TransferMode::Centralized, TransferMode::MultiPort] {
            proxy.set_mode(mode).unwrap();
            let mut seq = DSequence::<f64>::new(ctx.rts(), 12, None).unwrap();
            for x in seq.local_data_mut() {
                *x = 2.5;
            }
            let mut spec = RequestSpec::simple("sum");
            spec.dist_args = vec![proxy.dist_arg("sum", 0, ArgDir::In, &seq).unwrap()];
            let reply = proxy.invoke(&ctx, spec).unwrap();
            let mut r = CdrReader::new(&reply.nondist_body, ctx.endian());
            assert_eq!(f64::decode(&mut r).unwrap(), 30.0, "mode {mode:?}");
        }
        if ctx.is_comm_thread() {
            ctx.send_shutdown(proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}

#[test]
fn timing_fields_populated() {
    let world = World::new(LinkSpec::unlimited());
    let server = start_server(&world, 2, vec![]);
    let client = world.spawn_machine("client", 2, move |ctx| {
        let mut proxy = ctx.spmd_bind("example", None, None).unwrap();
        proxy.set_mode(TransferMode::Centralized).unwrap();
        let seq = DSequence::<f64>::new(ctx.rts(), 1 << 12, None).unwrap();
        let mut spec = RequestSpec::simple("sum");
        spec.dist_args = vec![proxy.dist_arg("sum", 0, ArgDir::In, &seq).unwrap()];
        let reply = proxy.invoke(&ctx, spec).unwrap();
        assert!(reply.timing.total.as_nanos() > 0);
        if ctx.is_comm_thread() {
            // The communicating thread packed and sent the message.
            assert!(reply.timing.pack.as_nanos() > 0);
            assert!(reply.timing.send.as_nanos() > 0);
            ctx.send_shutdown(proxy.objref()).unwrap();
        }
    });
    client.join();
    server.join();
}
