//! Object and ORB lifecycle: registration, unregistration, re-binding,
//! resolve timeouts, bounded serve loops, and link accounting.

use pardis_cdr::Decode;
use pardis_core::prelude::*;
use pardis_core::OrbOptions;
use std::time::Duration;

struct Echo;
impl Servant for Echo {
    fn type_id(&self) -> &str {
        "IDL:echo:1.0"
    }
    fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()> {
        let x = i32::decode(&mut req.args()).map_err(PardisError::from)?;
        req.set_result(|w| {
            w.put_i32(x + 1);
            Ok(())
        })
    }
}

fn echo_spec(ctx: &OrbCtx, x: i32) -> RequestSpec {
    let mut spec = RequestSpec::simple("inc");
    let mut w = pardis_cdr::CdrWriter::new(ctx.endian());
    w.put_i32(x);
    spec.nondist_body = w.into_shared();
    spec
}

fn decode_i32(ctx: &OrbCtx, reply: &pardis_core::ReplyResult) -> i32 {
    let mut r = pardis_cdr::CdrReader::new(&reply.nondist_body, ctx.endian());
    i32::decode(&mut r).unwrap()
}

#[test]
fn serve_n_bounds_the_loop() {
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("s", 2, |ctx| {
        ctx.register("echo", Box::new(Echo), vec![]).unwrap();
        // Serve exactly three requests, then return.
        ctx.serve_n(3).unwrap()
    });
    let client = world.spawn_machine("c", 1, |ctx| {
        let proxy = ctx.bind("echo", None, None).unwrap();
        for i in 0..3 {
            let reply = proxy.invoke(&ctx, echo_spec(&ctx, i)).unwrap();
            assert_eq!(decode_i32(&ctx, &reply), i + 1);
        }
    });
    client.join();
    assert_eq!(server.join(), vec![3, 3]);
}

#[test]
fn serve_n_stops_early_on_shutdown() {
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("s", 1, |ctx| {
        ctx.register("echo", Box::new(Echo), vec![]).unwrap();
        ctx.serve_n(100).unwrap()
    });
    let client = world.spawn_machine("c", 1, |ctx| {
        let proxy = ctx.bind("echo", None, None).unwrap();
        let reply = proxy.invoke(&ctx, echo_spec(&ctx, 41)).unwrap();
        assert_eq!(decode_i32(&ctx, &reply), 42);
        ctx.send_shutdown(proxy.objref()).unwrap();
    });
    client.join();
    assert_eq!(server.join(), vec![1]);
}

#[test]
fn unregister_then_rebind_times_out() {
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("s", 1, |ctx| {
        ctx.register("echo", Box::new(Echo), vec![]).unwrap();
        ctx.serve_n(1).unwrap();
        ctx.unregister("echo");
        // Park until the naming probe below finishes.
        ctx.serve_forever().unwrap();
    });
    let opts = OrbOptions {
        resolve_timeout: Duration::from_millis(80),
        ..Default::default()
    };
    let client = world.spawn_machine_with("c", 1, opts, |ctx| {
        let proxy = ctx.bind("echo", None, None).unwrap();
        let request_port = proxy.objref().request_port;
        let host = proxy.objref().host;
        let reply = proxy.invoke(&ctx, echo_spec(&ctx, 1)).unwrap();
        assert_eq!(decode_i32(&ctx, &reply), 2);
        // Wait for the unregistration to land, then binding fails.
        loop {
            match ctx.bind("echo", None, None) {
                Err(PardisError::ObjectNotFound { .. }) => break,
                Ok(_) => std::thread::yield_now(),
                Err(other) => panic!("unexpected {other}"),
            }
        }
        // Shut the parked server down via its (still open) request port.
        ctx.send_shutdown(&pardis_net::ObjectRef {
            name: "echo".into(),
            type_id: "IDL:echo:1.0".into(),
            host,
            request_port,
            data_ports: vec![],
            nthreads: 1,
            distributions: vec![],
            epoch: 0,
        })
        .unwrap();
    });
    client.join();
    server.join();
}

#[test]
fn resolve_timeout_is_configurable() {
    let world = World::new(LinkSpec::unlimited());
    let opts = OrbOptions {
        resolve_timeout: Duration::from_millis(50),
        ..Default::default()
    };
    let client = world.spawn_machine_with("c", 1, opts, |ctx| {
        let t0 = std::time::Instant::now();
        let err = ctx.bind("nobody-home", None, None).unwrap_err();
        assert!(matches!(err, PardisError::ObjectNotFound { .. }));
        let e = t0.elapsed();
        assert!(e >= Duration::from_millis(50) && e < Duration::from_secs(5));
    });
    client.join();
}

#[test]
fn bind_to_wrong_host_fails() {
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("right", 1, |ctx| {
        ctx.register("echo", Box::new(Echo), vec![]).unwrap();
        ctx.serve_forever().unwrap();
    });
    let opts = OrbOptions {
        resolve_timeout: Duration::from_millis(60),
        ..Default::default()
    };
    let client = world.spawn_machine_with("other", 1, opts, |ctx| {
        // The object exists, but not on host "other".
        let err = ctx.bind("echo", Some("other"), None).unwrap_err();
        assert!(matches!(err, PardisError::ObjectNotFound { .. }));
        // Unknown host name fails immediately.
        let err = ctx.bind("echo", Some("atlantis"), None).unwrap_err();
        assert!(matches!(err, PardisError::ObjectNotFound { .. }));
        // Correct host works.
        let proxy = ctx.bind("echo", Some("right"), None).unwrap();
        ctx.send_shutdown(proxy.objref()).unwrap();
    });
    client.join();
    server.join();
}

#[test]
fn two_objects_one_machine() {
    struct Tagged(i32);
    impl Servant for Tagged {
        fn type_id(&self) -> &str {
            "IDL:tagged:1.0"
        }
        fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()> {
            let tag = self.0;
            req.set_result(move |w| {
                w.put_i32(tag);
                Ok(())
            })
        }
    }
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("s", 2, |ctx| {
        ctx.register("alpha", Box::new(Tagged(1)), vec![]).unwrap();
        ctx.register("beta", Box::new(Tagged(2)), vec![]).unwrap();
        ctx.serve_forever().unwrap();
    });
    let client = world.spawn_machine("c", 1, |ctx| {
        let a = ctx.bind("alpha", None, None).unwrap();
        let b = ctx.bind("beta", None, None).unwrap();
        // Both objects share the machine's request port but dispatch to
        // their own servants.
        assert_eq!(a.objref().request_port, b.objref().request_port);
        let ra = a.invoke(&ctx, RequestSpec::simple("id")).unwrap();
        let rb = b.invoke(&ctx, RequestSpec::simple("id")).unwrap();
        assert_eq!(decode_i32(&ctx, &ra), 1);
        assert_eq!(decode_i32(&ctx, &rb), 2);
        ctx.send_shutdown(a.objref()).unwrap();
    });
    client.join();
    server.join();
}

#[test]
fn link_stats_account_for_traffic() {
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("s", 1, |ctx| {
        ctx.register("echo", Box::new(Echo), vec![]).unwrap();
        ctx.serve_forever().unwrap();
    });
    let client = world.spawn_machine("c", 1, |ctx| {
        let proxy = ctx.bind("echo", None, None).unwrap();
        for i in 0..4 {
            proxy.invoke(&ctx, echo_spec(&ctx, i)).unwrap();
        }
        ctx.send_shutdown(proxy.objref()).unwrap();
    });
    client.join();
    server.join();
    let stats = world.fabric().default_link().unwrap().stats();
    // 4 requests + 4 replies + 1 shutdown = 9 messages at least.
    assert!(stats.messages >= 9, "messages = {}", stats.messages);
    assert!(stats.payload_bytes > 0);
    assert!(stats.frames >= stats.messages);
}
