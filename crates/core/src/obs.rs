//! Observability glue for the ORB (the `obs` feature).
//!
//! `pardis-obs` is pure mechanism (spans, metrics, timeline); this
//! module is the policy layer wiring it into the ORB:
//!
//! * [`init`] binds each computing thread to its `(machine, host,
//!   rank)` identity and installs the RTS observer forwarding
//!   collective wait times and epoch changes into the metrics
//!   registry;
//! * [`service_context`] / [`parse_service_context`] carry the active
//!   [`SpanContext`] across the wire in the request header's
//!   service-context slot. The context blob is always little-endian,
//!   independent of the message endianness — it is opaque to the
//!   GIOP layer and self-contained for the decoder.

use bytes::Bytes;
use pardis_cdr::{CdrReader, CdrWriter, Decode, Encode, Endian};
use pardis_obs::{metrics, recorder, SpanContext, SpanKind, SC_TRACING};
use pardis_rts::Endpoint;

/// Forwards RTS notifications into the calling rank's metrics block
/// (both callbacks fire on the rank's own thread).
struct ForwardToMetrics;

impl pardis_rts::obs::RtsObserver for ForwardToMetrics {
    fn collective_complete(&self, _name: &'static str, _rank: usize, wait_ns: u64) {
        metrics::observe("rts.collective_wait_ns", wait_ns);
    }

    fn epoch_changed(&self, _rank: usize, _epoch: u64) {
        metrics::add("rts.epoch_changes", 1);
    }
}

/// Bind the calling thread's observability identity and (once per
/// process) install the RTS observer. Called from `OrbCtx::init`.
pub(crate) fn init(machine: &str, host: u32, rts: &Endpoint) {
    pardis_obs::init_rank(machine, host, rts.rank());
    pardis_rts::obs::set_observer(Box::new(ForwardToMetrics));
}

/// The service-context entries for an outgoing request: the active
/// invocation's [`SpanContext`], or nothing when no trace is active.
pub(crate) fn service_context(rts: &Endpoint) -> Vec<(u32, Bytes)> {
    match recorder::current() {
        Some((trace_id, _local_root)) => {
            let ctx = SpanContext {
                trace_id,
                // The receiver parents under the invocation root,
                // whose span id equals the trace id by construction.
                parent_span: trace_id,
                rank: rts.rank() as u32,
                epoch: rts.membership().epoch(),
            };
            let mut w = CdrWriter::new(Endian::Little);
            match ctx.encode(&mut w) {
                Ok(()) => vec![(SC_TRACING, w.into_shared())],
                Err(_) => Vec::new(),
            }
        }
        None => Vec::new(),
    }
}

/// Extract the tracing context from a request's service-context
/// entries. Malformed blobs are ignored (observability must never
/// fail a request).
pub(crate) fn parse_service_context(entries: &[(u32, Bytes)]) -> Option<SpanContext> {
    let (_, blob) = entries.iter().find(|(id, _)| *id == SC_TRACING)?;
    let mut r = CdrReader::new(blob, Endian::Little);
    SpanContext::decode(&mut r).ok()
}

/// Record a completed phase span on the calling rank, parented under
/// the given span.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_span(
    kind: SpanKind,
    name: &str,
    trace_id: u64,
    span_id: u64,
    parent_span: u64,
    epoch: u64,
    bytes: u64,
    wait_ns: u64,
) {
    recorder::record(recorder::SpanEvent {
        kind,
        name: name.to_string(),
        trace_id,
        span_id,
        parent_span,
        epoch,
        bytes,
        wait_ns,
    });
}

/// Record a child phase (marshal/transfer) under the calling rank's
/// active invocation; no-op when no invocation is active.
pub(crate) fn record_phase(kind: SpanKind, name: &str, epoch: u64, bytes: u64, wait_ns: u64) {
    if let Some((trace_id, local_root)) = recorder::current() {
        record_span(
            kind,
            name,
            trace_id,
            recorder::alloc_span_id(),
            local_root,
            epoch,
            bytes,
            wait_ns,
        );
    }
}
