//! Server-side object model: servants, request dispatch, serve loops.
//!
//! An SPMD object is "an object associated with a set of one or more
//! computing threads visible to the request broker, … capable of
//! satisfying services if and only if a request for them is delivered to
//! all the computing threads" (§2). Concretely:
//!
//! * every computing thread registers its own [`Servant`] instance for
//!   the object (each thread implements its share of the computation),
//! * the communicating thread receives invocation headers on the
//!   machine's request port and relays them to all threads through the
//!   RTS,
//! * every thread materializes its local parts of the distributed
//!   arguments (scattered centrally or assembled from multi-port
//!   fragments), dispatches into its servant, synchronizes, and the
//!   reply flows back by the same method the request used.
//!
//! Serve loops come in three flavors: [`OrbCtx::serve_forever`] (until a
//! shutdown message), [`OrbCtx::serve_n`], and [`OrbCtx::poll_requests`]
//! — the paper's "server to interrupt its computation in order to
//! process outstanding requests" (§2.1).

use crate::dist::DistTempl;
use crate::dseq::{DSequence, Elem};
use crate::error::{PardisError, PardisResult};
use crate::orb::OrbCtx;
use crate::request::{ArgDir, InvokeTiming, RequestBody};
use crate::transfer::{centralized, multiport};
use bytes::Bytes;
use pardis_cdr::{CdrReader, CdrResult, CdrWriter, Endian};
use pardis_net::giop::{GiopMessage, ReplyHeader, ReplyStatus, RequestHeader, TransferMode};
use pardis_rts::ReduceOp;
use std::time::{Duration, Instant};

/// One computing thread's implementation of (its share of) an object.
pub trait Servant: Send {
    /// Interface repository id, e.g. `IDL:diff_object:1.0`. Must agree
    /// across all threads registering the same object.
    fn type_id(&self) -> &str;

    /// Handle one operation invocation. Called collectively: every
    /// computing thread of the object dispatches the same request with
    /// its own local argument parts. Returning
    /// [`PardisError::UserException`] reports an IDL-declared exception;
    /// other errors become system exceptions.
    fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()>;
}

/// A received distributed argument, as seen by one computing thread.
#[derive(Debug, Clone)]
pub struct DistIn {
    /// Passing mode.
    pub dir: ArgDir,
    /// Bytes per element.
    pub elem_size: usize,
    /// Layout on the client.
    pub client_templ: DistTempl,
    /// Layout on this server (this thread owns
    /// `server_templ.range(rank)`).
    pub server_templ: DistTempl,
    /// This thread's local part, native byte order. Zero-filled for
    /// `out` arguments.
    pub local: Vec<u8>,
}

/// One invocation as presented to a servant.
pub struct ServerRequest<'a> {
    ctx: &'a OrbCtx,
    operation: String,
    endian: Endian,
    nondist: Bytes,
    dist_in: Vec<DistIn>,
    reply_nondist: Bytes,
    reply_dist: Vec<Option<Vec<u8>>>,
}

impl<'a> ServerRequest<'a> {
    /// The operation being invoked.
    pub fn operation(&self) -> &str {
        &self.operation
    }

    /// The ORB context of this computing thread (rank, RTS access for
    /// intra-object communication such as halo exchanges).
    pub fn ctx(&self) -> &OrbCtx {
        self.ctx
    }

    /// CDR reader over the non-distributed `in`/`inout` arguments.
    pub fn args(&self) -> CdrReader<'_> {
        CdrReader::new(&self.nondist, self.endian)
    }

    /// Number of distributed arguments.
    pub fn dist_count(&self) -> usize {
        self.dist_in.len()
    }

    /// Raw view of distributed argument `idx`.
    pub fn dist_raw(&self, idx: usize) -> PardisResult<&DistIn> {
        self.dist_in
            .get(idx)
            .ok_or_else(|| PardisError::BadDistArg(format!("no distributed argument {idx}")))
    }

    /// Materialize distributed argument `idx` as a typed sequence (this
    /// thread's local part).
    pub fn dist_seq<T: Elem>(&self, idx: usize) -> PardisResult<DSequence<T>> {
        let d = self.dist_raw(idx)?;
        if d.elem_size != T::wire_size() {
            return Err(PardisError::BadDistArg(format!(
                "argument {idx} has {}-byte elements, requested type has {}",
                d.elem_size,
                T::wire_size()
            )));
        }
        let local = T::from_native_bytes(&d.local);
        DSequence::from_parts(local, d.server_templ.clone(), self.ctx.rank())
    }

    /// Marshal the non-distributed results (out/inout/return values).
    /// All threads must write identical bytes; the communicating thread's
    /// copy travels back.
    pub fn set_result<F>(&mut self, f: F) -> PardisResult<()>
    where
        F: FnOnce(&mut CdrWriter) -> CdrResult<()>,
    {
        let mut w = CdrWriter::new(self.endian);
        f(&mut w)?;
        self.reply_nondist = w.into_shared();
        Ok(())
    }

    /// Return this thread's local part of distributed argument `idx`
    /// (which must be `out` or `inout`). The sequence must keep the
    /// layout the argument arrived with — PARDIS does not resize
    /// sequences across an invocation boundary.
    pub fn return_dist_seq<T: Elem>(&mut self, idx: usize, seq: &DSequence<T>) -> PardisResult<()> {
        let d = self
            .dist_in
            .get(idx)
            .ok_or_else(|| PardisError::BadDistArg(format!("no distributed argument {idx}")))?;
        if !d.dir.returns() {
            return Err(PardisError::BadDistArg(format!(
                "argument {idx} is `in`; it cannot be returned"
            )));
        }
        if seq.templ() != &d.server_templ {
            return Err(PardisError::BadDistArg(format!(
                "returned sequence layout differs from the argument's (len {} vs {})",
                seq.len(),
                d.server_templ.len()
            )));
        }
        self.reply_dist[idx] = Some(T::to_native_bytes(seq.local_data()).to_vec());
        Ok(())
    }

    /// The marshaled non-distributed results (for the reply engines).
    pub(crate) fn reply_nondist_bytes(&self) -> Bytes {
        self.reply_nondist.clone()
    }

    /// Final reply bytes for a returning argument: what the servant
    /// stored, falling back to the (unmodified) request data for `inout`
    /// and zeros for `out`.
    pub(crate) fn reply_local(&self, idx: usize) -> &[u8] {
        match &self.reply_dist[idx] {
            Some(v) => v,
            None => &self.dist_in[idx].local,
        }
    }
}

impl OrbCtx {
    /// Serve exactly one request (collective across the machine's
    /// threads; blocks until a request or shutdown arrives). Returns
    /// `false` if a shutdown message ended the loop.
    pub fn serve_one(&self) -> PardisResult<bool> {
        let payload = self.next_served_payload(None)?;
        match payload {
            Some(p) => self.serve_payload(p),
            None => Ok(true), // spurious wake with timeout; not used here
        }
    }

    /// Serve requests until shutdown.
    pub fn serve_forever(&self) -> PardisResult<()> {
        while self.serve_one()? {}
        Ok(())
    }

    /// Serve up to `n` requests or until shutdown; returns the number
    /// actually served.
    pub fn serve_n(&self, n: usize) -> PardisResult<usize> {
        let mut served = 0;
        while served < n {
            if !self.serve_one()? {
                break;
            }
            served += 1;
        }
        Ok(served)
    }

    /// Drain any requests that are already waiting, without blocking —
    /// the paper's "interrupt its computation in order to process
    /// outstanding requests". Collective. Returns the number served;
    /// shutdown messages found while draining are ignored (a polling
    /// server decides when to stop).
    pub fn poll_requests(&self) -> PardisResult<usize> {
        let mut served = 0;
        loop {
            match self.next_served_payload(Some(Duration::ZERO))? {
                None => return Ok(served),
                Some(p) => {
                    if self.serve_payload(p)? {
                        served += 1;
                    }
                }
            }
        }
    }

    /// Communicating thread pulls the next request (optionally
    /// non-blocking) and relays it to all threads. Returns `None` when a
    /// non-blocking poll found nothing.
    ///
    /// In the centralized method the relayed copy is *stripped* of any
    /// inline argument data — data is scattered separately so the cost
    /// model matches the real system (only the communicating thread ever
    /// holds the whole argument). The stripped data is stashed in
    /// `self.pending_inline` equivalent: it is re-attached by
    /// `serve_payload` on the communicating thread via thread-local
    /// state kept in the returned payload pair.
    fn next_served_payload(&self, poll: Option<Duration>) -> PardisResult<Option<ServedPayload>> {
        if self.is_comm_thread() {
            let request_port = self.request_port.as_ref().ok_or_else(|| {
                PardisError::Internal("communicating thread has no request port".into())
            })?;
            // Pull datagrams until one decodes. A datagram corrupted in
            // flight (injected frame faults) is counted and skipped so
            // the serve loop survives it; the client's deadline/retry
            // machinery recovers the lost request.
            let parsed: Option<(Option<(RequestHeader, RequestBody)>, Bytes)> = loop {
                let dg = match poll {
                    None => Some(request_port.recv()?),
                    Some(_) => request_port.try_recv(),
                };
                let dg = match dg {
                    None => break None,
                    Some(dg) => dg,
                };
                let decoded = GiopMessage::body_endian(&dg.payload)
                    .and_then(|_| GiopMessage::decode(&dg.payload));
                match decoded {
                    Ok(GiopMessage::Request(header, body)) => {
                        let endian = GiopMessage::body_endian(&dg.payload)?;
                        match RequestBody::decode(&body, endian) {
                            Ok(req) => break Some((Some((header, req)), dg.payload)),
                            Err(_) => {
                                self.serve_decode_errors
                                    .set(self.serve_decode_errors.get() + 1);
                                #[cfg(feature = "obs")]
                                pardis_obs::metrics::add("orb.serve_decode_errors", 1);
                                continue;
                            }
                        }
                    }
                    Ok(GiopMessage::CloseConnection) => break Some((None, dg.payload)),
                    Ok(other) => {
                        return Err(PardisError::Net(format!(
                            "unexpected message on request port: {other:?}"
                        )))
                    }
                    Err(_) => {
                        self.serve_decode_errors
                            .set(self.serve_decode_errors.get() + 1);
                        #[cfg(feature = "obs")]
                        pardis_obs::metrics::add("orb.serve_decode_errors", 1);
                        continue;
                    }
                }
            };
            // Tell the other threads whether anything arrived.
            let flag = parsed.is_some() as u64;
            self.rts
                .broadcast(0, Some(Bytes::copy_from_slice(&flag.to_le_bytes())))?;
            match parsed {
                None => Ok(None),
                Some((Some((header, req)), payload)) => {
                    let endian = GiopMessage::body_endian(&payload)?;
                    // Strip inline data before relaying.
                    let inline: Vec<Option<Bytes>> =
                        req.dist.iter().map(|(_, d)| d.clone()).collect();
                    let control = RequestBody {
                        nondist: req.nondist.clone(),
                        dist: req.dist.iter().map(|(m, _)| (m.clone(), None)).collect(),
                    };
                    let control_wire =
                        GiopMessage::Request(header.clone(), control.to_bytes(endian))
                            .encode(endian)?;
                    self.rts.broadcast(0, Some(control_wire))?;
                    Ok(Some(ServedPayload::new(
                        header,
                        control,
                        endian,
                        Some(inline),
                    )))
                }
                Some((None, payload)) => {
                    let endian = GiopMessage::body_endian(&payload)?;
                    self.rts.broadcast(0, Some(payload))?;
                    Ok(Some(ServedPayload::shutdown(endian)))
                }
            }
        } else {
            let flag = self.rts.broadcast(0, None)?;
            let mut a = [0u8; 8];
            a.copy_from_slice(&flag[..8]);
            if u64::from_le_bytes(a) == 0 {
                return Ok(None);
            }
            let wire = self.rts.broadcast(0, None)?;
            let endian = GiopMessage::body_endian(&wire)?;
            match GiopMessage::decode(&wire)? {
                GiopMessage::Request(header, body) => {
                    let req = RequestBody::decode(&body, endian)?;
                    Ok(Some(ServedPayload::new(header, req, endian, None)))
                }
                GiopMessage::CloseConnection => Ok(Some(ServedPayload::shutdown(endian))),
                other => Err(PardisError::Net(format!(
                    "unexpected relayed message: {other:?}"
                ))),
            }
        }
    }

    /// Every scheduled `ThreadDeath` whose step has arrived by serve
    /// step `step`, ascending and deduplicated. All ranks read the same
    /// shared fault plan, so the result — and everything keyed on it
    /// (the degradation verdict, the template remap) — is identical on
    /// every thread with no extra communication. The live membership
    /// mask is NOT used here: a rank racing ahead could have marked a
    /// later death already, and basing the verdict on it would diverge.
    ///
    /// Rank 0 is the communicating thread; its death is machine death,
    /// not degraded operation, so scheduled deaths of rank 0 are
    /// ignored. With no fault plan installed this is one `RwLock` read
    /// returning an empty schedule.
    fn scheduled_dead_at(&self, step: u64) -> Vec<usize> {
        let deaths = self.host.fabric().thread_deaths();
        if deaths.is_empty() {
            return Vec::new();
        }
        let mut dead: Vec<usize> = deaths
            .iter()
            .filter(|d| d.at_step <= step)
            .map(|d| d.rank as usize)
            .filter(|&r| r != 0 && r < self.nthreads())
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// Process one relayed request. Returns `false` for shutdown.
    fn serve_payload(&self, p: ServedPayload) -> PardisResult<bool> {
        let ServedPayload {
            header,
            body,
            endian,
            inline,
        } = p;
        let header = match header {
            Some(h) => h,
            None => return Ok(false), // shutdown
        };

        // Scheduled thread deaths fire immediately before serving the
        // `at_step`-th request. The request above was already relayed to
        // every thread, so all ranks reach this point for the same step
        // and apply the same plan — rank death replays bit-for-bit.
        let step = self.serve_step.get();
        self.serve_step.set(step + 1);
        let dead = self.scheduled_dead_at(step);
        if !dead.is_empty() {
            // Synchronize before the first mark: collectives reject a
            // confirmed-dead caller at entry, so a rank racing ahead
            // must not record the death while the dying rank is still
            // inside the relay broadcast above. After this barrier the
            // dying rank touches no further collective.
            self.rts.barrier();
            for &r in &dead {
                // Idempotent: only the first application bumps the epoch.
                self.rts.membership().mark_dead(r);
                // Close the dead thread's data port before any reply can
                // leave the machine, so a retrying client's port probe
                // deterministically demotes the binding to the
                // centralized method.
                self.host
                    .fabric()
                    .kill_port(self.host.id(), self.data_port_ids[r]);
            }
            // Republish under the bumped epoch so clients holding a
            // membership-change exception can rebind past the epoch
            // fence.
            self.republish_under_current_epoch();
            if dead.contains(&self.rank()) {
                // This thread is dead: leave the serve loop without
                // touching the survivors' collectives.
                return Ok(false);
            }
            let live = self.nthreads() - dead.len();
            let refuse = !self.degrade.allows(live, self.nthreads());
            // Multi-port fragments routed to a dead thread's port are
            // lost, so this invocation cannot complete in either policy;
            // the retry (port probe) arrives centralized.
            let frags_lost = header.mode == TransferMode::MultiPort;
            if refuse || frags_lost {
                if self.is_comm_thread() && header.response_expected {
                    let v = self.rts.membership().view();
                    let status = if refuse {
                        ReplyStatus::MembershipChange {
                            epoch: v.epoch,
                            dead: v
                                .dead(self.nthreads())
                                .into_iter()
                                .map(|r| r as u32)
                                .collect(),
                            survivors: v
                                .survivors(self.nthreads())
                                .into_iter()
                                .map(|r| r as u32)
                                .collect(),
                        }
                    } else {
                        ReplyStatus::SystemException(
                            "communication failure: data port closed by thread death; retry".into(),
                        )
                    };
                    let empty = crate::request::ReplyBody {
                        nondist: Bytes::new(),
                        dist_out: vec![],
                    };
                    let reply = GiopMessage::Reply(
                        ReplyHeader {
                            request_id: header.request_id,
                            status,
                        },
                        empty.to_bytes(endian),
                    );
                    self.host.send_to(
                        header.reply_host,
                        header.reply_port,
                        reply.encode(endian)?,
                    )?;
                }
                return Ok(true);
            }
            // Survivors (or a met quorum): serve degraded from here on.
            self.degraded_survivors.replace(Some(
                (0..self.nthreads()).filter(|r| !dead.contains(r)).collect(),
            ));
        }

        let mut timing = InvokeTiming::default();
        let t0 = Instant::now();
        // The client's tracing context, if it sent one: server spans of
        // this request parent under the client's invocation root.
        #[cfg(feature = "obs")]
        let obs_sc = crate::obs::parse_service_context(&header.service_context);

        // Materialize this thread's local parts of the distributed
        // arguments. A failure here (e.g. a multi-port fragment wait
        // that hit `frag_timeout` because the client's frames were
        // dropped) must NOT abort the serve loop: it is recorded and
        // joins the machine-wide error agreement below, so the client
        // gets an error Reply and the server stays up.
        let received = match header.mode {
            TransferMode::Centralized => {
                centralized::server_receive_args(self, &body, inline, &mut timing)
            }
            TransferMode::MultiPort => {
                multiport::server_receive_args(self, header.request_id, &body, &mut timing)
            }
        };
        let (dist_in, recv_err) = match received {
            Ok(v) => (v, None),
            Err(e) => (Vec::new(), Some(e)),
        };

        // Agree machine-wide on the receive outcome BEFORE dispatching:
        // if one thread's fragments were lost, a thread that received
        // everything must not enter the servant (whose SPMD code runs
        // collectives) while its peer skips it — that mismatch
        // deadlocks the machine.
        let any_recv_err = self
            .rts
            .allreduce_f64(&[if recv_err.is_some() { 1.0 } else { 0.0 }], ReduceOp::Max)?[0]
            > 0.0;

        // Dispatch into this thread's servant (skipped when the
        // arguments never materialized).
        let n_dist = dist_in.len();
        let mut sreq = ServerRequest {
            ctx: self,
            operation: header.operation.clone(),
            endian,
            nondist: body.nondist.clone(),
            dist_in,
            reply_nondist: Bytes::new(),
            reply_dist: vec![None; n_dist],
        };
        let result = if any_recv_err {
            Err(recv_err.unwrap_or_else(|| {
                PardisError::CommFailure(
                    "argument receive failed on another computing thread".into(),
                )
            }))
        } else {
            let servant = self.servants.borrow_mut().remove(&header.object_name);
            match servant {
                None => Err(PardisError::ObjectNotFound {
                    name: header.object_name.clone(),
                    host: Some(self.host.name()),
                }),
                Some(mut s) => {
                    let r = s.dispatch(&mut sreq);
                    self.servants
                        .borrow_mut()
                        .insert(header.object_name.clone(), s);
                    r
                }
            }
        };

        // Each rank's dispatch span hangs off the client's invocation
        // root, stitching the two machines' trees into one trace.
        #[cfg(feature = "obs")]
        let obs_dispatch_span = obs_sc.as_ref().map(|sc| {
            let id = pardis_obs::recorder::alloc_span_id();
            crate::obs::record_span(
                pardis_obs::SpanKind::Dispatch,
                &header.operation,
                sc.trace_id,
                id,
                sc.parent_span,
                self.rts.membership().epoch(),
                body.nondist.len() as u64,
                t0.elapsed().as_nanos() as u64,
            );
            id
        });

        // Post-invocation synchronization (§3.2: "after the invocation
        // the server's computing threads synchronize").
        let tb = Instant::now();
        self.rts.barrier();
        timing.barrier = tb.elapsed();

        // Agree machine-wide on success before sending any data:
        // a thread that failed must not leave the client waiting for
        // fragments that will never come.
        let any_err = self
            .rts
            .allreduce_f64(&[if result.is_err() { 1.0 } else { 0.0 }], ReduceOp::Max)?[0]
            > 0.0;

        if header.response_expected {
            if any_err {
                // Collect the error texts; the communicating thread
                // reports the first one.
                let msg = match &result {
                    Err(e) => e.to_string(),
                    Ok(()) => String::new(),
                };
                let gathered = self
                    .rts
                    .gather_bytes(0, Bytes::copy_from_slice(msg.as_bytes()))?;
                if let Some(chunks) = gathered {
                    let first = chunks
                        .iter()
                        .find(|c| !c.is_empty())
                        .map(|c| String::from_utf8_lossy(c).into_owned())
                        .unwrap_or_else(|| "unknown error".into());
                    let status = if first.starts_with("user exception") {
                        ReplyStatus::UserException(
                            first.trim_start_matches("user exception: ").to_string(),
                        )
                    } else {
                        ReplyStatus::SystemException(first)
                    };
                    let empty = crate::request::ReplyBody {
                        nondist: Bytes::new(),
                        dist_out: vec![],
                    };
                    let reply = GiopMessage::Reply(
                        ReplyHeader {
                            request_id: header.request_id,
                            status,
                        },
                        empty.to_bytes(endian),
                    );
                    self.host.send_to(
                        header.reply_host,
                        header.reply_port,
                        reply.encode(endian)?,
                    )?;
                }
            } else {
                match header.mode {
                    TransferMode::Centralized => {
                        centralized::server_send_reply(self, &header, &sreq, endian, &mut timing)?
                    }
                    TransferMode::MultiPort => {
                        multiport::server_send_reply(self, &header, &sreq, endian, &mut timing)?
                    }
                }
            }
        }

        #[cfg(feature = "obs")]
        {
            pardis_obs::metrics::add("orb.served", 1);
            if let (Some(sc), Some(did)) = (&obs_sc, obs_dispatch_span) {
                crate::obs::record_span(
                    pardis_obs::SpanKind::Reply,
                    &header.operation,
                    sc.trace_id,
                    pardis_obs::recorder::alloc_span_id(),
                    did,
                    self.rts.membership().epoch(),
                    0,
                    0,
                );
            }
        }

        timing.total = t0.elapsed();
        self.last_serve_timing.set(timing);
        Ok(true)
    }
}

/// A request after relay to all threads.
struct ServedPayload {
    /// `None` signals shutdown.
    header: Option<RequestHeader>,
    body: RequestBody,
    endian: Endian,
    /// Inline argument data, present only on the communicating thread in
    /// centralized mode.
    inline: Option<Vec<Option<Bytes>>>,
}

impl ServedPayload {
    fn shutdown(endian: Endian) -> ServedPayload {
        ServedPayload {
            header: None,
            body: RequestBody {
                nondist: Bytes::new(),
                dist: vec![],
            },
            endian,
            inline: None,
        }
    }
}

// ServedPayload carries Option<RequestHeader>; adapt construction sites.
#[allow(clippy::needless_update)]
impl ServedPayload {
    fn new(
        header: RequestHeader,
        body: RequestBody,
        endian: Endian,
        inline: Option<Vec<Option<Bytes>>>,
    ) -> ServedPayload {
        ServedPayload {
            header: Some(header),
            body,
            endian,
            inline,
        }
    }
}
