//! Deployment harness: machines, a fabric, a naming domain.
//!
//! A [`World`] stands in for the paper's testbed: two (or more) parallel
//! machines joined by a network, sharing one naming domain. It exists so
//! that tests, examples and benchmarks can express "run this SPMD
//! program on a 4-thread client machine and that one on an 8-thread
//! server machine" in a few lines:
//!
//! ```
//! use pardis_core::world::World;
//! use pardis_net::LinkSpec;
//!
//! let world = World::new(LinkSpec::unlimited());
//! let server = world.spawn_machine("challenge", 2, |ctx| ctx.nthreads());
//! let client = world.spawn_machine("onyx", 3, |ctx| ctx.rank());
//! assert_eq!(server.join(), vec![2, 2]);
//! assert_eq!(client.join(), vec![0, 1, 2]);
//! ```

use crate::error::PardisResult;
use crate::naming::NameService;
use crate::orb::{OrbCtx, OrbOptions};
use pardis_net::{Fabric, LinkSpec};
use pardis_rts::Domain;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A collection of simulated machines around one shared link and one
/// naming domain.
#[derive(Clone)]
pub struct World {
    fabric: Fabric,
    naming: NameService,
}

impl World {
    /// A world whose machines all share one link of `spec` — the paper's
    /// configuration (one ATM circuit between the Onyx and the Power
    /// Challenge).
    pub fn new(spec: LinkSpec) -> World {
        World {
            fabric: Fabric::shared_link(spec),
            naming: NameService::new(),
        }
    }

    /// The underlying network fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The shared naming domain.
    pub fn naming(&self) -> &NameService {
        &self.naming
    }

    /// Spawn a machine named `name` running `nthreads` computing
    /// threads, each executing `f` with its own [`OrbCtx`]. Default ORB
    /// options.
    pub fn spawn_machine<T, F>(&self, name: &str, nthreads: usize, f: F) -> MachineHandle<T>
    where
        T: Send + 'static,
        F: Fn(OrbCtx) -> T + Send + Sync + 'static,
    {
        self.spawn_machine_with(name, nthreads, OrbOptions::default(), f)
    }

    /// Spawn with explicit ORB options (wire endianness, data
    /// translation, resolve timeout).
    pub fn spawn_machine_with<T, F>(
        &self,
        name: &str,
        nthreads: usize,
        opts: OrbOptions,
        f: F,
    ) -> MachineHandle<T>
    where
        T: Send + 'static,
        F: Fn(OrbCtx) -> T + Send + Sync + 'static,
    {
        let host = self.fabric.add_host(name);
        let naming = self.naming.clone();
        let f = Arc::new(f);
        let name = name.to_string();
        let handles: Vec<JoinHandle<T>> = Domain::new(nthreads)
            .into_iter()
            .map(|ep| {
                let host = host.clone();
                let naming = naming.clone();
                let opts = opts.clone();
                let f = f.clone();
                let tname = format!("{}-t{}", name, ep.rank());
                std::thread::Builder::new()
                    .name(tname)
                    .spawn(move || {
                        let ctx = OrbCtx::init(ep, host, naming, opts)
                            .expect("ORB initialization failed");
                        f(ctx)
                    })
                    .expect("spawn machine thread")
            })
            .collect();
        MachineHandle { handles }
    }

    /// Convenience for the ubiquitous client/server pair: spawn a server
    /// machine and a client machine, wait for both, and return
    /// `(server_results, client_results)`.
    pub fn run_pair<S, C, TS, TC>(
        &self,
        server_threads: usize,
        client_threads: usize,
        server_fn: S,
        client_fn: C,
    ) -> (Vec<TS>, Vec<TC>)
    where
        TS: Send + 'static,
        TC: Send + 'static,
        S: Fn(OrbCtx) -> TS + Send + Sync + 'static,
        C: Fn(OrbCtx) -> TC + Send + Sync + 'static,
    {
        let server = self.spawn_machine("server", server_threads, server_fn);
        let client = self.spawn_machine("client", client_threads, client_fn);
        (server.join(), client.join())
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("fabric", &self.fabric)
            .field("naming", &self.naming)
            .finish()
    }
}

/// Join handle for a spawned machine.
pub struct MachineHandle<T> {
    handles: Vec<JoinHandle<T>>,
}

impl<T> MachineHandle<T> {
    /// Wait for every computing thread and collect their results in
    /// thread order. Panics if any thread panicked.
    pub fn join(self) -> Vec<T> {
        self.handles
            .into_iter()
            .map(|h| h.join().expect("machine thread panicked"))
            .collect()
    }

    /// Wait, converting each thread's result (convenience for
    /// `PardisResult` bodies).
    pub fn join_results(self) -> PardisResult<Vec<T>> {
        Ok(self.join())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_join() {
        let world = World::new(LinkSpec::unlimited());
        let m = world.spawn_machine("m", 4, |ctx| (ctx.rank(), ctx.nthreads()));
        let r = m.join();
        assert_eq!(r, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn machines_get_distinct_hosts() {
        let world = World::new(LinkSpec::unlimited());
        let a = world.spawn_machine("a", 1, |ctx| ctx.host().id());
        let b = world.spawn_machine("b", 1, |ctx| ctx.host().id());
        assert_ne!(a.join()[0], b.join()[0]);
        assert!(world.fabric().host_by_name("a").is_some());
    }

    #[test]
    fn orb_ctx_ports_are_consistent() {
        let world = World::new(LinkSpec::unlimited());
        let m = world.spawn_machine("m", 3, |ctx| {
            // All threads agree on the request port and the data port
            // table lists this thread's own port at its rank.
            (
                ctx.request_port_id,
                ctx.data_port_ids.clone(),
                ctx.data_port.port(),
                ctx.rank(),
            )
        });
        let r = m.join();
        let req_port = r[0].0;
        let table = r[0].1.clone();
        for (rp, tab, own, rank) in r {
            assert_eq!(rp, req_port);
            assert_eq!(tab, table);
            assert_eq!(tab[rank], own);
        }
    }
}
