//! The ORB context.
//!
//! An [`OrbCtx`] is one computing thread's handle on the PARDIS ORB. An
//! SPMD program of `n` threads holds `n` contexts created collectively by
//! [`OrbCtx::init`]; a sequential program holds one. The context owns:
//!
//! * the thread's RTS endpoint (intra-machine message passing),
//! * the thread's **data port** — the per-thread network connection that
//!   enables multi-port argument transfer (§3.3),
//! * on the communicating thread (thread 0), the machine's **request
//!   port**, where invocation headers arrive (§3.2/§3.3: the invocation
//!   itself is always delivered centrally),
//! * the naming domain, the servant registry, and buffered
//!   data-transfer fragments.

use crate::error::PardisResult;
use crate::naming::NameService;
use crate::request::InvokeTiming;
use crate::server::Servant;
use bytes::Bytes;
use pardis_cdr::Endian;
use pardis_net::giop::TransferHeader;
use pardis_net::{Host, ObjectRef, PortId, PortRecv};
use pardis_rts::Endpoint;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// What a server machine does with an in-flight or subsequent
/// invocation once one of its computing threads is confirmed dead.
///
/// The policy is evaluated as a pure function of the membership view,
/// so every surviving thread reaches the same verdict without extra
/// communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradePolicy {
    /// Refuse: reply with a typed membership-change exception so the
    /// client learns the epoch, the dead ranks, and the survivors, and
    /// can decide to rebind or give up. The default — degraded results
    /// are never returned silently.
    FailFast,
    /// Complete over the survivors while at least `k` threads live;
    /// below the quorum, behave like [`DegradePolicy::FailFast`].
    Quorum(u32),
    /// Always complete over the survivor set: distributed arguments are
    /// remapped onto the live threads blockwise.
    Survivors,
}

impl DegradePolicy {
    /// Whether an invocation may proceed with `live` of `total` threads.
    pub fn allows(&self, live: usize, total: usize) -> bool {
        match *self {
            DegradePolicy::FailFast => live == total,
            DegradePolicy::Quorum(k) => live == total || live >= k as usize,
            DegradePolicy::Survivors => live > 0,
        }
    }
}

/// ORB configuration knobs.
#[derive(Debug, Clone)]
pub struct OrbOptions {
    /// Byte order used on the wire (native by default; forcing the
    /// non-native order exercises the data-translation path end to end).
    pub endian: Endian,
    /// Apply data translation (per-word byte swap) when packing and
    /// unpacking distributed arguments, simulating a heterogeneous peer
    /// — the §3.3 ablation.
    pub translate: bool,
    /// How long `bind`/`spmd_bind` wait for the object to be activated.
    pub resolve_timeout: Duration,
    /// How long a server computing thread waits for the DataTransfer
    /// fragments of one argument (multi-port mode) before reporting a
    /// system exception. `None` (the default) blocks forever — correct
    /// on a lossless fabric; set it when frames can be dropped so a lost
    /// fragment degrades to an error reply instead of a hang.
    pub frag_timeout: Option<Duration>,
    /// Server-side graceful-degradation policy applied when a computing
    /// thread is confirmed dead mid-service.
    pub degrade: DegradePolicy,
}

impl Default for OrbOptions {
    fn default() -> OrbOptions {
        OrbOptions {
            endian: Endian::native(),
            translate: false,
            resolve_timeout: Duration::from_secs(30),
            frag_timeout: None,
            degrade: DegradePolicy::FailFast,
        }
    }
}

/// Buffered early-arriving DataTransfer fragments, keyed by
/// `(request_id, arg_index)`.
pub(crate) type FragBuffer = HashMap<(u64, u32), VecDeque<(TransferHeader, Bytes)>>;

/// One computing thread's handle on the ORB.
pub struct OrbCtx {
    pub(crate) rts: Endpoint,
    pub(crate) host: Host,
    pub(crate) naming: NameService,
    /// This thread's data port (fragment traffic).
    pub(crate) data_port: PortRecv,
    /// Data port ids of every thread on this machine, in thread order.
    pub(crate) data_port_ids: Vec<PortId>,
    /// The machine's request port; only the communicating thread holds
    /// the receiving half.
    pub(crate) request_port: Option<PortRecv>,
    pub(crate) request_port_id: PortId,
    /// This thread's servant instances, by object name.
    pub(crate) servants: RefCell<HashMap<String, Box<dyn Servant>>>,
    /// DataTransfer fragments received early, keyed by (request, arg).
    pub(crate) frags: RefCell<FragBuffer>,
    /// Per-thread request id counter.
    pub(crate) req_counter: Cell<u64>,
    pub(crate) endian: Endian,
    pub(crate) translate: bool,
    /// Resolve timeout for binds.
    pub(crate) resolve_timeout: Duration,
    /// Server-side fragment-wait timeout.
    pub(crate) frag_timeout: Option<Duration>,
    /// Timing of the most recent served request (server-side phases).
    pub(crate) last_serve_timing: Cell<InvokeTiming>,
    /// Datagrams skipped by the serve loop because they failed to
    /// decode (corrupted in flight).
    pub(crate) serve_decode_errors: Cell<u64>,
    /// Degradation policy applied after a confirmed thread death.
    pub(crate) degrade: DegradePolicy,
    /// Number of requests this thread's serve loop has begun serving —
    /// the logical clock that scheduled `ThreadDeath` faults key on.
    pub(crate) serve_step: Cell<u64>,
    /// Object references this machine has published, by name: the comm
    /// thread re-registers them under the new epoch after a membership
    /// change so clients can rebind.
    pub(crate) registered: RefCell<HashMap<String, ObjectRef>>,
    /// `Some(survivor ranks)` once this machine serves degraded. Derived
    /// from the *scheduled* death plan, never from the racy live
    /// membership mask, so every surviving thread remaps distribution
    /// templates identically without extra communication.
    pub(crate) degraded_survivors: RefCell<Option<Vec<usize>>>,
}

impl OrbCtx {
    /// Collectively initialize the ORB across a machine's computing
    /// threads: every thread of the RTS domain must call this once, with
    /// the same `host` and `naming`.
    pub fn init(
        rts: Endpoint,
        host: Host,
        naming: NameService,
        opts: OrbOptions,
    ) -> PardisResult<OrbCtx> {
        // Bind this thread's race-analyzer identity before any tracked
        // buffer can be created on it.
        #[cfg(feature = "analyze")]
        crate::race::set_actor(&host.name(), rts.rank());
        // Bind this thread's observability identity (span recorder +
        // metrics) before the first collective can record anything.
        #[cfg(feature = "obs")]
        crate::obs::init(&host.name(), host.id().0, &rts);
        // Each thread opens its own data port, in rank order so the
        // machine's port numbering is a pure function of thread count —
        // this is what lets a seeded fault plan replay identically
        // across runs. Then advertise the ports to the whole machine.
        let mut data_port = None;
        for r in 0..rts.size() {
            if rts.rank() == r {
                data_port = Some(host.open_port());
            }
            rts.barrier();
        }
        let data_port = data_port.ok_or_else(|| {
            crate::PardisError::Internal("rank-ordered data port was not opened".into())
        })?;
        let port_ids_u64 = rts.allgather_u64(data_port.port() as u64)?;
        let data_port_ids: Vec<PortId> = port_ids_u64.into_iter().map(|p| p as PortId).collect();

        // The communicating thread opens the request port.
        let (request_port, request_port_id) = if rts.rank() == 0 {
            let p = host.open_port();
            let id = p.port();
            rts.broadcast(0, Some(Bytes::copy_from_slice(&id.to_le_bytes())))?;
            (Some(p), id)
        } else {
            let b = rts.broadcast(0, None)?;
            let mut a = [0u8; 4];
            a.copy_from_slice(&b[..4]);
            (None, PortId::from_le_bytes(a))
        };

        Ok(OrbCtx {
            rts,
            host,
            naming,
            data_port,
            data_port_ids,
            request_port,
            request_port_id,
            servants: RefCell::new(HashMap::new()),
            frags: RefCell::new(HashMap::new()),
            req_counter: Cell::new(0),
            endian: opts.endian,
            translate: opts.translate,
            resolve_timeout: opts.resolve_timeout,
            frag_timeout: opts.frag_timeout,
            last_serve_timing: Cell::new(InvokeTiming::default()),
            serve_decode_errors: Cell::new(0),
            degrade: opts.degrade,
            serve_step: Cell::new(0),
            registered: RefCell::new(HashMap::new()),
            degraded_survivors: RefCell::new(None),
        })
    }

    /// This computing thread's index within the machine.
    pub fn rank(&self) -> usize {
        self.rts.rank()
    }

    /// Number of computing threads on this machine.
    pub fn nthreads(&self) -> usize {
        self.rts.size()
    }

    /// Whether this is the machine's communicating thread.
    pub fn is_comm_thread(&self) -> bool {
        self.rank() == 0
    }

    /// The thread's RTS endpoint — the paper's "interface to the
    /// run-time system underlying the object implementation"; user code
    /// (e.g. halo exchanges inside a servant) may use it directly.
    pub fn rts(&self) -> &Endpoint {
        &self.rts
    }

    /// Network identity of this machine.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The naming domain this ORB participates in.
    pub fn naming(&self) -> &NameService {
        &self.naming
    }

    /// Wire byte order in use.
    pub fn endian(&self) -> Endian {
        self.endian
    }

    /// Whether data translation is being applied to distributed
    /// arguments.
    pub fn translate(&self) -> bool {
        self.translate
    }

    /// Server-side phase timings of the most recently served request.
    pub fn last_serve_timing(&self) -> InvokeTiming {
        self.last_serve_timing.get()
    }

    /// How many datagrams the serve loop has skipped because they
    /// failed to decode (e.g. corrupted by an injected fault).
    pub fn serve_decode_errors(&self) -> u64 {
        self.serve_decode_errors.get()
    }

    /// A machine-unique request id: host, thread, then a counter.
    pub(crate) fn next_request_id(&self) -> u64 {
        let c = self.req_counter.get();
        self.req_counter.set(c + 1);
        ((self.host.id().0 as u64) << 48) | ((self.rank() as u64) << 32) | c
    }

    /// Register an SPMD object: every computing thread calls this with
    /// its own servant instance (each thread implements its part of the
    /// object, as in an SPMD program). The communicating thread publishes
    /// the object reference — including every thread's data port and the
    /// given distribution templates — in the naming domain.
    ///
    /// `distributions` mirrors the paper's pre-registration assignment
    /// `_diff_object_sk::diffusion_myarray = new DistTempl(...)`.
    pub fn register(
        &self,
        name: &str,
        servant: Box<dyn Servant>,
        distributions: Vec<pardis_net::ior::OpArgDist>,
    ) -> PardisResult<ObjectRef> {
        let type_id = servant.type_id().to_string();
        self.servants.borrow_mut().insert(name.to_string(), servant);
        let objref = ObjectRef {
            name: name.to_string(),
            type_id,
            host: self.host.id(),
            request_port: self.request_port_id,
            data_ports: self.data_port_ids.clone(),
            nthreads: self.nthreads() as u32,
            distributions,
            epoch: self.rts.membership().epoch(),
        };
        self.registered
            .borrow_mut()
            .insert(name.to_string(), objref.clone());
        if self.is_comm_thread() {
            self.naming.register(objref.clone());
        }
        // Make registration visible before any thread returns to
        // compute (a client may bind immediately).
        self.rts.barrier();
        Ok(objref)
    }

    /// Remove an object from this machine (collective).
    pub fn unregister(&self, name: &str) {
        self.servants.borrow_mut().remove(name);
        self.registered.borrow_mut().remove(name);
        if self.is_comm_thread() {
            self.naming.unregister(name, self.host.id());
        }
        self.rts.barrier();
    }

    /// The degradation policy this ORB serves under.
    pub fn degrade_policy(&self) -> DegradePolicy {
        self.degrade
    }

    /// Current membership view of this machine's computing threads.
    pub fn membership_view(&self) -> pardis_rts::MembershipView {
        self.rts.membership().view()
    }

    /// The server-side layout actually in force for a request: identical
    /// to the wire template on a healthy machine, remapped onto the
    /// survivor set once the machine serves degraded. Dead threads own
    /// zero elements, so the rank-ordered gather/scatter paths need no
    /// other changes.
    pub(crate) fn effective_server_templ(
        &self,
        templ: crate::dist::DistTempl,
    ) -> PardisResult<crate::dist::DistTempl> {
        let surv = self.degraded_survivors.borrow();
        match surv.as_deref() {
            None => Ok(templ),
            Some(survivors) => {
                #[cfg(feature = "analyze")]
                {
                    // PA104: a deliberately skewed (Proportions) layout
                    // cannot be honored by the blockwise remap — the
                    // degraded invocation silently loses the registered
                    // proportions.
                    let uniform = crate::dist::DistTempl::block(templ.len(), templ.nthreads());
                    if templ.counts() != uniform.counts() {
                        crate::analyze::record(
                            "PA104",
                            format!(
                                "degraded remap of a non-uniform template {:?} onto \
                                 survivors {survivors:?} discards the registered \
                                 proportions",
                                templ.counts()
                            ),
                        );
                    }
                }
                templ.remap_onto(survivors)
            }
        }
    }

    /// Re-publish every object this machine registered, stamped with
    /// the current membership epoch. Called by the comm thread after a
    /// confirmed death so clients that received a membership-change
    /// exception can rebind; epoch fencing on the client side makes a
    /// stale (pre-death) reference unusable for rebinding.
    pub(crate) fn republish_under_current_epoch(&self) {
        if !self.is_comm_thread() {
            return;
        }
        let epoch = self.rts.membership().epoch();
        let mut reg = self.registered.borrow_mut();
        for objref in reg.values_mut() {
            if objref.epoch < epoch {
                objref.epoch = epoch;
                self.naming.register(objref.clone());
            }
        }
    }

    /// Ask the SPMD object behind `objref` to leave its serve loop.
    /// Non-collective; call from one thread.
    pub fn send_shutdown(&self, objref: &ObjectRef) -> PardisResult<()> {
        let msg = pardis_net::giop::GiopMessage::CloseConnection;
        self.host
            .send_to(objref.host, objref.request_port, msg.encode(self.endian)?)?;
        Ok(())
    }
}

impl std::fmt::Debug for OrbCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrbCtx")
            .field("host", &self.host.name())
            .field("rank", &self.rank())
            .field("nthreads", &self.nthreads())
            .field("request_port", &self.request_port_id)
            .field("data_port", &self.data_port.port())
            .finish()
    }
}
