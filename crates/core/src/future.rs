//! Futures for non-blocking invocations.
//!
//! "PARDIS supports non-blocking invocations returning futures (similar
//! to ABC++ futures) as its 'out' arguments. This allows the client to
//! use remote resources concurrently with its own, and provides the
//! programmer with an elegant way of representing results which are not
//! yet available." (§2.1)
//!
//! A [`PardisFuture`] is created by the `_nb` proxy methods. Completing
//! it is a *collective* act when the binding is SPMD (every computing
//! thread holds its own future for the same request and every thread
//! must eventually [`PardisFuture::wait`]). The completion closure runs
//! the receive phase of the transfer engine.

use crate::error::PardisResult;

enum State<'a, T> {
    /// Value already available.
    Ready(PardisResult<T>),
    /// Receive phase not yet run.
    Pending {
        /// Runs the (possibly collective) receive phase.
        complete: Box<dyn FnOnce() -> PardisResult<T> + 'a>,
        /// Cheap non-consuming readiness probe, when the engine can
        /// offer one (e.g. "has the reply message arrived at my port").
        probe: Option<Box<dyn Fn() -> bool + 'a>>,
    },
    /// Transient state during `wait`.
    Taken,
}

/// A handle on a result that is not yet available.
pub struct PardisFuture<'a, T> {
    state: State<'a, T>,
}

impl<'a, T> PardisFuture<'a, T> {
    /// A future that is already resolved.
    pub fn ready(value: PardisResult<T>) -> PardisFuture<'a, T> {
        PardisFuture {
            state: State::Ready(value),
        }
    }

    /// A future completed by running `complete` (the receive phase).
    pub fn pending(complete: impl FnOnce() -> PardisResult<T> + 'a) -> PardisFuture<'a, T> {
        PardisFuture {
            state: State::Pending {
                complete: Box::new(complete),
                probe: None,
            },
        }
    }

    /// Attach a readiness probe.
    pub fn with_probe(mut self, probe: impl Fn() -> bool + 'a) -> PardisFuture<'a, T> {
        if let State::Pending { probe: p, .. } = &mut self.state {
            *p = Some(Box::new(probe));
        }
        self
    }

    /// Whether the value can be taken without blocking. Futures without
    /// a probe conservatively answer `false` until completed.
    pub fn is_ready(&self) -> bool {
        match &self.state {
            State::Ready(_) => true,
            State::Pending { probe, .. } => probe.as_ref().map(|p| p()).unwrap_or(false),
            State::Taken => false,
        }
    }

    /// Block until the value is available and return it. Consumes the
    /// future — a PARDIS future is single-assignment, like the ABC++
    /// futures it imitates.
    pub fn wait(mut self) -> PardisResult<T> {
        match std::mem::replace(&mut self.state, State::Taken) {
            State::Ready(v) => v,
            State::Pending { complete, .. } => complete(),
            State::Taken => unreachable!("future already consumed"),
        }
    }

    /// Transform the eventual value with a fallible function (used by
    /// generated stubs to unmarshal typed results).
    pub fn and_then<U>(self, f: impl FnOnce(T) -> PardisResult<U> + 'a) -> PardisFuture<'a, U>
    where
        T: 'a,
    {
        match self.state {
            State::Ready(v) => PardisFuture::ready(v.and_then(f)),
            State::Pending { complete, probe } => {
                let mut fut = PardisFuture::pending(move || complete().and_then(f));
                if let (State::Pending { probe: p, .. }, Some(probe)) = (&mut fut.state, probe) {
                    *p = Some(probe);
                }
                fut
            }
            State::Taken => unreachable!("future already consumed"),
        }
    }

    /// Transform the eventual value.
    pub fn map<U>(self, f: impl FnOnce(T) -> U + 'a) -> PardisFuture<'a, U>
    where
        T: 'a,
    {
        match self.state {
            State::Ready(v) => PardisFuture::ready(v.map(f)),
            State::Pending { complete, probe } => {
                let mut fut = PardisFuture::pending(move || complete().map(f));
                if let (State::Pending { probe: p, .. }, Some(probe)) = (&mut fut.state, probe) {
                    *p = Some(probe);
                }
                fut
            }
            State::Taken => unreachable!("future already consumed"),
        }
    }
}

impl<T> std::fmt::Debug for PardisFuture<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match &self.state {
            State::Ready(_) => "Ready",
            State::Pending { .. } => "Pending",
            State::Taken => "Taken",
        };
        write!(f, "PardisFuture({s})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn ready_future() {
        let f = PardisFuture::ready(Ok(5));
        assert!(f.is_ready());
        assert_eq!(f.wait().unwrap(), 5);
    }

    #[test]
    fn pending_runs_on_wait() {
        let ran = Arc::new(AtomicBool::new(false));
        let ran2 = ran.clone();
        let f = PardisFuture::pending(move || {
            ran2.store(true, Ordering::SeqCst);
            Ok(7)
        });
        assert!(!f.is_ready());
        assert!(!ran.load(Ordering::SeqCst));
        assert_eq!(f.wait().unwrap(), 7);
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn probe_reports_readiness() {
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = flag.clone();
        let f = PardisFuture::pending(|| Ok(1)).with_probe(move || flag2.load(Ordering::SeqCst));
        assert!(!f.is_ready());
        flag.store(true, Ordering::SeqCst);
        assert!(f.is_ready());
        assert_eq!(f.wait().unwrap(), 1);
    }

    #[test]
    fn map_transforms_and_keeps_probe() {
        let f = PardisFuture::pending(|| Ok(21))
            .with_probe(|| true)
            .map(|x| x * 2);
        assert!(f.is_ready());
        assert_eq!(f.wait().unwrap(), 42);
    }

    #[test]
    fn and_then_chains_fallibly() {
        let f = PardisFuture::pending(|| Ok(10)).and_then(|x| {
            if x > 5 {
                Ok(x * 3)
            } else {
                Err(crate::error::PardisError::Timeout)
            }
        });
        assert_eq!(f.wait().unwrap(), 30);
        let g = PardisFuture::pending(|| Ok(1))
            .and_then(|_| Err::<i32, _>(crate::error::PardisError::Timeout));
        assert!(matches!(g.wait(), Err(crate::error::PardisError::Timeout)));
    }

    #[test]
    fn map_propagates_errors() {
        let f: PardisFuture<i32> =
            PardisFuture::pending(|| Err(crate::error::PardisError::Timeout));
        let g = f.map(|x| x + 1);
        assert!(matches!(g.wait(), Err(crate::error::PardisError::Timeout)));
    }
}
