//! Distributed sequences — the `dsequence` argument type.
//!
//! A [`DSequence<T>`] is the Rust mapping of the paper's
//! `dsequence<T, [length], [distribution]>`: a one-dimensional sequence
//! whose elements live in the address spaces of an SPMD program's
//! computing threads. Each computing thread holds one `DSequence` value
//! containing *its* local part plus the (replicated) distribution
//! template.
//!
//! Faithful to §2.2 of the paper:
//!
//! * collective methods ("it is assumed that most invocations of the
//!   methods on the sequence will be SPMD-style") take the thread's RTS
//!   endpoint; every thread must call them together,
//! * [`DSequence::set_len`]: "if a sequence is shrunk, the data above the
//!   length value will be discarded, if a sequence is lengthened, new
//!   elements will be added to the ownership of the computing thread
//!   which owned the last elements of the old sequence",
//! * [`DSequence::redistribute`] reshuffles elements to a new template,
//! * [`DSequence::get`] is `operator[]`: element access with location
//!   transparency (the owner broadcasts); out-of-range access is an
//!   error,
//! * [`DSequence::from_local`] is the conversion constructor: adopt
//!   locally-managed memory with no extra copy, deriving the template
//!   from the per-thread lengths,
//! * [`DSequence::local_data`] / [`DSequence::into_local`] convert back
//!   to the program's own memory management.

use crate::dist::DistTempl;
use crate::error::{PardisError, PardisResult};
use bytes::Bytes;
use pardis_cdr::{CdrReader, CdrResult, CdrWriter};
use pardis_rts::Endpoint;

/// Element types a distributed sequence can carry.
///
/// The paper allows "any nondistributed type defined in IDL"; this trait
/// is implemented for the primitive types used by the evaluation
/// (`double` above all) and is open for generated code to implement for
/// user-defined types.
pub trait Elem: Clone + Send + Default + 'static {
    /// CDR type code of the element.
    fn typecode() -> pardis_cdr::TypeCode;
    /// Size of one element on the wire (CDR, primitive types only).
    fn wire_size() -> usize;
    /// Marshal a slice of elements.
    fn write_slice(w: &mut CdrWriter, v: &[Self]);
    /// Unmarshal `n` elements.
    fn read_slice(r: &mut CdrReader<'_>, n: usize, out: &mut Vec<Self>) -> CdrResult<()>;
    /// Native-order byte image for intra-machine (RTS) transport.
    fn to_native_bytes(v: &[Self]) -> Bytes;
    /// Rebuild elements from a native-order byte image.
    fn from_native_bytes(b: &[u8]) -> Vec<Self>;
}

impl Elem for f64 {
    fn typecode() -> pardis_cdr::TypeCode {
        pardis_cdr::TypeCode::Double
    }
    fn wire_size() -> usize {
        8
    }
    fn write_slice(w: &mut CdrWriter, v: &[Self]) {
        w.put_f64_slice(v);
    }
    fn read_slice(r: &mut CdrReader<'_>, n: usize, out: &mut Vec<Self>) -> CdrResult<()> {
        r.get_f64_slice(n, out)
    }
    fn to_native_bytes(v: &[Self]) -> Bytes {
        Bytes::copy_from_slice(pardis_cdr::byteswap::f64_slice_as_bytes(v))
    }
    fn from_native_bytes(b: &[u8]) -> Vec<Self> {
        let mut out = Vec::with_capacity(b.len() / 8);
        pardis_cdr::byteswap::bytes_to_f64(b, &mut out);
        out
    }
}

impl Elem for i32 {
    fn typecode() -> pardis_cdr::TypeCode {
        pardis_cdr::TypeCode::Long
    }
    fn wire_size() -> usize {
        4
    }
    fn write_slice(w: &mut CdrWriter, v: &[Self]) {
        w.put_i32_slice(v);
    }
    fn read_slice(r: &mut CdrReader<'_>, n: usize, out: &mut Vec<Self>) -> CdrResult<()> {
        r.get_i32_slice(n, out)
    }
    fn to_native_bytes(v: &[Self]) -> Bytes {
        Bytes::copy_from_slice(pardis_cdr::byteswap::i32_slice_as_bytes(v))
    }
    fn from_native_bytes(b: &[u8]) -> Vec<Self> {
        let mut out = Vec::with_capacity(b.len() / 4);
        pardis_cdr::byteswap::bytes_to_i32(b, &mut out);
        out
    }
}

impl Elem for u8 {
    fn typecode() -> pardis_cdr::TypeCode {
        pardis_cdr::TypeCode::Octet
    }
    fn wire_size() -> usize {
        1
    }
    fn write_slice(w: &mut CdrWriter, v: &[Self]) {
        w.put_bytes(v);
    }
    fn read_slice(r: &mut CdrReader<'_>, n: usize, out: &mut Vec<Self>) -> CdrResult<()> {
        out.extend_from_slice(r.take(n)?);
        Ok(())
    }
    fn to_native_bytes(v: &[Self]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
    fn from_native_bytes(b: &[u8]) -> Vec<Self> {
        b.to_vec()
    }
}

/// A distributed sequence as held by one computing thread.
#[cfg_attr(not(feature = "analyze"), derive(Clone, PartialEq))]
#[derive(Debug)]
pub struct DSequence<T: Elem> {
    local: Vec<T>,
    templ: DistTempl,
    thread: usize,
    /// Optional IDL bound (`dsequence<double, 1024>`).
    bound: Option<usize>,
    /// Identity of this local buffer for the race analyzer: a
    /// per-thread creation counter, never an address, so seeded replays
    /// assign identical ids.
    #[cfg(feature = "analyze")]
    buf_id: u64,
}

#[cfg(feature = "analyze")]
impl<T: Elem> Clone for DSequence<T> {
    fn clone(&self) -> Self {
        DSequence {
            local: self.local.clone(),
            templ: self.templ.clone(),
            thread: self.thread,
            bound: self.bound,
            // A clone owns fresh storage: accesses to it cannot race
            // with transfers of the original.
            buf_id: crate::race::new_buf_id(),
        }
    }
}

#[cfg(feature = "analyze")]
impl<T: Elem + PartialEq> PartialEq for DSequence<T> {
    fn eq(&self, other: &Self) -> bool {
        // Buffer identity is analyzer metadata, not value.
        self.local == other.local
            && self.templ == other.templ
            && self.thread == other.thread
            && self.bound == other.bound
    }
}

impl<T: Elem> DSequence<T> {
    /// Collectively create a sequence of `len` default elements with the
    /// given template (or uniform blockwise when `None`).
    pub fn new(rts: &Endpoint, len: usize, templ: Option<DistTempl>) -> PardisResult<DSequence<T>> {
        let templ = templ.unwrap_or_else(|| DistTempl::block(len, rts.size()));
        Self::validate_templ(rts, len, &templ)?;
        let local = vec![T::default(); templ.count(rts.rank())];
        Ok(DSequence {
            local,
            templ,
            thread: rts.rank(),
            bound: None,
            #[cfg(feature = "analyze")]
            buf_id: crate::race::new_buf_id(),
        })
    }

    /// Conversion constructor: adopt this thread's locally managed data
    /// with no copy; the template is derived by all-gathering the local
    /// lengths. (The C++ mapping's `release` flag is subsumed by Rust
    /// ownership: the sequence owns `local` from here on.)
    pub fn from_local(rts: &Endpoint, local: Vec<T>) -> PardisResult<DSequence<T>> {
        let lens = rts.allgather_u64(local.len() as u64)?;
        let templ = DistTempl::from_counts(lens.into_iter().map(|l| l as usize).collect());
        Ok(DSequence {
            local,
            templ,
            thread: rts.rank(),
            bound: None,
            #[cfg(feature = "analyze")]
            buf_id: crate::race::new_buf_id(),
        })
    }

    /// Non-collective constructor used by the ORB when it has already
    /// materialized the local part and template (argument delivery).
    pub fn from_parts(
        local: Vec<T>,
        templ: DistTempl,
        thread: usize,
    ) -> PardisResult<DSequence<T>> {
        if local.len() != templ.count(thread) {
            return Err(PardisError::BadDistArg(format!(
                "local part has {} elements, template assigns {} to thread {}",
                local.len(),
                templ.count(thread),
                thread
            )));
        }
        Ok(DSequence {
            local,
            templ,
            thread,
            bound: None,
            #[cfg(feature = "analyze")]
            buf_id: crate::race::new_buf_id(),
        })
    }

    fn validate_templ(rts: &Endpoint, len: usize, templ: &DistTempl) -> PardisResult<()> {
        if templ.nthreads() != rts.size() {
            return Err(PardisError::BadDistArg(format!(
                "template names {} threads, program has {}",
                templ.nthreads(),
                rts.size()
            )));
        }
        if templ.len() != len {
            return Err(PardisError::BadDistArg(format!(
                "template covers {} elements, sequence has {}",
                templ.len(),
                len
            )));
        }
        Ok(())
    }

    /// Attach an IDL bound; operations that would exceed it fail.
    pub fn with_bound(mut self, bound: usize) -> PardisResult<DSequence<T>> {
        if self.len() > bound {
            return Err(PardisError::BadDistArg(format!(
                "sequence length {} exceeds bound {bound}",
                self.len()
            )));
        }
        self.bound = Some(bound);
        Ok(self)
    }

    /// Global length of the sequence.
    pub fn len(&self) -> usize {
        self.templ.len()
    }

    /// Whether the sequence is globally empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distribution template.
    pub fn templ(&self) -> &DistTempl {
        &self.templ
    }

    /// The owning thread index of this local view.
    pub fn thread(&self) -> usize {
        self.thread
    }

    /// Number of locally owned elements (`local_length()` in the C++
    /// mapping).
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// Borrow the locally owned elements (`local_data()`).
    pub fn local_data(&self) -> &[T] {
        #[cfg(feature = "analyze")]
        crate::race::on_access(self.buf_id, crate::race::AccessKind::Read, "local_data");
        &self.local
    }

    /// Mutably borrow the locally owned elements.
    pub fn local_data_mut(&mut self) -> &mut [T] {
        #[cfg(feature = "analyze")]
        crate::race::on_access(
            self.buf_id,
            crate::race::AccessKind::Write,
            "local_data_mut",
        );
        &mut self.local
    }

    /// The buffer identity the race analyzer keys intervals on.
    #[cfg(feature = "analyze")]
    pub(crate) fn buf_id(&self) -> u64 {
        self.buf_id
    }

    /// Give the local part back to the program's own memory management.
    pub fn into_local(self) -> Vec<T> {
        self.local
    }

    /// Global index range owned locally.
    pub fn local_range(&self) -> std::ops::Range<usize> {
        self.templ.range(self.thread)
    }

    /// Collective `operator[]`: every thread learns the value at global
    /// index `idx` (the owner broadcasts it).
    pub fn get(&self, rts: &Endpoint, idx: usize) -> PardisResult<T> {
        let (owner, local_idx) = self.templ.owner_of(idx)?;
        let data = if rts.rank() == owner {
            Some(T::to_native_bytes(std::slice::from_ref(
                &self.local[local_idx],
            )))
        } else {
            None
        };
        let bytes = rts.broadcast(owner, data)?;
        T::from_native_bytes(&bytes).pop().ok_or_else(|| {
            PardisError::Internal("element broadcast returned an empty payload".into())
        })
    }

    /// Collective element store: all threads pass the same `(idx, v)`;
    /// the owner records it.
    pub fn set(&mut self, _rts: &Endpoint, idx: usize, v: T) -> PardisResult<()> {
        let (owner, local_idx) = self.templ.owner_of(idx)?;
        if owner == self.thread {
            self.local[local_idx] = v;
        }
        Ok(())
    }

    /// Collective length change (`length(unsigned int)` in the mapping):
    /// shrink discards the tail, growth default-fills new elements owned
    /// by the previous last owner.
    pub fn set_len(&mut self, _rts: &Endpoint, new_len: usize) -> PardisResult<()> {
        if let Some(b) = self.bound {
            if new_len > b {
                return Err(PardisError::BadDistArg(format!(
                    "new length {new_len} exceeds bound {b}"
                )));
            }
        }
        let new_templ = self.templ.resized(new_len);
        self.local
            .resize(new_templ.count(self.thread), T::default());
        self.templ = new_templ;
        Ok(())
    }

    /// Collective redistribution to a new template (same total length).
    /// Elements move between threads with an all-to-all exchange.
    pub fn redistribute(&mut self, rts: &Endpoint, new_templ: DistTempl) -> PardisResult<()> {
        Self::validate_templ(rts, self.len(), &new_templ)?;
        if new_templ == self.templ {
            return Ok(());
        }
        #[cfg(feature = "analyze")]
        crate::race::on_access(self.buf_id, crate::race::AccessKind::Write, "redistribute");
        let my_off = self.templ.offset(self.thread);
        // Build one outgoing chunk per destination thread.
        let mut outgoing: Vec<Bytes> = vec![Bytes::new(); rts.size()];
        for (dst, range) in self.templ.transfers_to(self.thread, &new_templ) {
            let lo = range.start - my_off;
            let hi = range.end - my_off;
            outgoing[dst] = T::to_native_bytes(&self.local[lo..hi]);
        }
        let incoming = rts.alltoallv_bytes(outgoing)?;
        // Reassemble in source order: contiguous ownership means source
        // fragments arrive in ascending global order by source rank.
        let mut new_local = Vec::with_capacity(new_templ.count(self.thread));
        for chunk in &incoming {
            new_local.extend(T::from_native_bytes(chunk));
        }
        if new_local.len() != new_templ.count(self.thread) {
            return Err(PardisError::BadDistArg(format!(
                "redistribute produced {} local elements, expected {}",
                new_local.len(),
                new_templ.count(self.thread)
            )));
        }
        self.local = new_local;
        self.templ = new_templ;
        Ok(())
    }

    /// Collective evacuation onto a survivor set: the excluded threads
    /// give up every element, the survivors split the full length
    /// blockwise in rank order (see [`DistTempl::remap_onto`]). Values
    /// and total length are preserved.
    ///
    /// This is the graceful-degradation move for a rank the failure
    /// detector *suspects*: run it while the suspect can still
    /// participate in the exchange and its data survives the later
    /// confirmation. After a rank is confirmed dead its local part is
    /// unrecoverable — evacuation is proactive by design.
    pub fn redistribute_onto(&mut self, rts: &Endpoint, survivors: &[usize]) -> PardisResult<()> {
        let new_templ = self.templ.remap_onto(survivors)?;
        self.redistribute(rts, new_templ)
    }

    /// Collectively materialize the whole sequence on every thread
    /// (debug/verification helper, not a transfer path).
    pub fn to_global(&self, rts: &Endpoint) -> PardisResult<Vec<T>> {
        let chunks = rts.allgather_bytes(T::to_native_bytes(&self.local))?;
        let mut out = Vec::with_capacity(self.len());
        for c in &chunks {
            out.extend(T::from_native_bytes(c));
        }
        Ok(out)
    }
}

impl DSequence<f64> {
    /// Collectively expose the sequence through the **one-sided**
    /// run-time system interface, enabling non-collective element
    /// access from any thread.
    ///
    /// The paper's message-passing mapping forces SPMD-style collective
    /// calls on `operator[]` because it "cannot handle asynchronous
    /// access to an arbitrary context" (§2.2), and commits to a
    /// one-sided interface as future work (§2.3). [`ExposedSeq`] is that
    /// mapping: after `expose`, any single thread may read or write any
    /// element without the owner participating.
    ///
    /// The sequence moves into the window for the exposure epoch;
    /// [`ExposedSeq::into_seq`] (collective) recovers it.
    pub fn expose(self, rts: &Endpoint) -> PardisResult<ExposedSeq> {
        let DSequence {
            local,
            templ,
            thread,
            bound,
            ..
        } = self;
        let win = pardis_rts::Window::create(rts, local)?;
        Ok(ExposedSeq {
            win,
            templ,
            thread,
            bound,
        })
    }
}

/// A distributed sequence exposed for one-sided access (see
/// [`DSequence::expose`]).
#[derive(Debug, Clone)]
pub struct ExposedSeq {
    win: pardis_rts::Window,
    templ: DistTempl,
    thread: usize,
    bound: Option<usize>,
}

impl ExposedSeq {
    /// Global length.
    pub fn len(&self) -> usize {
        self.templ.len()
    }

    /// Whether the sequence is globally empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distribution template.
    pub fn templ(&self) -> &DistTempl {
        &self.templ
    }

    /// **Non-collective** element read: location-transparent
    /// `operator[]` backed by a one-sided get.
    pub fn get(&self, idx: usize) -> PardisResult<f64> {
        let (owner, local_idx) = self.templ.owner_of(idx)?;
        let v = self
            .win
            .get_one(owner, local_idx)
            .map_err(PardisError::from)?;
        #[cfg(feature = "analyze")]
        crate::race::on_window_access(self.win.id(), owner, local_idx, 1, false);
        Ok(v)
    }

    /// **Non-collective** element write.
    pub fn put(&self, idx: usize, v: f64) -> PardisResult<()> {
        let (owner, local_idx) = self.templ.owner_of(idx)?;
        self.win
            .put(owner, local_idx, &[v])
            .map_err(PardisError::from)?;
        #[cfg(feature = "analyze")]
        crate::race::on_window_access(self.win.id(), owner, local_idx, 1, true);
        Ok(())
    }

    /// **Non-collective** bulk read of `[start, start+len)`, spanning
    /// owners as needed.
    pub fn get_range(&self, start: usize, len: usize) -> PardisResult<Vec<f64>> {
        if start + len > self.len() {
            return Err(PardisError::BadDistArg(format!(
                "range [{start}, {}) beyond sequence length {}",
                start + len,
                self.len()
            )));
        }
        let mut out = Vec::with_capacity(len);
        let mut idx = start;
        while idx < start + len {
            let (owner, local_idx) = self.templ.owner_of(idx)?;
            let owner_end = self.templ.range(owner).end;
            let take = (start + len - idx).min(owner_end - idx);
            out.extend(
                self.win
                    .get(owner, local_idx, take)
                    .map_err(PardisError::from)?,
            );
            #[cfg(feature = "analyze")]
            crate::race::on_window_access(self.win.id(), owner, local_idx, take, false);
            idx += take;
        }
        Ok(out)
    }

    /// Epoch boundary (collective): all one-sided operations issued
    /// before the fence are visible after it.
    pub fn fence(&self, rts: &Endpoint) {
        self.win.fence(rts);
        #[cfg(feature = "analyze")]
        {
            // The fence barrier made every pre-fence access visible;
            // one rank drains the epoch's log before the second barrier
            // releases the others into the next epoch.
            if self.thread == 0 {
                crate::race::window_fence(self.win.id());
            }
            rts.barrier();
        }
    }

    /// Collectively end the exposure and recover the sequence.
    pub fn into_seq(self, rts: &Endpoint) -> PardisResult<DSequence<f64>> {
        #[cfg(feature = "analyze")]
        {
            // Close the final exposure epoch; `free` barriers again
            // before tearing the window down.
            rts.barrier();
            if self.thread == 0 {
                crate::race::window_fence(self.win.id());
            }
        }
        let local = self.win.free(rts);
        let mut seq = DSequence::from_parts(local, self.templ, self.thread)?;
        if let Some(b) = self.bound {
            seq = seq.with_bound(b)?;
        }
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardis_rts::Domain;

    #[test]
    fn new_default_blockwise() {
        let r = Domain::run(4, |ep| {
            let s = DSequence::<f64>::new(&ep, 10, None).unwrap();
            (s.local_len(), s.len(), s.local_range())
        });
        assert_eq!(r[0], (3, 10, 0..3));
        assert_eq!(r[1], (3, 10, 3..6));
        assert_eq!(r[2], (2, 10, 6..8));
        assert_eq!(r[3], (2, 10, 8..10));
    }

    #[test]
    fn from_local_derives_template() {
        let r = Domain::run(3, |ep| {
            let mine: Vec<f64> = vec![ep.rank() as f64; ep.rank() + 1];
            let s = DSequence::from_local(&ep, mine).unwrap();
            (s.len(), s.templ().counts().to_vec())
        });
        for (len, counts) in r {
            assert_eq!(len, 6);
            assert_eq!(counts, vec![1, 2, 3]);
        }
    }

    #[test]
    fn get_broadcasts_from_owner() {
        let r = Domain::run(3, |ep| {
            let mine: Vec<f64> = (0..4).map(|i| (ep.rank() * 4 + i) as f64).collect();
            let s = DSequence::from_local(&ep, mine).unwrap();
            // Index 9 lives on thread 2, local index 1 -> value 9.0
            s.get(&ep, 9).unwrap()
        });
        assert_eq!(r, vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn get_out_of_range_errors() {
        Domain::run(2, |ep| {
            let s = DSequence::<f64>::new(&ep, 4, None).unwrap();
            assert!(s.get(&ep, 4).is_err());
        });
    }

    #[test]
    fn set_then_get() {
        Domain::run(2, |ep| {
            let mut s = DSequence::<f64>::new(&ep, 6, None).unwrap();
            s.set(&ep, 5, 42.0).unwrap();
            assert_eq!(s.get(&ep, 5).unwrap(), 42.0);
            // Non-owners were untouched locally.
            if ep.rank() == 0 {
                assert!(s.local_data().iter().all(|&x| x == 0.0));
            }
        });
    }

    #[test]
    fn shrink_discards_tail() {
        Domain::run(3, |ep| {
            let mine: Vec<f64> = (0..3).map(|i| (ep.rank() * 3 + i) as f64).collect();
            let mut s = DSequence::from_local(&ep, mine).unwrap();
            s.set_len(&ep, 4).unwrap();
            assert_eq!(s.len(), 4);
            assert_eq!(s.templ().counts(), &[3, 1, 0]);
            let g = s.to_global(&ep).unwrap();
            assert_eq!(g, vec![0.0, 1.0, 2.0, 3.0]);
        });
    }

    #[test]
    fn grow_extends_last_owner_with_defaults() {
        Domain::run(2, |ep| {
            let mine = vec![1.0f64; 2];
            let mut s = DSequence::from_local(&ep, mine).unwrap();
            s.set_len(&ep, 7).unwrap();
            assert_eq!(s.templ().counts(), &[2, 5]);
            if ep.rank() == 1 {
                assert_eq!(s.local_data(), &[1.0, 1.0, 0.0, 0.0, 0.0]);
            }
        });
    }

    #[test]
    fn redistribute_preserves_contents() {
        Domain::run(4, |ep| {
            let s0 = DSequence::<f64>::new(&ep, 20, None).unwrap();
            let mut s = s0;
            // Fill with global indices.
            let off = s.local_range().start;
            for (i, x) in s.local_data_mut().iter_mut().enumerate() {
                *x = (off + i) as f64;
            }
            let want: Vec<f64> = (0..20).map(|i| i as f64).collect();
            assert_eq!(s.to_global(&ep).unwrap(), want);

            let new = DistTempl::proportional(20, &crate::dist::Proportions::new(vec![2, 4, 2, 4]));
            s.redistribute(&ep, new.clone()).unwrap();
            assert_eq!(s.templ(), &new);
            assert_eq!(s.local_len(), new.count(ep.rank()));
            assert_eq!(s.to_global(&ep).unwrap(), want);

            // And back to block.
            s.redistribute(&ep, DistTempl::block(20, 4)).unwrap();
            assert_eq!(s.to_global(&ep).unwrap(), want);
        });
    }

    #[test]
    fn redistribute_onto_evacuates_suspected_rank() {
        Domain::run(4, |ep| {
            let mut s = DSequence::<f64>::new(&ep, 10, None).unwrap();
            let off = s.local_range().start;
            for (i, x) in s.local_data_mut().iter_mut().enumerate() {
                *x = (off + i) as f64;
            }
            s.redistribute_onto(&ep, &[0, 1, 3]).unwrap();
            assert_eq!(s.len(), 10, "total length preserved");
            assert_eq!(s.templ().count(2), 0, "suspect owns nothing");
            let want: Vec<f64> = (0..10).map(|i| i as f64).collect();
            assert_eq!(s.to_global(&ep).unwrap(), want, "values preserved");
        });
    }

    #[test]
    fn redistribute_noop_is_cheap() {
        Domain::run(2, |ep| {
            let mut s = DSequence::<i32>::new(&ep, 8, None).unwrap();
            let t = s.templ().clone();
            s.redistribute(&ep, t).unwrap();
            assert_eq!(s.len(), 8);
        });
    }

    #[test]
    fn bound_enforced() {
        Domain::run(2, |ep| {
            let s = DSequence::<f64>::new(&ep, 4, None)
                .unwrap()
                .with_bound(8)
                .unwrap();
            let mut s = s;
            assert!(s.set_len(&ep, 8).is_ok());
            assert!(s.set_len(&ep, 9).is_err());
            // Constructor-time violation:
            let t = DSequence::<f64>::new(&ep, 4, None).unwrap().with_bound(3);
            assert!(t.is_err());
        });
    }

    #[test]
    fn from_parts_checks_length() {
        let t = DistTempl::block(10, 2);
        assert!(DSequence::<f64>::from_parts(vec![0.0; 5], t.clone(), 0).is_ok());
        assert!(DSequence::<f64>::from_parts(vec![0.0; 4], t, 0).is_err());
    }

    #[test]
    fn exposed_sequence_one_sided_access() {
        Domain::run(4, |ep| {
            let mut s = DSequence::<f64>::new(&ep, 20, None).unwrap();
            let off = s.local_range().start;
            for (i, x) in s.local_data_mut().iter_mut().enumerate() {
                *x = (off + i) as f64;
            }
            let ex = s.expose(&ep).unwrap();
            // Non-collective: only rank 1 reads and writes.
            if ep.rank() == 1 {
                assert_eq!(ex.get(17).unwrap(), 17.0);
                assert_eq!(
                    ex.get_range(3, 10).unwrap(),
                    (3..13).map(|i| i as f64).collect::<Vec<_>>()
                );
                ex.put(0, -1.0).unwrap();
            }
            ex.fence(&ep);
            // Visible everywhere after the fence.
            assert_eq!(ex.get(0).unwrap(), -1.0);
            let s = ex.into_seq(&ep).unwrap();
            if ep.rank() == 0 {
                assert_eq!(s.local_data()[0], -1.0);
            }
            assert_eq!(s.len(), 20);
        });
    }

    #[test]
    fn exposed_range_errors() {
        Domain::run(2, |ep| {
            let s = DSequence::<f64>::new(&ep, 6, None).unwrap();
            let ex = s.expose(&ep).unwrap();
            assert!(ex.get(6).is_err());
            assert!(ex.get_range(4, 3).is_err());
            ex.fence(&ep);
            let _ = ex.into_seq(&ep).unwrap();
        });
    }

    #[test]
    fn i32_and_u8_sequences() {
        Domain::run(2, |ep| {
            let mut si = DSequence::<i32>::new(&ep, 5, None).unwrap();
            si.set(&ep, 0, -7).unwrap();
            assert_eq!(si.get(&ep, 0).unwrap(), -7);
            let su = DSequence::<u8>::from_local(&ep, vec![ep.rank() as u8; 2]).unwrap();
            assert_eq!(su.to_global(&ep).unwrap(), vec![0, 0, 1, 1]);
        });
    }
}
