//! Runtime analysis support (the `analyze` feature).
//!
//! Two concerns live here:
//!
//! * **Collective fingerprints** (finding PA101): before the collective
//!   part of an SPMD invocation runs, every computing thread hashes the
//!   observable shape of its call site — operation name, transfer mode,
//!   reply expectation, idempotence, and each distributed argument's
//!   direction, element size, distribution template, and total-length
//!   class. The threads agree on the hash via
//!   [`pardis_rts::verify::Fingerprint`] agreement; divergence surfaces
//!   as [`crate::PardisError::CollectiveMismatch`] instead of the
//!   silent deadlock the paper's SPMD contract would otherwise produce.
//!
//! * **Runtime findings** (PA103): hazards that are legal but
//!   suspicious — currently a [`crate::client::RetryPolicy`] attached
//!   to a non-idempotent request, which the policy silently declines to
//!   retry. Findings accumulate in a process-global sink drained by
//!   `pardis-analyze`.

use crate::request::{ArgDir, RequestSpec};
use pardis_net::giop::TransferMode;
use pardis_rts::verify::{fnv1a_extend, Fingerprint, FNV_OFFSET};
use std::sync::{Mutex, OnceLock};

/// Length class of a payload: 0 for empty, else 1 + floor(log2(len)).
/// Collectives only need lengths to agree coarsely — exact per-thread
/// counts are covered by the template hash.
pub fn len_class(len: usize) -> u8 {
    if len == 0 {
        0
    } else {
        (usize::BITS - len.leading_zeros()) as u8
    }
}

/// Fingerprint one rank's view of an invocation about to run
/// collectively.
pub fn fingerprint(spec: &RequestSpec, mode: TransferMode) -> Fingerprint {
    let mut h = FNV_OFFSET;
    h = fnv1a_extend(h, spec.operation.as_bytes());
    h = fnv1a_extend(
        h,
        &[
            (mode == TransferMode::MultiPort) as u8,
            spec.response_expected as u8,
            spec.idempotent as u8,
            spec.dist_args.len() as u8,
        ],
    );
    let mut classes = Vec::with_capacity(spec.dist_args.len());
    let mut templs: Vec<Vec<usize>> = Vec::with_capacity(spec.dist_args.len());
    for a in &spec.dist_args {
        let dir = match a.dir {
            ArgDir::In => 0u8,
            ArgDir::Out => 1,
            ArgDir::InOut => 2,
        };
        let class = len_class(a.client_templ.len());
        classes.push(class);
        templs.push(a.client_templ.counts().to_vec());
        h = fnv1a_extend(h, &[dir, a.elem_size as u8, class]);
        // The whole-machine layout both sides agreed to: divergent
        // redistribution templates hash differently here.
        for &c in a.client_templ.counts() {
            h = fnv1a_extend(h, &(c as u64).to_le_bytes());
        }
        for &c in a.server_templ.counts() {
            h = fnv1a_extend(h, &(c as u64).to_le_bytes());
        }
    }
    Fingerprint {
        hash: h,
        site: format!(
            "op `{}` mode={mode:?} reply={} args={} len_class={classes:?} templ={templs:?}",
            spec.operation,
            spec.response_expected as u8,
            spec.dist_args.len(),
        ),
    }
}

/// One runtime finding (codes PA101..; see DESIGN.md §9).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeFinding {
    /// Stable code, e.g. `PA103`.
    pub code: &'static str,
    /// Human-readable description of the hazard.
    pub message: String,
}

fn sink() -> &'static Mutex<Vec<RuntimeFinding>> {
    static SINK: OnceLock<Mutex<Vec<RuntimeFinding>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Record a finding (deduplicated by code + message).
pub fn record(code: &'static str, message: String) {
    let mut s = sink().lock().unwrap_or_else(|p| p.into_inner());
    if !s.iter().any(|f| f.code == code && f.message == message) {
        s.push(RuntimeFinding { code, message });
    }
}

/// Snapshot the recorded findings.
pub fn findings() -> Vec<RuntimeFinding> {
    sink().lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Clear the sink (between analyzer scenarios).
pub fn reset() {
    sink().lock().unwrap_or_else(|p| p.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DistTempl;
    use crate::request::DistArgSend;
    use bytes::Bytes;

    fn spec_with(counts: Vec<usize>) -> RequestSpec {
        let t = DistTempl::from_counts(counts);
        let mut s = RequestSpec::simple("step");
        s.dist_args.push(DistArgSend {
            dir: ArgDir::InOut,
            elem_size: 8,
            local: Bytes::new(),
            client_templ: t.clone(),
            server_templ: t,
            buf_id: 0,
        });
        s
    }

    #[test]
    fn identical_call_sites_hash_equal() {
        let a = fingerprint(&spec_with(vec![2, 2]), TransferMode::Centralized);
        let b = fingerprint(&spec_with(vec![2, 2]), TransferMode::Centralized);
        assert_eq!(a.hash, b.hash);
    }

    #[test]
    fn op_mode_and_template_feed_the_hash() {
        let base = fingerprint(&spec_with(vec![2, 2]), TransferMode::Centralized);
        let other_mode = fingerprint(&spec_with(vec![2, 2]), TransferMode::MultiPort);
        assert_ne!(base.hash, other_mode.hash);
        let other_templ = fingerprint(&spec_with(vec![3, 1]), TransferMode::Centralized);
        assert_ne!(base.hash, other_templ.hash);
        let mut renamed = spec_with(vec![2, 2]);
        renamed.operation = "reset".into();
        assert_ne!(
            base.hash,
            fingerprint(&renamed, TransferMode::Centralized).hash
        );
    }

    #[test]
    fn site_names_the_operation() {
        let fp = fingerprint(&spec_with(vec![4]), TransferMode::Centralized);
        assert!(fp.site.contains("op `step`"), "{}", fp.site);
    }

    #[test]
    fn len_classes_are_coarse() {
        assert_eq!(len_class(0), 0);
        assert_eq!(len_class(1), 1);
        assert_eq!(len_class(1023), 10);
        assert_eq!(len_class(1024), 11);
        assert_eq!(len_class(1025), 11);
    }

    #[test]
    fn sink_records_and_dedupes() {
        reset();
        record("PA103", "retry without idempotence: op `x`".into());
        record("PA103", "retry without idempotence: op `x`".into());
        let f = findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "PA103");
        reset();
        assert!(findings().is_empty());
    }
}
