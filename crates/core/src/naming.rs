//! The PARDIS naming domain.
//!
//! "PARDIS provides a naming domain for objects. At the time of binding
//! the client has to identify which particular object of a given type it
//! wants to work with; specifying a host is optional." (§2.1)
//!
//! [`NameService`] is the registry behind `_bind`/`_spmd_bind`: servers
//! register object references under names; clients resolve by name with
//! an optional host filter, blocking (with a timeout) until the object is
//! activated — this stands in for the paper's "locating and activating
//! agents".

use crate::error::{PardisError, PardisResult};
use pardis_net::ObjectRef;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Default)]
struct Registry {
    /// All registered references for each name. Multiple objects of the
    /// same type may share a name on different hosts, hence the Vec.
    by_name: HashMap<String, Vec<ObjectRef>>,
}

/// A shared, thread-safe naming service. Cheap to clone.
#[derive(Clone)]
pub struct NameService {
    inner: Arc<(Mutex<Registry>, Condvar)>,
}

impl NameService {
    /// Create an empty naming domain.
    pub fn new() -> NameService {
        NameService {
            inner: Arc::new((Mutex::new(Registry::default()), Condvar::new())),
        }
    }

    /// Register (or re-register) an object reference. Re-registering the
    /// same `(name, host)` replaces the old reference.
    pub fn register(&self, objref: ObjectRef) {
        let (lock, cvar) = &*self.inner;
        let mut reg = lock.lock();
        let entry = reg.by_name.entry(objref.name.clone()).or_default();
        entry.retain(|o| o.host != objref.host);
        entry.push(objref);
        cvar.notify_all();
    }

    /// Remove a registration.
    pub fn unregister(&self, name: &str, host: pardis_net::HostId) {
        let (lock, _) = &*self.inner;
        let mut reg = lock.lock();
        if let Some(v) = reg.by_name.get_mut(name) {
            v.retain(|o| o.host != host);
            if v.is_empty() {
                reg.by_name.remove(name);
            }
        }
    }

    /// Resolve `name`, optionally constrained to a host id, without
    /// blocking.
    pub fn try_resolve(&self, name: &str, host: Option<pardis_net::HostId>) -> Option<ObjectRef> {
        let (lock, _) = &*self.inner;
        let reg = lock.lock();
        reg.by_name.get(name).and_then(|v| {
            match host {
                Some(h) => v.iter().find(|o| o.host == h),
                None => v.first(),
            }
            .cloned()
        })
    }

    /// Resolve, blocking until the object is registered or `timeout`
    /// elapses — servers and clients start concurrently, as on the
    /// paper's testbed where the client binds to an already-running or
    /// still-activating object.
    pub fn resolve(
        &self,
        name: &str,
        host: Option<pardis_net::HostId>,
        timeout: Duration,
    ) -> PardisResult<ObjectRef> {
        let deadline = Instant::now() + timeout;
        let (lock, cvar) = &*self.inner;
        let mut reg = lock.lock();
        loop {
            if let Some(objref) = reg.by_name.get(name).and_then(|v| {
                match host {
                    Some(h) => v.iter().find(|o| o.host == h),
                    None => v.first(),
                }
                .cloned()
            }) {
                return Ok(objref);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PardisError::ObjectNotFound {
                    name: name.to_string(),
                    host: host.map(|h| format!("{h:?}")),
                });
            }
            if cvar.wait_until(&mut reg, deadline).timed_out() {
                // Loop once more to do the final lookup before failing.
            }
        }
    }

    /// Names currently registered (diagnostics).
    pub fn names(&self) -> Vec<String> {
        let (lock, _) = &*self.inner;
        let reg = lock.lock();
        let mut names: Vec<String> = reg.by_name.keys().cloned().collect();
        names.sort();
        names
    }
}

impl Default for NameService {
    fn default() -> NameService {
        NameService::new()
    }
}

impl std::fmt::Debug for NameService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NameService")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardis_net::HostId;

    fn obj(name: &str, host: u32) -> ObjectRef {
        ObjectRef {
            name: name.into(),
            type_id: "IDL:x:1.0".into(),
            host: HostId(host),
            request_port: 1,
            data_ports: vec![],
            nthreads: 1,
            distributions: vec![],
            epoch: 0,
        }
    }

    #[test]
    fn register_resolve() {
        let ns = NameService::new();
        assert!(ns.try_resolve("a", None).is_none());
        ns.register(obj("a", 0));
        assert_eq!(ns.try_resolve("a", None).unwrap().host, HostId(0));
    }

    #[test]
    fn host_filter() {
        let ns = NameService::new();
        ns.register(obj("a", 0));
        ns.register(obj("a", 1));
        assert_eq!(
            ns.try_resolve("a", Some(HostId(1))).unwrap().host,
            HostId(1)
        );
        assert!(ns.try_resolve("a", Some(HostId(9))).is_none());
    }

    #[test]
    fn reregistration_replaces() {
        let ns = NameService::new();
        let mut o = obj("a", 0);
        ns.register(o.clone());
        o.request_port = 99;
        ns.register(o);
        let got = ns.try_resolve("a", None).unwrap();
        assert_eq!(got.request_port, 99);
        // Only one entry for (a, host0).
        ns.unregister("a", HostId(0));
        assert!(ns.try_resolve("a", None).is_none());
    }

    #[test]
    fn resolve_blocks_until_registered() {
        let ns = NameService::new();
        let ns2 = ns.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            ns2.register(obj("late", 3));
        });
        let got = ns.resolve("late", None, Duration::from_secs(5)).unwrap();
        assert_eq!(got.host, HostId(3));
        t.join().unwrap();
    }

    #[test]
    fn resolve_times_out() {
        let ns = NameService::new();
        let start = Instant::now();
        let err = ns.resolve("never", None, Duration::from_millis(40));
        assert!(matches!(err, Err(PardisError::ObjectNotFound { .. })));
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn names_listing() {
        let ns = NameService::new();
        ns.register(obj("b", 0));
        ns.register(obj("a", 0));
        assert_eq!(ns.names(), vec!["a".to_string(), "b".to_string()]);
    }
}
