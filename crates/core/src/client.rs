//! Client-side binding and invocation.
//!
//! PARDIS offers two ways for a client to bind to an object (§2.1):
//!
//! * [`OrbCtx::spmd_bind`] — "a collective form of bind; it has to be
//!   called by all the computing threads of a client and should be used
//!   by clients wishing to act as one entity in interactions with
//!   objects. After `spmd_bind`, every invocation to the object must be
//!   called by all the threads that participated in the bind call, and
//!   will result \[in\] making one request on the object."
//! * [`OrbCtx::bind`] — "non-collective and always establishes one
//!   binding per thread … After this form of bind, proxy methods using
//!   non-distributed mapping of distributed arguments should be used;
//!   the invocations are non-collective."
//!
//! Either form yields a [`Proxy`] through which [`RequestSpec`]s are
//! invoked, blocking ([`Proxy::invoke`]) or returning a future
//! ([`Proxy::invoke_nb`]). The argument-transfer method is selected per
//! proxy ([`Proxy::set_mode`]) or per call.

use crate::dist::DistTempl;
use crate::dseq::{DSequence, Elem};
use crate::error::{PardisError, PardisResult};
use crate::future::PardisFuture;
use crate::orb::OrbCtx;
use crate::request::{ArgDir, DistArgSend, InvokeTiming, ReplyResult, RequestSpec};
use crate::transfer::{centralized, multiport};
use bytes::Bytes;
use pardis_net::conn::Connection;
use pardis_net::giop::{GiopMessage, ReplyHeader, TransferMode};
use pardis_net::ObjectRef;
use pardis_rts::ReduceOp;
use std::cell::{Cell, RefCell};
use std::time::{Duration, Instant};

/// Bounded-retry policy for idempotent invocations: on a retryable
/// transport fault ([`PardisError::is_retryable`]) the invocation is
/// re-sent, with exponential backoff between attempts. Collective
/// bindings agree on the retry decision machine-wide, so either every
/// computing thread retries or none does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, counting the first (so `1` means no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Multiplier applied per retry (exponential backoff).
    pub backoff_factor: u32,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            backoff_factor: 2,
            max_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let mult = self.backoff_factor.max(1).saturating_pow(attempt.min(16));
        (self.base_backoff * mult).min(self.max_backoff)
    }
}

/// A client-side handle on a (possibly remote, possibly SPMD) object.
pub struct Proxy {
    pub(crate) objref: ObjectRef,
    /// True when created by `spmd_bind`: invocations are collective.
    pub(crate) collective: bool,
    /// The request/reply connection. Present on the communicating thread
    /// of a collective binding, and always for a per-thread binding.
    pub(crate) conn: Option<Connection>,
    /// Transfer method used by `invoke`.
    pub(crate) mode: TransferMode,
    /// Replies that arrived out of order (outstanding futures).
    pub(crate) reply_buf: RefCell<Vec<(ReplyHeader, Bytes)>>,
    /// Retry policy applied by `invoke` to idempotent requests.
    pub(crate) retry: Option<RetryPolicy>,
    /// Default invocation deadline when the spec does not carry one.
    pub(crate) default_deadline: Option<Duration>,
    /// Invocation attempts that were retried on this thread.
    pub(crate) retries: Cell<u64>,
    /// Multi-port invocations demoted to centralized because a server
    /// data port was found dead.
    pub(crate) fallbacks: Cell<u64>,
    /// Circuit-breaker threshold: after this many consecutive failed
    /// invocations the binding fast-fails without touching the wire.
    /// `None` disables the breaker.
    pub(crate) breaker: Option<u32>,
    /// Consecutive failed invocations on this binding (machine-agreed
    /// for collective bindings, so every thread trips together).
    pub(crate) consecutive_failures: Cell<u32>,
}

/// The client half of an invocation between its send and receive phases
/// (what a future holds on to).
#[derive(Debug, Clone)]
pub struct PendingInvoke {
    pub(crate) req_id: u64,
    pub(crate) mode: TransferMode,
    pub(crate) dist: Vec<PendingDist>,
    pub(crate) response_expected: bool,
    pub(crate) timing: InvokeTiming,
    pub(crate) started: Instant,
    /// Absolute deadline for the receive phase, if any.
    pub(crate) deadline: Option<Instant>,
    /// A send-phase failure deferred until the receive phase, so the
    /// machine's threads stay in lockstep through the collectives.
    pub(crate) send_error: Option<PardisError>,
    /// Operation name, kept to label the invocation span.
    #[cfg(feature = "obs")]
    pub(crate) op: String,
    /// This rank's root span id for the invocation (equal to the trace
    /// id on the thread holding the connection).
    #[cfg(feature = "obs")]
    pub(crate) local_root: u64,
}

impl PendingInvoke {
    /// The deferred send-phase failure, if any.
    pub(crate) fn send_failure(&self) -> Option<PardisError> {
        self.send_error.clone()
    }
}

/// Routing info for one distributed argument of a pending invocation.
#[derive(Debug, Clone)]
pub(crate) struct PendingDist {
    pub dir: ArgDir,
    pub elem_size: usize,
    pub client_templ: DistTempl,
    pub server_templ: DistTempl,
}

impl OrbCtx {
    /// Collective bind: every computing thread calls this; the machine
    /// then acts as one entity toward the object. `expected_type` (if
    /// given) is checked against the object's interface id.
    pub fn spmd_bind(
        &self,
        name: &str,
        host: Option<&str>,
        expected_type: Option<&str>,
    ) -> PardisResult<Proxy> {
        #[cfg(feature = "obs")]
        let bind_start = Instant::now();
        let objref = if self.is_comm_thread() {
            let objref = self.resolve(name, host)?;
            let bytes = pardis_cdr::traits::to_bytes(&objref).map_err(PardisError::from)?;
            self.rts.broadcast(0, Some(Bytes::from(bytes)))?;
            objref
        } else {
            let bytes = self.rts.broadcast(0, None)?;
            pardis_cdr::traits::from_bytes::<ObjectRef>(&bytes).map_err(PardisError::from)?
        };
        check_type(&objref, expected_type)?;
        let conn = if self.is_comm_thread() {
            Some(Connection::open(
                &self.host,
                objref.host,
                objref.request_port,
            ))
        } else {
            None
        };
        #[cfg(feature = "obs")]
        crate::obs::record_span(
            pardis_obs::SpanKind::Bind,
            name,
            0,
            pardis_obs::recorder::alloc_span_id(),
            0,
            self.rts.membership().epoch(),
            0,
            bind_start.elapsed().as_nanos() as u64,
        );
        Ok(Proxy {
            objref,
            collective: true,
            conn,
            mode: TransferMode::Centralized,
            reply_buf: RefCell::new(Vec::new()),
            retry: None,
            default_deadline: None,
            retries: Cell::new(0),
            fallbacks: Cell::new(0),
            breaker: None,
            consecutive_failures: Cell::new(0),
        })
    }

    /// Per-thread bind: establishes one binding for the calling thread
    /// only; invocations through it are non-collective and use the
    /// non-distributed argument mapping (or a single-thread distributed
    /// mapping).
    pub fn bind(
        &self,
        name: &str,
        host: Option<&str>,
        expected_type: Option<&str>,
    ) -> PardisResult<Proxy> {
        #[cfg(feature = "obs")]
        let bind_start = Instant::now();
        let objref = self.resolve(name, host)?;
        check_type(&objref, expected_type)?;
        let conn = Connection::open(&self.host, objref.host, objref.request_port);
        #[cfg(feature = "obs")]
        crate::obs::record_span(
            pardis_obs::SpanKind::Bind,
            name,
            0,
            pardis_obs::recorder::alloc_span_id(),
            0,
            self.rts.membership().epoch(),
            0,
            bind_start.elapsed().as_nanos() as u64,
        );
        Ok(Proxy {
            objref,
            collective: false,
            conn: Some(conn),
            mode: TransferMode::Centralized,
            reply_buf: RefCell::new(Vec::new()),
            retry: None,
            default_deadline: None,
            retries: Cell::new(0),
            fallbacks: Cell::new(0),
            breaker: None,
            consecutive_failures: Cell::new(0),
        })
    }

    fn resolve(&self, name: &str, host: Option<&str>) -> PardisResult<ObjectRef> {
        let host_id = match host {
            None => None,
            Some(h) => Some(self.host.fabric().host_by_name(h).ok_or_else(|| {
                PardisError::ObjectNotFound {
                    name: name.to_string(),
                    host: Some(h.to_string()),
                }
            })?),
        };
        self.naming.resolve(name, host_id, self.resolve_timeout)
    }
}

fn check_type(objref: &ObjectRef, expected: Option<&str>) -> PardisResult<()> {
    if let Some(e) = expected {
        if objref.type_id != e {
            return Err(PardisError::InterfaceMismatch {
                expected: e.to_string(),
                found: objref.type_id.clone(),
            });
        }
    }
    Ok(())
}

impl Proxy {
    /// The bound object's reference.
    pub fn objref(&self) -> &ObjectRef {
        &self.objref
    }

    /// Whether this binding is collective (`spmd_bind`).
    pub fn is_collective(&self) -> bool {
        self.collective
    }

    /// The transfer method `invoke` will use.
    pub fn mode(&self) -> TransferMode {
        self.mode
    }

    /// Select the transfer method for subsequent invocations. Multi-port
    /// requires the object to advertise per-thread data ports.
    pub fn set_mode(&mut self, mode: TransferMode) -> PardisResult<()> {
        if mode == TransferMode::MultiPort && !self.objref.supports_multiport() {
            return Err(PardisError::MultiportUnavailable);
        }
        self.mode = mode;
        Ok(())
    }

    /// Enable bounded retry with exponential backoff for idempotent
    /// invocations (`spec.idempotent` or `oneway`). On a collective
    /// binding every thread of the machine must set the same policy.
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// Disable automatic retry.
    pub fn clear_retry(&mut self) {
        self.retry = None;
    }

    /// Default per-invocation deadline applied when a request spec does
    /// not carry its own. `None` restores indefinite blocking.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.default_deadline = deadline;
    }

    /// Arm the per-binding circuit breaker: after `threshold`
    /// consecutive failed invocations, further calls fast-fail with
    /// [`PardisError::CircuitOpen`] without touching the wire, until
    /// [`Proxy::rebind`] replaces the binding. On a collective binding
    /// every thread must arm the same threshold; the failure count is
    /// then agreed machine-wide (one extra allreduce per invocation) so
    /// all threads trip — and fast-fail — together.
    pub fn set_circuit_breaker(&mut self, threshold: u32) {
        self.breaker = Some(threshold.max(1));
    }

    /// Disarm the circuit breaker (and close it).
    pub fn clear_circuit_breaker(&mut self) {
        self.breaker = None;
        self.consecutive_failures.set(0);
    }

    /// Consecutive failed invocations on this binding so far.
    pub fn consecutive_failure_count(&self) -> u32 {
        self.consecutive_failures.get()
    }

    /// Invocation attempts this thread has retried so far.
    pub fn retry_count(&self) -> u64 {
        self.retries.get()
    }

    /// Multi-port invocations this thread demoted to the centralized
    /// engine because a server data port was dead.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.get()
    }

    /// Describe a distributed argument from a typed sequence, resolving
    /// the server-side layout from the object reference's registered
    /// distribution templates (`dist_index` counts distributed arguments
    /// of the operation, in order).
    pub fn dist_arg<T: Elem>(
        &self,
        op: &str,
        dist_index: u32,
        dir: ArgDir,
        seq: &DSequence<T>,
    ) -> PardisResult<DistArgSend> {
        let spec = self.objref.dist_for(op, dist_index);
        let server_templ = DistTempl::from_spec(&spec, seq.len(), self.objref.nthreads as usize)?;
        Ok(DistArgSend {
            dir,
            elem_size: T::wire_size(),
            local: T::to_native_bytes(seq.local_data()),
            client_templ: seq.templ().clone(),
            server_templ,
            #[cfg(feature = "analyze")]
            buf_id: seq.buf_id(),
        })
    }

    /// Describe a distributed argument from a plain (non-distributed)
    /// slice — the `_nd` mapping used with per-thread bindings: the whole
    /// sequence lives on the calling thread, the server still sees its
    /// registered distribution.
    pub fn dist_arg_nd<T: Elem>(
        &self,
        op: &str,
        dist_index: u32,
        dir: ArgDir,
        data: &[T],
    ) -> PardisResult<DistArgSend> {
        let spec = self.objref.dist_for(op, dist_index);
        let server_templ = DistTempl::from_spec(&spec, data.len(), self.objref.nthreads as usize)?;
        Ok(DistArgSend {
            dir,
            elem_size: T::wire_size(),
            local: T::to_native_bytes(data),
            client_templ: DistTempl::from_counts(vec![data.len()]),
            server_templ,
            // A plain slice has no tracked buffer identity.
            #[cfg(feature = "analyze")]
            buf_id: 0,
        })
    }

    /// Invoke an operation, blocking until the reply (if any) has been
    /// delivered to every computing thread. Collective when the binding
    /// is collective. When a [`RetryPolicy`] is set and the request is
    /// idempotent (or `oneway`), retryable transport faults are retried
    /// with exponential backoff; on a collective binding the retry
    /// decision is agreed machine-wide, so all threads stay in lockstep.
    pub fn invoke(&self, ctx: &OrbCtx, spec: RequestSpec) -> PardisResult<ReplyResult> {
        self.invoke_with_mode(ctx, spec, self.mode)
    }

    /// Invoke with an explicit transfer method, overriding
    /// [`Proxy::mode`] for this call.
    pub fn invoke_with_mode(
        &self,
        ctx: &OrbCtx,
        spec: RequestSpec,
        mode: TransferMode,
    ) -> PardisResult<ReplyResult> {
        // Open breaker: fast-fail before any collective or wire
        // traffic. Counters are machine-agreed (below), so on a
        // collective binding every thread takes this exit together.
        if let Some(threshold) = self.breaker {
            let failures = self.consecutive_failures.get();
            if failures >= threshold {
                return Err(PardisError::CircuitOpen { failures });
            }
        }
        let result = self.invoke_attempts(ctx, spec, mode);
        if self.breaker.is_some() {
            let failed_here = result.is_err();
            let failed = if self.collective {
                ctx.rts
                    .allreduce_f64(&[if failed_here { 1.0 } else { 0.0 }], ReduceOp::Max)?[0]
                    > 0.0
            } else {
                failed_here
            };
            if failed {
                self.consecutive_failures
                    .set(self.consecutive_failures.get().saturating_add(1));
            } else {
                self.consecutive_failures.set(0);
            }
        }
        result
    }

    /// The invocation loop proper (retry policy, verdict agreement).
    fn invoke_attempts(
        &self,
        ctx: &OrbCtx,
        spec: RequestSpec,
        mode: TransferMode,
    ) -> PardisResult<ReplyResult> {
        let Some(policy) = self.retry else {
            let pending = self.begin_with_mode(ctx, &spec, mode)?;
            return self.complete(ctx, pending);
        };
        let can_retry = spec.idempotent || !spec.response_expected;
        // PA103: a retry policy on a non-idempotent two-way request is
        // legal but inert — the policy never fires. Surface the hazard
        // to the analyzer instead of silently ignoring it.
        #[cfg(feature = "analyze")]
        if !can_retry {
            crate::analyze::record(
                "PA103",
                format!(
                    "retry policy attached to non-idempotent operation `{}`; \
                     the policy will never retry it",
                    spec.operation
                ),
            );
        }
        let mut attempt: u32 = 0;
        loop {
            let result = self
                .begin_with_mode(ctx, &spec, mode)
                .and_then(|pending| self.complete(ctx, pending));
            // 0 = success, 1 = retryable fault, 2 = fatal. Collective
            // bindings take the max across the machine: one thread's
            // fault retries (or fails) the invocation for everyone.
            let verdict = match &result {
                Ok(_) => 0.0,
                Err(e) if can_retry && e.is_retryable() => 1.0,
                Err(_) => 2.0,
            };
            let verdict = if self.collective {
                ctx.rts.allreduce_f64(&[verdict], ReduceOp::Max)?[0]
            } else {
                verdict
            };
            if verdict == 0.0 {
                return result;
            }
            if verdict > 1.0 || attempt + 1 >= policy.max_attempts {
                return match result {
                    Err(e) => Err(e),
                    // This thread succeeded but the machine failed:
                    // surface a consistent error everywhere.
                    Ok(_) => Err(PardisError::CommFailure(
                        "collective invocation failed on another computing thread".into(),
                    )),
                };
            }
            self.retries.set(self.retries.get() + 1);
            #[cfg(feature = "obs")]
            pardis_obs::metrics::add("orb.retries", 1);
            std::thread::sleep(policy.backoff(attempt));
            attempt += 1;
        }
    }

    /// Non-blocking invocation: the send phase runs now, the returned
    /// future's `wait` runs the receive phase. For collective bindings
    /// every thread must eventually wait (futures are collective, like
    /// the invocations that create them).
    pub fn invoke_nb<'a>(
        &'a self,
        ctx: &'a OrbCtx,
        spec: RequestSpec,
    ) -> PardisResult<PardisFuture<'a, ReplyResult>> {
        let pending = self.begin(ctx, &spec)?;
        let probe_ready = self.conn.is_some();
        let fut = PardisFuture::pending(move || self.complete(ctx, pending));
        Ok(if probe_ready {
            // On the thread holding the connection, readiness can be
            // probed by peeking the reply port.
            fut.with_probe(move || self.reply_arrived())
        } else {
            fut
        })
    }

    /// Begin an invocation: synchronize, agree on a request id, run the
    /// send phase of the selected transfer method.
    fn begin(&self, ctx: &OrbCtx, spec: &RequestSpec) -> PardisResult<PendingInvoke> {
        self.begin_with_mode(ctx, spec, self.mode)
    }

    fn begin_with_mode(
        &self,
        ctx: &OrbCtx,
        spec: &RequestSpec,
        mode: TransferMode,
    ) -> PardisResult<PendingInvoke> {
        // "the computing threads of the client first synchronize" (§3.2)
        if self.collective {
            // PA101: before committing to the (deadlocking) collective
            // protocol, agree that every computing thread is issuing the
            // same invocation. Divergence becomes a typed error naming
            // both call sites instead of a hang.
            #[cfg(feature = "analyze")]
            ctx.rts
                .agree_collective(&crate::analyze::fingerprint(spec, mode))?;
            ctx.rts.barrier();
        }
        let started = Instant::now();
        // Agree on the request id and the effective transfer method.
        // The communicating thread probes the server's data ports when
        // multi-port was requested; if any is dead the invocation is
        // demoted to the centralized engine (graceful degradation), and
        // the decision rides along with the id broadcast so all threads
        // drive the same engine.
        let requested = mode;
        let (req_id, mode) = if self.collective {
            if ctx.is_comm_thread() {
                let id = ctx.next_request_id();
                let mode = self.effective_mode(ctx, mode);
                let mut buf = [0u8; 9];
                buf[..8].copy_from_slice(&id.to_le_bytes());
                buf[8] = (mode == TransferMode::MultiPort) as u8;
                ctx.rts.broadcast(0, Some(Bytes::copy_from_slice(&buf)))?;
                (id, mode)
            } else {
                let b = ctx.rts.broadcast(0, None)?;
                let mut a = [0u8; 8];
                a.copy_from_slice(&b[..8]);
                let mode = if b[8] == 1 {
                    TransferMode::MultiPort
                } else {
                    TransferMode::Centralized
                };
                (u64::from_le_bytes(a), mode)
            }
        } else {
            (ctx.next_request_id(), self.effective_mode(ctx, mode))
        };
        if requested == TransferMode::MultiPort && mode == TransferMode::Centralized {
            self.fallbacks.set(self.fallbacks.get() + 1);
            #[cfg(feature = "obs")]
            pardis_obs::metrics::add("orb.fallbacks", 1);
        }
        #[cfg(feature = "obs")]
        let local_root = {
            pardis_obs::metrics::add("orb.requests", 1);
            // The thread holding the connection roots the trace: its
            // span id is the trace id itself. The other computing
            // threads hang their phases off a per-rank root span.
            let root = if self.conn.is_some() {
                req_id
            } else {
                pardis_obs::recorder::alloc_span_id()
            };
            pardis_obs::recorder::set_current(req_id, root);
            root
        };

        let mut pending = PendingInvoke {
            req_id,
            mode,
            dist: spec
                .dist_args
                .iter()
                .map(|a| PendingDist {
                    dir: a.dir,
                    elem_size: a.elem_size,
                    client_templ: a.client_templ.clone(),
                    server_templ: a.server_templ.clone(),
                })
                .collect(),
            response_expected: spec.response_expected,
            timing: InvokeTiming::default(),
            started,
            deadline: spec.deadline.or(self.default_deadline).map(|d| started + d),
            send_error: None,
            #[cfg(feature = "obs")]
            op: spec.operation.clone(),
            #[cfg(feature = "obs")]
            local_root,
        };

        // Sanity: collective bindings require client templates shaped
        // like this machine; per-thread bindings require single-thread
        // templates.
        let want_threads = if self.collective { ctx.nthreads() } else { 1 };
        for (i, d) in pending.dist.iter().enumerate() {
            if d.client_templ.nthreads() != want_threads {
                return Err(PardisError::BadDistArg(format!(
                    "argument {i} client template names {} threads, binding has {want_threads}",
                    d.client_templ.nthreads()
                )));
            }
        }

        // A send failure on a collective binding is deferred to the
        // receive phase: the machine's threads must pass through the
        // same collectives, so the error is surfaced after them.
        let sent = match mode {
            TransferMode::Centralized => centralized::client_send(ctx, self, spec, &mut pending),
            TransferMode::MultiPort => multiport::client_send(ctx, self, spec, &mut pending),
        };
        if let Err(e) = sent {
            if self.collective {
                pending.send_error = Some(e);
            } else {
                return Err(e);
            }
        }
        Ok(pending)
    }

    /// Probe the server's data ports when multi-port transfer is
    /// requested; demote to centralized if any is dead.
    fn effective_mode(&self, ctx: &OrbCtx, mode: TransferMode) -> TransferMode {
        if mode == TransferMode::MultiPort {
            let fabric = ctx.host.fabric();
            let alive = self
                .objref
                .data_ports
                .iter()
                .all(|&p| fabric.port_alive(self.objref.host, p));
            if !alive {
                return TransferMode::Centralized;
            }
        }
        mode
    }

    /// Replace this binding with a freshly resolved reference to the
    /// same object — the recovery move after a typed
    /// [`PardisError::MembershipChange`] or an open circuit breaker.
    ///
    /// **Epoch fencing**: only a reference with a *strictly newer*
    /// membership epoch is accepted. The naming service may still hold
    /// the pre-death registration when the client reacts, so this polls
    /// (bounded by the ORB's resolve timeout) until the server's
    /// re-registration lands; a stale re-resolve can therefore never
    /// roll the binding back onto dead data ports. Collective on
    /// collective bindings. Closes the circuit breaker and drops
    /// buffered replies of the old binding. Returns the new epoch.
    pub fn rebind(&mut self, ctx: &OrbCtx) -> PardisResult<u64> {
        let old_epoch = self.objref.epoch;
        let fresh = if !self.collective || ctx.is_comm_thread() {
            let deadline = Instant::now() + ctx.resolve_timeout;
            let fresh = loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                let r = ctx
                    .naming
                    .resolve(&self.objref.name, Some(self.objref.host), remaining)?;
                if r.epoch > old_epoch {
                    break r;
                }
                if Instant::now() >= deadline {
                    return Err(PardisError::Timeout);
                }
                std::thread::yield_now();
            };
            if self.collective {
                let bytes = pardis_cdr::traits::to_bytes(&fresh).map_err(PardisError::from)?;
                ctx.rts.broadcast(0, Some(Bytes::from(bytes)))?;
            }
            fresh
        } else {
            let bytes = ctx.rts.broadcast(0, None)?;
            pardis_cdr::traits::from_bytes::<ObjectRef>(&bytes).map_err(PardisError::from)?
        };
        if self.conn.is_some() {
            self.conn = Some(Connection::open(&ctx.host, fresh.host, fresh.request_port));
        }
        self.reply_buf.borrow_mut().clear();
        self.objref = fresh;
        self.consecutive_failures.set(0);
        Ok(self.objref.epoch)
    }

    /// Complete an invocation: run the receive phase, synchronize, stamp
    /// the total time.
    fn complete(&self, ctx: &OrbCtx, pending: PendingInvoke) -> PardisResult<ReplyResult> {
        let received = if pending.response_expected {
            match pending.mode {
                TransferMode::Centralized => centralized::client_recv(ctx, self, &pending),
                TransferMode::MultiPort => multiport::client_recv(ctx, self, &pending),
            }
        } else {
            Ok(ReplyResult {
                nondist_body: Bytes::new(),
                dist_out: Vec::new(),
                timing: pending.timing,
            })
        };
        let mut result = match (received, pending.send_error) {
            (Ok(r), None) => Ok(r),
            // A deferred send failure outranks a nominal receive.
            (Ok(_), Some(e)) => Err(e),
            (Err(e), _) => Err(e),
        };
        // The transfer is over (either way): close this request's
        // access intervals so later buffer accesses are ordered.
        #[cfg(feature = "analyze")]
        crate::race::close_transfer(pending.req_id);
        if self.collective {
            // Exit barrier (§3.3 reads the send interleaving off the
            // time threads spend here). Taken on the error path too, so
            // a thread whose receive failed stays in lockstep with the
            // ones that succeeded.
            let tb = Instant::now();
            ctx.rts.barrier();
            if let Ok(r) = &mut result {
                r.timing.barrier += tb.elapsed();
            }
        }
        if let Ok(r) = &mut result {
            r.timing.total = pending.started.elapsed();
        }
        #[cfg(feature = "obs")]
        {
            if matches!(&result, Err(PardisError::Timeout)) {
                pardis_obs::metrics::add("orb.timeouts", 1);
            }
            crate::obs::record_span(
                pardis_obs::SpanKind::Invoke,
                &pending.op,
                pending.req_id,
                pending.local_root,
                if pending.local_root == pending.req_id {
                    0
                } else {
                    pending.req_id
                },
                ctx.rts.membership().epoch(),
                0,
                pending.started.elapsed().as_nanos() as u64,
            );
            pardis_obs::recorder::clear_current();
        }
        result
    }

    /// Receive the Reply for `req_id` on `conn`, buffering replies to
    /// other outstanding requests on the same connection. `deadline`
    /// bounds the wait; `None` blocks indefinitely.
    pub(crate) fn recv_reply(
        &self,
        conn: &Connection,
        req_id: u64,
        deadline: Option<Instant>,
    ) -> PardisResult<(ReplyHeader, Bytes)> {
        {
            let mut buf = self.reply_buf.borrow_mut();
            if let Some(i) = buf.iter().position(|(h, _)| h.request_id == req_id) {
                return Ok(buf.remove(i));
            }
        }
        loop {
            match conn.recv_deadline(deadline)? {
                GiopMessage::Reply(h, body) => {
                    if h.request_id == req_id {
                        return Ok((h, body));
                    }
                    self.reply_buf.borrow_mut().push((h, body));
                }
                other => {
                    return Err(PardisError::Net(format!(
                        "unexpected message on reply port: {other:?}"
                    )))
                }
            }
        }
    }

    /// Whether a reply is waiting on the connection (readiness probe for
    /// futures; only meaningful on the thread holding the connection).
    fn reply_arrived(&self) -> bool {
        if !self.reply_buf.borrow().is_empty() {
            return true;
        }
        if let Some(conn) = self.conn.as_ref() {
            if let Ok(Some(GiopMessage::Reply(h, b))) = conn.try_recv() {
                self.reply_buf.borrow_mut().push((h, b));
                return true;
            }
        }
        false
    }
}

impl std::fmt::Debug for Proxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proxy")
            .field("object", &self.objref.name)
            .field("type", &self.objref.type_id)
            .field("collective", &self.collective)
            .field("mode", &self.mode)
            .finish()
    }
}
