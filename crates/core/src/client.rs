//! Client-side binding and invocation.
//!
//! PARDIS offers two ways for a client to bind to an object (§2.1):
//!
//! * [`OrbCtx::spmd_bind`] — "a collective form of bind; it has to be
//!   called by all the computing threads of a client and should be used
//!   by clients wishing to act as one entity in interactions with
//!   objects. After `spmd_bind`, every invocation to the object must be
//!   called by all the threads that participated in the bind call, and
//!   will result \[in\] making one request on the object."
//! * [`OrbCtx::bind`] — "non-collective and always establishes one
//!   binding per thread … After this form of bind, proxy methods using
//!   non-distributed mapping of distributed arguments should be used;
//!   the invocations are non-collective."
//!
//! Either form yields a [`Proxy`] through which [`RequestSpec`]s are
//! invoked, blocking ([`Proxy::invoke`]) or returning a future
//! ([`Proxy::invoke_nb`]). The argument-transfer method is selected per
//! proxy ([`Proxy::set_mode`]) or per call.

use crate::dist::DistTempl;
use crate::dseq::{DSequence, Elem};
use crate::error::{PardisError, PardisResult};
use crate::future::PardisFuture;
use crate::orb::OrbCtx;
use crate::request::{ArgDir, DistArgSend, InvokeTiming, ReplyResult, RequestSpec};
use crate::transfer::{centralized, multiport};
use bytes::Bytes;
use pardis_net::conn::Connection;
use pardis_net::giop::{GiopMessage, ReplyHeader, TransferMode};
use pardis_net::ObjectRef;
use std::cell::RefCell;
use std::time::Instant;

/// A client-side handle on a (possibly remote, possibly SPMD) object.
pub struct Proxy {
    pub(crate) objref: ObjectRef,
    /// True when created by `spmd_bind`: invocations are collective.
    pub(crate) collective: bool,
    /// The request/reply connection. Present on the communicating thread
    /// of a collective binding, and always for a per-thread binding.
    pub(crate) conn: Option<Connection>,
    /// Transfer method used by `invoke`.
    pub(crate) mode: TransferMode,
    /// Replies that arrived out of order (outstanding futures).
    pub(crate) reply_buf: RefCell<Vec<(ReplyHeader, Bytes)>>,
}

/// The client half of an invocation between its send and receive phases
/// (what a future holds on to).
#[derive(Debug, Clone)]
pub struct PendingInvoke {
    pub(crate) req_id: u64,
    pub(crate) mode: TransferMode,
    pub(crate) dist: Vec<PendingDist>,
    pub(crate) response_expected: bool,
    pub(crate) timing: InvokeTiming,
    pub(crate) started: Instant,
}

/// Routing info for one distributed argument of a pending invocation.
#[derive(Debug, Clone)]
pub(crate) struct PendingDist {
    pub dir: ArgDir,
    pub elem_size: usize,
    pub client_templ: DistTempl,
    pub server_templ: DistTempl,
}

impl OrbCtx {
    /// Collective bind: every computing thread calls this; the machine
    /// then acts as one entity toward the object. `expected_type` (if
    /// given) is checked against the object's interface id.
    pub fn spmd_bind(
        &self,
        name: &str,
        host: Option<&str>,
        expected_type: Option<&str>,
    ) -> PardisResult<Proxy> {
        let objref = if self.is_comm_thread() {
            let objref = self.resolve(name, host)?;
            let bytes = pardis_cdr::traits::to_bytes(&objref).map_err(PardisError::from)?;
            self.rts.broadcast(0, Some(Bytes::from(bytes)))?;
            objref
        } else {
            let bytes = self.rts.broadcast(0, None)?;
            pardis_cdr::traits::from_bytes::<ObjectRef>(&bytes).map_err(PardisError::from)?
        };
        check_type(&objref, expected_type)?;
        let conn = if self.is_comm_thread() {
            Some(Connection::open(&self.host, objref.host, objref.request_port))
        } else {
            None
        };
        Ok(Proxy {
            objref,
            collective: true,
            conn,
            mode: TransferMode::Centralized,
            reply_buf: RefCell::new(Vec::new()),
        })
    }

    /// Per-thread bind: establishes one binding for the calling thread
    /// only; invocations through it are non-collective and use the
    /// non-distributed argument mapping (or a single-thread distributed
    /// mapping).
    pub fn bind(
        &self,
        name: &str,
        host: Option<&str>,
        expected_type: Option<&str>,
    ) -> PardisResult<Proxy> {
        let objref = self.resolve(name, host)?;
        check_type(&objref, expected_type)?;
        let conn = Connection::open(&self.host, objref.host, objref.request_port);
        Ok(Proxy {
            objref,
            collective: false,
            conn: Some(conn),
            mode: TransferMode::Centralized,
            reply_buf: RefCell::new(Vec::new()),
        })
    }

    fn resolve(&self, name: &str, host: Option<&str>) -> PardisResult<ObjectRef> {
        let host_id = match host {
            None => None,
            Some(h) => Some(self.host.fabric().host_by_name(h).ok_or_else(|| {
                PardisError::ObjectNotFound {
                    name: name.to_string(),
                    host: Some(h.to_string()),
                }
            })?),
        };
        self.naming.resolve(name, host_id, self.resolve_timeout)
    }
}

fn check_type(objref: &ObjectRef, expected: Option<&str>) -> PardisResult<()> {
    if let Some(e) = expected {
        if objref.type_id != e {
            return Err(PardisError::InterfaceMismatch {
                expected: e.to_string(),
                found: objref.type_id.clone(),
            });
        }
    }
    Ok(())
}

impl Proxy {
    /// The bound object's reference.
    pub fn objref(&self) -> &ObjectRef {
        &self.objref
    }

    /// Whether this binding is collective (`spmd_bind`).
    pub fn is_collective(&self) -> bool {
        self.collective
    }

    /// The transfer method `invoke` will use.
    pub fn mode(&self) -> TransferMode {
        self.mode
    }

    /// Select the transfer method for subsequent invocations. Multi-port
    /// requires the object to advertise per-thread data ports.
    pub fn set_mode(&mut self, mode: TransferMode) -> PardisResult<()> {
        if mode == TransferMode::MultiPort && !self.objref.supports_multiport() {
            return Err(PardisError::MultiportUnavailable);
        }
        self.mode = mode;
        Ok(())
    }

    /// Describe a distributed argument from a typed sequence, resolving
    /// the server-side layout from the object reference's registered
    /// distribution templates (`dist_index` counts distributed arguments
    /// of the operation, in order).
    pub fn dist_arg<T: Elem>(
        &self,
        op: &str,
        dist_index: u32,
        dir: ArgDir,
        seq: &DSequence<T>,
    ) -> PardisResult<DistArgSend> {
        let spec = self.objref.dist_for(op, dist_index);
        let server_templ =
            DistTempl::from_spec(&spec, seq.len(), self.objref.nthreads as usize)?;
        Ok(DistArgSend {
            dir,
            elem_size: T::wire_size(),
            local: T::to_native_bytes(seq.local_data()),
            client_templ: seq.templ().clone(),
            server_templ,
        })
    }

    /// Describe a distributed argument from a plain (non-distributed)
    /// slice — the `_nd` mapping used with per-thread bindings: the whole
    /// sequence lives on the calling thread, the server still sees its
    /// registered distribution.
    pub fn dist_arg_nd<T: Elem>(
        &self,
        op: &str,
        dist_index: u32,
        dir: ArgDir,
        data: &[T],
    ) -> PardisResult<DistArgSend> {
        let spec = self.objref.dist_for(op, dist_index);
        let server_templ =
            DistTempl::from_spec(&spec, data.len(), self.objref.nthreads as usize)?;
        Ok(DistArgSend {
            dir,
            elem_size: T::wire_size(),
            local: T::to_native_bytes(data),
            client_templ: DistTempl::from_counts(vec![data.len()]),
            server_templ,
        })
    }

    /// Invoke an operation, blocking until the reply (if any) has been
    /// delivered to every computing thread. Collective when the binding
    /// is collective.
    pub fn invoke(&self, ctx: &OrbCtx, spec: RequestSpec) -> PardisResult<ReplyResult> {
        let pending = self.begin(ctx, &spec)?;
        self.complete(ctx, pending)
    }

    /// Invoke with an explicit transfer method, overriding
    /// [`Proxy::mode`] for this call.
    pub fn invoke_with_mode(
        &self,
        ctx: &OrbCtx,
        spec: RequestSpec,
        mode: TransferMode,
    ) -> PardisResult<ReplyResult> {
        let pending = self.begin_with_mode(ctx, &spec, mode)?;
        self.complete(ctx, pending)
    }

    /// Non-blocking invocation: the send phase runs now, the returned
    /// future's `wait` runs the receive phase. For collective bindings
    /// every thread must eventually wait (futures are collective, like
    /// the invocations that create them).
    pub fn invoke_nb<'a>(
        &'a self,
        ctx: &'a OrbCtx,
        spec: RequestSpec,
    ) -> PardisResult<PardisFuture<'a, ReplyResult>> {
        let pending = self.begin(ctx, &spec)?;
        let probe_ready = self.conn.is_some();
        let fut = PardisFuture::pending(move || self.complete(ctx, pending));
        Ok(if probe_ready {
            // On the thread holding the connection, readiness can be
            // probed by peeking the reply port.
            fut.with_probe(move || self.reply_arrived())
        } else {
            fut
        })
    }

    /// Begin an invocation: synchronize, agree on a request id, run the
    /// send phase of the selected transfer method.
    fn begin(&self, ctx: &OrbCtx, spec: &RequestSpec) -> PardisResult<PendingInvoke> {
        self.begin_with_mode(ctx, spec, self.mode)
    }

    fn begin_with_mode(
        &self,
        ctx: &OrbCtx,
        spec: &RequestSpec,
        mode: TransferMode,
    ) -> PardisResult<PendingInvoke> {
        // "the computing threads of the client first synchronize" (§3.2)
        if self.collective {
            ctx.rts.barrier();
        }
        let started = Instant::now();
        let req_id = if self.collective {
            if ctx.is_comm_thread() {
                let id = ctx.next_request_id();
                ctx.rts
                    .broadcast(0, Some(Bytes::copy_from_slice(&id.to_le_bytes())))?;
                id
            } else {
                let b = ctx.rts.broadcast(0, None)?;
                let mut a = [0u8; 8];
                a.copy_from_slice(&b[..8]);
                u64::from_le_bytes(a)
            }
        } else {
            ctx.next_request_id()
        };

        let mut pending = PendingInvoke {
            req_id,
            mode,
            dist: spec
                .dist_args
                .iter()
                .map(|a| PendingDist {
                    dir: a.dir,
                    elem_size: a.elem_size,
                    client_templ: a.client_templ.clone(),
                    server_templ: a.server_templ.clone(),
                })
                .collect(),
            response_expected: spec.response_expected,
            timing: InvokeTiming::default(),
            started,
        };

        // Sanity: collective bindings require client templates shaped
        // like this machine; per-thread bindings require single-thread
        // templates.
        let want_threads = if self.collective { ctx.nthreads() } else { 1 };
        for (i, d) in pending.dist.iter().enumerate() {
            if d.client_templ.nthreads() != want_threads {
                return Err(PardisError::BadDistArg(format!(
                    "argument {i} client template names {} threads, binding has {want_threads}",
                    d.client_templ.nthreads()
                )));
            }
        }

        match mode {
            TransferMode::Centralized => centralized::client_send(ctx, self, spec, &mut pending)?,
            TransferMode::MultiPort => multiport::client_send(ctx, self, spec, &mut pending)?,
        }
        Ok(pending)
    }

    /// Complete an invocation: run the receive phase, synchronize, stamp
    /// the total time.
    fn complete(&self, ctx: &OrbCtx, pending: PendingInvoke) -> PardisResult<ReplyResult> {
        let mut result = if pending.response_expected {
            match pending.mode {
                TransferMode::Centralized => centralized::client_recv(ctx, self, &pending)?,
                TransferMode::MultiPort => multiport::client_recv(ctx, self, &pending)?,
            }
        } else {
            ReplyResult {
                nondist_body: Bytes::new(),
                dist_out: Vec::new(),
                timing: pending.timing,
            }
        };
        if self.collective {
            // Exit barrier (§3.3 reads the send interleaving off the
            // time threads spend here).
            let tb = Instant::now();
            ctx.rts.barrier();
            result.timing.barrier += tb.elapsed();
        }
        result.timing.total = pending.started.elapsed();
        Ok(result)
    }

    /// Receive the Reply for `req_id` on `conn`, buffering replies to
    /// other outstanding requests on the same connection.
    pub(crate) fn recv_reply(
        &self,
        conn: &Connection,
        req_id: u64,
    ) -> PardisResult<(ReplyHeader, Bytes)> {
        {
            let mut buf = self.reply_buf.borrow_mut();
            if let Some(i) = buf.iter().position(|(h, _)| h.request_id == req_id) {
                return Ok(buf.remove(i));
            }
        }
        loop {
            match conn.recv()? {
                GiopMessage::Reply(h, body) => {
                    if h.request_id == req_id {
                        return Ok((h, body));
                    }
                    self.reply_buf.borrow_mut().push((h, body));
                }
                other => {
                    return Err(PardisError::Net(format!(
                        "unexpected message on reply port: {other:?}"
                    )))
                }
            }
        }
    }

    /// Whether a reply is waiting on the connection (readiness probe for
    /// futures; only meaningful on the thread holding the connection).
    fn reply_arrived(&self) -> bool {
        if !self.reply_buf.borrow().is_empty() {
            return true;
        }
        if let Some(conn) = self.conn.as_ref() {
            if let Ok(Some(GiopMessage::Reply(h, b))) = conn.try_recv() {
                self.reply_buf.borrow_mut().push((h, b));
                return true;
            }
        }
        false
    }
}

impl std::fmt::Debug for Proxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proxy")
            .field("object", &self.objref.name)
            .field("type", &self.objref.type_id)
            .field("collective", &self.collective)
            .field("mode", &self.mode)
            .finish()
    }
}
