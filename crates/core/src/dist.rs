//! Distribution templates and ownership math.
//!
//! A distributed sequence's elements are split over the address spaces of
//! an SPMD object's computing threads according to a *distribution
//! template* (`DistTempl` in the paper's C++ mapping). PARDIS defaults to
//! **uniform blockwise** everywhere a template is left unspecified; the
//! alternative is a [`Proportions`] template ("distributed over the
//! address spaces of threads 0, 1, 2 and 3 in proportions 2:4:2:4",
//! §2.2).
//!
//! The key computation of the multi-port method lives here too:
//! [`DistTempl::transfers_to`] computes the exact set of
//! (destination thread, element range) pairs each source thread must
//! send so that data laid out by one template lands laid out by another —
//! "the client's threads first calculate to which of the server's
//! threads they should send data" (§3.3).

use crate::error::{PardisError, PardisResult};
use pardis_net::DistSpec;
use std::ops::Range;

/// A proportional-ownership description, mirroring
/// `PARDIS::Proportions`. Construct from weights; materializes into a
/// [`DistTempl`] once a length is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proportions(pub Vec<u32>);

impl Proportions {
    /// Build from weights; panics if empty or all-zero (no owner for any
    /// element).
    pub fn new(weights: impl Into<Vec<u32>>) -> Proportions {
        let w = weights.into();
        assert!(!w.is_empty(), "Proportions needs at least one weight");
        assert!(
            w.iter().any(|&x| x > 0),
            "Proportions needs a nonzero weight"
        );
        Proportions(w)
    }

    /// Number of threads the proportions describe.
    pub fn nthreads(&self) -> usize {
        self.0.len()
    }
}

/// A materialized distribution: exactly how many elements each computing
/// thread owns. Ownership is always *contiguous in rank order* (thread 0
/// owns the first `counts[0]` elements, and so on) — the paper's
/// sequences are one-dimensional block/proportional layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistTempl {
    counts: Vec<usize>,
    /// Prefix sums: `offsets[t]` is the global index of thread t's first
    /// element; `offsets[n]` is the total length.
    offsets: Vec<usize>,
}

impl DistTempl {
    /// Build from explicit per-thread counts.
    pub fn from_counts(counts: Vec<usize>) -> DistTempl {
        assert!(!counts.is_empty(), "template needs at least one thread");
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        DistTempl { counts, offsets }
    }

    /// Uniform blockwise distribution of `len` elements over `nthreads`
    /// threads: the first `len % nthreads` threads own one extra element.
    pub fn block(len: usize, nthreads: usize) -> DistTempl {
        assert!(nthreads > 0, "template needs at least one thread");
        let base = len / nthreads;
        let rem = len % nthreads;
        DistTempl::from_counts((0..nthreads).map(|t| base + usize::from(t < rem)).collect())
    }

    /// Proportional distribution of `len` elements. Element counts are
    /// the largest-remainder apportionment of `len` by the weights, so
    /// the counts always sum to exactly `len`.
    pub fn proportional(len: usize, props: &Proportions) -> DistTempl {
        let total_w: u64 = props.0.iter().map(|&w| w as u64).sum();
        let n = props.0.len();
        // Floor shares plus remainders.
        let mut counts = vec![0usize; n];
        let mut rems: Vec<(u64, usize)> = Vec::with_capacity(n);
        let mut assigned = 0usize;
        for (t, &w) in props.0.iter().enumerate() {
            let exact = (len as u64) * (w as u64);
            counts[t] = (exact / total_w) as usize;
            rems.push((exact % total_w, t));
            assigned += counts[t];
        }
        // Distribute the leftover elements to the largest remainders
        // (ties broken by thread order for determinism).
        rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, t) in rems.iter().take(len - assigned) {
            counts[t] += 1;
        }
        DistTempl::from_counts(counts)
    }

    /// Materialize a wire-level [`DistSpec`] for a concrete length and
    /// thread count. Errors if a proportions spec names a different
    /// thread count than the object has.
    pub fn from_spec(spec: &DistSpec, len: usize, nthreads: usize) -> PardisResult<DistTempl> {
        match spec {
            DistSpec::Block => Ok(DistTempl::block(len, nthreads)),
            DistSpec::Proportions(w) => {
                if w.len() != nthreads {
                    return Err(PardisError::BadDistArg(format!(
                        "proportions template names {} threads, object has {}",
                        w.len(),
                        nthreads
                    )));
                }
                Ok(DistTempl::proportional(len, &Proportions::new(w.clone())))
            }
        }
    }

    /// Per-thread counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of elements described.
    pub fn len(&self) -> usize {
        // `offsets` always has `counts.len() + 1` entries by
        // construction; an empty template still holds the single 0.
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Whether the template describes zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of threads.
    pub fn nthreads(&self) -> usize {
        self.counts.len()
    }

    /// Elements owned by thread `t`.
    pub fn count(&self, t: usize) -> usize {
        self.counts[t]
    }

    /// Global index of thread `t`'s first element.
    pub fn offset(&self, t: usize) -> usize {
        self.offsets[t]
    }

    /// Global index range owned by thread `t`.
    pub fn range(&self, t: usize) -> Range<usize> {
        self.offsets[t]..self.offsets[t + 1]
    }

    /// Owner of global index `idx` and the index's position within the
    /// owner's local part. Errors past the end of the sequence — "it is
    /// currently an error to access element beyond the value of the
    /// length" (§2.2).
    pub fn owner_of(&self, idx: usize) -> PardisResult<(usize, usize)> {
        if idx >= self.len() {
            return Err(PardisError::BadDistArg(format!(
                "index {idx} beyond sequence length {}",
                self.len()
            )));
        }
        // offsets is sorted; partition_point finds the owning thread.
        let t = self.offsets.partition_point(|&o| o <= idx) - 1;
        Ok((t, idx - self.offsets[t]))
    }

    /// The last thread owning at least one element, or thread
    /// `nthreads-1` for an empty sequence. Growth appends here: "new
    /// elements will be added to the ownership of the computing thread
    /// which owned the last elements of the old sequence" (§2.2).
    pub fn last_owner(&self) -> usize {
        for t in (0..self.nthreads()).rev() {
            if self.counts[t] > 0 {
                return t;
            }
        }
        self.nthreads() - 1
    }

    /// Resize the template: shrinking truncates ownership from the top;
    /// growing extends the last owner.
    pub fn resized(&self, new_len: usize) -> DistTempl {
        let old_len = self.len();
        if new_len == old_len {
            return self.clone();
        }
        let mut counts = self.counts.clone();
        if new_len > old_len {
            counts[self.last_owner()] += new_len - old_len;
        } else {
            let mut to_drop = old_len - new_len;
            for t in (0..counts.len()).rev() {
                let d = to_drop.min(counts[t]);
                counts[t] -= d;
                to_drop -= d;
                if to_drop == 0 {
                    break;
                }
            }
        }
        DistTempl::from_counts(counts)
    }

    /// Redistribute this template's total length over `survivors` only:
    /// dead threads own zero elements, the survivors split the length
    /// blockwise in ascending rank order. Arity is preserved (the
    /// template still names every thread of the machine), and because
    /// ownership stays contiguous in rank order, concatenating the
    /// survivors' local parts still yields the global sequence — which
    /// is what the gather-based reply path depends on.
    ///
    /// Errors when `survivors` is empty or names a thread the template
    /// does not have.
    pub fn remap_onto(&self, survivors: &[usize]) -> PardisResult<DistTempl> {
        if survivors.is_empty() {
            return Err(PardisError::BadDistArg(
                "cannot remap a distribution onto zero survivors".into(),
            ));
        }
        if let Some(&bad) = survivors.iter().find(|&&s| s >= self.nthreads()) {
            return Err(PardisError::BadDistArg(format!(
                "survivor rank {bad} out of range for a {}-thread template",
                self.nthreads()
            )));
        }
        let mut sorted: Vec<usize> = survivors.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let len = self.len();
        let base = len / sorted.len();
        let rem = len % sorted.len();
        let mut counts = vec![0usize; self.nthreads()];
        for (i, &s) in sorted.iter().enumerate() {
            counts[s] = base + usize::from(i < rem);
        }
        Ok(DistTempl::from_counts(counts))
    }

    /// Transfers thread `src` must make so data currently laid out by
    /// `self` becomes laid out by `dst_templ`: the list of
    /// `(dst_thread, global_range)` intersections of `src`'s range with
    /// every destination thread's range. Empty intersections are
    /// omitted; ranges are in ascending global order.
    ///
    /// Both templates must describe the same total length.
    pub fn transfers_to(&self, src: usize, dst_templ: &DistTempl) -> Vec<(usize, Range<usize>)> {
        debug_assert_eq!(
            self.len(),
            dst_templ.len(),
            "templates must agree on length"
        );
        let my = self.range(src);
        if my.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        // Find the first destination thread whose range may intersect.
        let first = dst_templ.offsets.partition_point(|&o| o <= my.start) - 1;
        for d in first..dst_templ.nthreads() {
            let dr = dst_templ.range(d);
            if dr.start >= my.end {
                break;
            }
            let start = my.start.max(dr.start);
            let end = my.end.min(dr.end);
            if start < end {
                out.push((d, start..end));
            }
        }
        out
    }

    /// Number of fragments thread `dst` will *receive* when data moves
    /// from `src_templ` layout into `self` layout.
    pub fn incoming_count(&self, dst: usize, src_templ: &DistTempl) -> usize {
        src_templ.transfers_to_inverse(self, dst)
    }

    fn transfers_to_inverse(&self, dst_templ: &DistTempl, dst: usize) -> usize {
        // Fragments arriving at dst = sources whose range intersects
        // dst's range under `self` (the source layout).
        let dr = dst_templ.range(dst);
        if dr.is_empty() {
            return 0;
        }
        let mut n = 0;
        for s in 0..self.nthreads() {
            let sr = self.range(s);
            if sr.start < dr.end && dr.start < sr.end {
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_divides_evenly() {
        let t = DistTempl::block(1024, 4);
        assert_eq!(t.counts(), &[256, 256, 256, 256]);
        assert_eq!(t.len(), 1024);
        assert_eq!(t.range(2), 512..768);
    }

    #[test]
    fn block_remainder_goes_first() {
        let t = DistTempl::block(10, 4);
        assert_eq!(t.counts(), &[3, 3, 2, 2]);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn block_more_threads_than_elements() {
        let t = DistTempl::block(2, 5);
        assert_eq!(t.counts(), &[1, 1, 0, 0, 0]);
        assert_eq!(t.last_owner(), 1);
    }

    #[test]
    fn proportions_paper_example() {
        // Proportions(2,4,2,4) over 12 elements -> 2:4:2:4.
        let t = DistTempl::proportional(12, &Proportions::new(vec![2, 4, 2, 4]));
        assert_eq!(t.counts(), &[2, 4, 2, 4]);
    }

    #[test]
    fn proportions_sum_is_exact() {
        for len in [0usize, 1, 7, 100, 1023] {
            let t = DistTempl::proportional(len, &Proportions::new(vec![3, 1, 5]));
            assert_eq!(t.len(), len, "len {len}");
        }
    }

    #[test]
    fn owner_lookup() {
        let t = DistTempl::from_counts(vec![3, 0, 2]);
        assert_eq!(t.owner_of(0).unwrap(), (0, 0));
        assert_eq!(t.owner_of(2).unwrap(), (0, 2));
        assert_eq!(t.owner_of(3).unwrap(), (2, 0));
        assert_eq!(t.owner_of(4).unwrap(), (2, 1));
        assert!(t.owner_of(5).is_err());
    }

    #[test]
    fn resize_grow_extends_last_owner() {
        let t = DistTempl::from_counts(vec![4, 4]);
        let g = t.resized(12);
        assert_eq!(g.counts(), &[4, 8]);
    }

    #[test]
    fn resize_shrink_discards_from_top() {
        let t = DistTempl::from_counts(vec![4, 4, 4]);
        assert_eq!(t.resized(9).counts(), &[4, 4, 1]);
        assert_eq!(t.resized(3).counts(), &[3, 0, 0]);
        assert_eq!(t.resized(0).counts(), &[0, 0, 0]);
    }

    #[test]
    fn resize_grow_skips_empty_trailing_threads() {
        let t = DistTempl::from_counts(vec![2, 3, 0]);
        // Last owner is thread 1, so growth lands there.
        assert_eq!(t.resized(8).counts(), &[2, 6, 0]);
    }

    #[test]
    fn remap_onto_survivors_preserves_length_and_order() {
        let t = DistTempl::proportional(13, &Proportions::new(vec![2, 4, 2, 4]));
        let r = t.remap_onto(&[0, 1, 3]).unwrap();
        assert_eq!(r.nthreads(), 4, "arity preserved");
        assert_eq!(r.len(), 13, "length preserved");
        assert_eq!(r.count(2), 0, "dead rank owns nothing");
        // Blockwise over survivors ascending: 13 over 3 = 5,4,4.
        assert_eq!(r.counts(), &[5, 4, 0, 4]);
        // Contiguity: ranges concatenate back to the global order.
        assert_eq!(r.range(0), 0..5);
        assert_eq!(r.range(1), 5..9);
        assert_eq!(r.range(3), 9..13);
    }

    #[test]
    fn remap_onto_rejects_bad_survivor_sets() {
        let t = DistTempl::block(8, 4);
        assert!(t.remap_onto(&[]).is_err());
        assert!(t.remap_onto(&[0, 4]).is_err());
        // Full survivor set is legal (blockwise re-spread).
        assert_eq!(t.remap_onto(&[0, 1, 2, 3]).unwrap().counts(), &[2, 2, 2, 2]);
    }

    #[test]
    fn transfers_identity_layout() {
        let t = DistTempl::block(100, 4);
        for s in 0..4 {
            let x = t.transfers_to(s, &t);
            assert_eq!(x, vec![(s, t.range(s))]);
        }
    }

    #[test]
    fn transfers_2_to_3() {
        let src = DistTempl::block(12, 2); // [0..6), [6..12)
        let dst = DistTempl::block(12, 3); // [0..4), [4..8), [8..12)
        assert_eq!(src.transfers_to(0, &dst), vec![(0, 0..4), (1, 4..6)]);
        assert_eq!(src.transfers_to(1, &dst), vec![(1, 6..8), (2, 8..12)]);
    }

    #[test]
    fn transfers_cover_everything_once() {
        let src = DistTempl::proportional(97, &Proportions::new(vec![1, 3, 2]));
        let dst = DistTempl::block(97, 5);
        let mut covered = [0u8; 97];
        for s in 0..src.nthreads() {
            for (_, r) in src.transfers_to(s, &dst) {
                for i in r {
                    covered[i] += 1;
                }
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "each element exactly once");
    }

    #[test]
    fn incoming_counts_match_transfers() {
        let src = DistTempl::block(50, 4);
        let dst = DistTempl::proportional(50, &Proportions::new(vec![5, 1, 1, 5]));
        for d in 0..dst.nthreads() {
            let expected = (0..src.nthreads())
                .map(|s| {
                    src.transfers_to(s, &dst)
                        .iter()
                        .filter(|(t, _)| *t == d)
                        .count()
                })
                .sum::<usize>();
            assert_eq!(dst.incoming_count(d, &src), expected, "dst {d}");
        }
    }

    #[test]
    fn from_spec_block_and_props() {
        let t = DistTempl::from_spec(&DistSpec::Block, 10, 2).unwrap();
        assert_eq!(t.counts(), &[5, 5]);
        let t = DistTempl::from_spec(&DistSpec::Proportions(vec![1, 3]), 8, 2).unwrap();
        assert_eq!(t.counts(), &[2, 6]);
        assert!(DistTempl::from_spec(&DistSpec::Proportions(vec![1, 3]), 8, 3).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_proportions_panics() {
        let _ = Proportions::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "nonzero weight")]
    fn zero_proportions_panics() {
        let _ = Proportions::new(vec![0, 0]);
    }

    #[test]
    fn zero_weight_thread_owns_nothing() {
        let t = DistTempl::proportional(10, &Proportions::new(vec![0, 1, 1]));
        assert_eq!(t.count(0), 0);
        assert_eq!(t.len(), 10);
        // transfers from an empty owner are empty
        assert!(t.transfers_to(0, &DistTempl::block(10, 3)).is_empty());
    }
}
