//! Error type for the PARDIS ORB.

use std::fmt;

/// Result alias used throughout the crate.
pub type PardisResult<T> = Result<T, PardisError>;

/// Errors surfaced by ORB operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PardisError {
    /// Underlying network failure.
    Net(String),
    /// Marshaling failure.
    Cdr(String),
    /// Run-time system failure.
    Rts(String),
    /// No object with this name (and host, if given) is registered.
    ObjectNotFound { name: String, host: Option<String> },
    /// The bound object's interface does not match the proxy's.
    InterfaceMismatch { expected: String, found: String },
    /// The servant raised an IDL-declared exception.
    UserException(String),
    /// The remote ORB or servant failed.
    SystemException(String),
    /// The target object does not implement the requested operation.
    BadOperation(String),
    /// A distributed argument's metadata was inconsistent (lengths,
    /// thread counts, template totals).
    BadDistArg(String),
    /// An operation that requires multi-port support was attempted on an
    /// object that does not advertise per-thread data ports.
    MultiportUnavailable,
    /// A blocking call timed out.
    Timeout,
    /// The transport failed mid-invocation (CORBA `COMM_FAILURE`): a
    /// connection reset, a dead port, or a vanished route.
    CommFailure(String),
    /// The collective-consistency verifier (`analyze` feature) caught
    /// one computing thread issuing a different SPMD invocation than
    /// the others — the divergence that would otherwise deadlock.
    /// Never retryable: the program itself diverged.
    CollectiveMismatch {
        /// First divergent computing thread (rank).
        thread: usize,
        /// The reference call site (rank 0's).
        mine: String,
        /// The divergent thread's call site.
        theirs: String,
    },
    /// The server machine's SPMD membership changed (a computing thread
    /// was confirmed dead) and its degradation policy refused to
    /// complete the invocation. Never retryable as-is: the same binding
    /// will keep failing; the client must rebind (the re-registered
    /// reference carries a newer epoch) or give up.
    MembershipChange {
        /// Membership epoch after the change.
        epoch: u64,
        /// Server ranks confirmed dead, ascending.
        dead: Vec<u32>,
        /// Server ranks still alive, ascending.
        survivors: Vec<u32>,
    },
    /// The per-binding circuit breaker opened: consecutive retryable
    /// failures crossed the threshold, so invocations fast-fail without
    /// touching the wire until the binding is replaced.
    CircuitOpen {
        /// Consecutive failures observed when the breaker opened.
        failures: u32,
    },
    /// An internal invariant failed (a bug surfaced as an error instead
    /// of a panic on library paths).
    Internal(String),
}

impl PardisError {
    /// Whether retrying the invocation could plausibly succeed: the
    /// failure is a transport fault (reset, dead port, timeout, a frame
    /// corrupted in flight) rather than a semantic error. Marshaling
    /// failures count — a corrupted message decodes badly, and a clean
    /// retransmission fixes it.
    pub fn is_retryable(&self) -> bool {
        match self {
            PardisError::CommFailure(_)
            | PardisError::Timeout
            | PardisError::Net(_)
            | PardisError::Cdr(_) => true,
            // The server reports its own transport faults (a fragment
            // wait that timed out, a reset) as system exceptions.
            PardisError::SystemException(m) => {
                m.contains("timed out")
                    || m.contains("TIMEOUT")
                    || m.contains("COMM_FAILURE")
                    || m.contains("communication failure")
                    || m.contains("connection reset")
                    || m.contains("closed")
                    || m.contains("network error")
                    || m.contains("marshaling error")
            }
            _ => false,
        }
    }
}

impl fmt::Display for PardisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PardisError::Net(m) => write!(f, "network error: {m}"),
            PardisError::Cdr(m) => write!(f, "marshaling error: {m}"),
            PardisError::Rts(m) => write!(f, "run-time system error: {m}"),
            PardisError::ObjectNotFound { name, host } => match host {
                Some(h) => write!(f, "object '{name}' not found on host '{h}'"),
                None => write!(f, "object '{name}' not found"),
            },
            PardisError::InterfaceMismatch { expected, found } => {
                write!(
                    f,
                    "interface mismatch: proxy expects {expected}, object is {found}"
                )
            }
            PardisError::UserException(name) => write!(f, "user exception: {name}"),
            PardisError::SystemException(m) => write!(f, "system exception: {m}"),
            PardisError::BadOperation(op) => write!(f, "no such operation: {op}"),
            PardisError::BadDistArg(m) => write!(f, "bad distributed argument: {m}"),
            PardisError::MultiportUnavailable => {
                write!(f, "object does not advertise per-thread data ports")
            }
            PardisError::Timeout => write!(f, "timed out"),
            PardisError::CommFailure(m) => write!(f, "communication failure: {m}"),
            PardisError::CollectiveMismatch {
                thread,
                mine,
                theirs,
            } => write!(
                f,
                "collective mismatch [PA101]: thread {thread} issued {theirs} while this \
                 thread issued {mine}; after _spmd_bind every invocation must be made by \
                 all computing threads in the same order"
            ),
            PardisError::MembershipChange {
                epoch,
                dead,
                survivors,
            } => write!(
                f,
                "membership change: epoch {epoch}, dead ranks {dead:?}, survivors {survivors:?}"
            ),
            PardisError::CircuitOpen { failures } => write!(
                f,
                "circuit breaker open after {failures} consecutive failures; rebind required"
            ),
            PardisError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for PardisError {}

impl From<pardis_net::NetError> for PardisError {
    fn from(e: pardis_net::NetError) -> Self {
        use pardis_net::NetError as NE;
        match e {
            // Transport-level losses of connectivity are COMM_FAILUREs.
            NE::ConnectionReset { .. }
            | NE::PortClosed { .. }
            | NE::NoRoute { .. }
            | NE::UnknownPort { .. }
            | NE::UnknownHost(_) => PardisError::CommFailure(e.to_string()),
            NE::Timeout { .. } => PardisError::Timeout,
            NE::BadMessage(_) => PardisError::Net(e.to_string()),
        }
    }
}

impl From<pardis_cdr::CdrError> for PardisError {
    fn from(e: pardis_cdr::CdrError) -> Self {
        PardisError::Cdr(e.to_string())
    }
}

impl From<pardis_rts::RtsError> for PardisError {
    fn from(e: pardis_rts::RtsError) -> Self {
        match e {
            pardis_rts::RtsError::CollectiveMismatch {
                thread,
                mine,
                theirs,
            } => PardisError::CollectiveMismatch {
                thread,
                mine,
                theirs,
            },
            pardis_rts::RtsError::Internal(m) => PardisError::Internal(m),
            other => PardisError::Rts(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: PardisError = pardis_cdr::CdrError::BadUtf8.into();
        assert!(e.to_string().contains("UTF-8"));
        let e: PardisError = pardis_rts::RtsError::BadRank { rank: 3, size: 2 }.into();
        assert!(e.to_string().contains("rank 3"));
        let e: PardisError = pardis_net::NetError::UnknownHost(pardis_net::HostId(9)).into();
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn net_errors_map_to_corba_categories() {
        let e: PardisError = pardis_net::NetError::ConnectionReset {
            from: pardis_net::HostId(1),
            to: pardis_net::HostId(2),
        }
        .into();
        assert!(matches!(e, PardisError::CommFailure(_)));
        let e: PardisError = pardis_net::NetError::Timeout {
            host: pardis_net::HostId(1),
            port: 4,
        }
        .into();
        assert!(matches!(e, PardisError::Timeout));
        let e: PardisError = pardis_net::NetError::PortClosed {
            host: pardis_net::HostId(1),
            port: 4,
        }
        .into();
        assert!(matches!(e, PardisError::CommFailure(_)));
    }

    #[test]
    fn membership_change_is_not_retryable() {
        let e = PardisError::MembershipChange {
            epoch: 2,
            dead: vec![1],
            survivors: vec![0, 2, 3],
        };
        assert!(!e.is_retryable(), "retry cannot resurrect a dead rank");
        assert!(e.to_string().contains("epoch 2"));
        let e = PardisError::CircuitOpen { failures: 5 };
        assert!(!e.is_retryable(), "the breaker exists to stop retries");
    }

    #[test]
    fn retryability_classification() {
        assert!(PardisError::Timeout.is_retryable());
        assert!(PardisError::CommFailure("reset".into()).is_retryable());
        assert!(PardisError::Cdr("truncated".into()).is_retryable());
        assert!(PardisError::SystemException("TIMEOUT: reply".into()).is_retryable());
        assert!(!PardisError::UserException("overflow".into()).is_retryable());
        assert!(!PardisError::BadOperation("nope".into()).is_retryable());
        assert!(!PardisError::SystemException("division by zero".into()).is_retryable());
    }

    #[test]
    fn not_found_formats_host() {
        let e = PardisError::ObjectNotFound {
            name: "example".into(),
            host: Some("onyx".into()),
        };
        assert!(e.to_string().contains("onyx"));
    }
}
