//! Happens-before race detection for the SPMD data plane (the
//! `analyze` feature; findings PA201 and PA202).
//!
//! The paper's argument-transfer methods move a distributed sequence's
//! local parts while the computing threads keep running: a future
//! returned by `invoke_nb` leaves the argument buffers logically
//! in-flight until `wait`, and an exposed sequence accepts one-sided
//! reads and writes from any rank between fences. Neither the type
//! system nor the RTS orders those accesses — this module does, using
//! the per-rank vector clocks of [`pardis_rts::clock`]:
//!
//! * **PA201 — data race on a dsequence buffer.** Each transfer engine
//!   opens an epoch-scoped *access interval* per distributed argument
//!   when the send phase starts ([`open_transfer`]) and closes it when
//!   the invocation completes ([`close_transfer`]). An application
//!   access to the same local buffer
//!   (`local_data`/`local_data_mut`/`redistribute`) while a conflicting
//!   interval is open has no happens-before edge from the transfer's
//!   completion — a race, reported with both access kinds and both
//!   clock stamps.
//!
//! * **PA202 — RMA window accessed outside a synchronizing exposure
//!   epoch.** Every one-sided access through an `ExposedSeq` is logged
//!   against the window's collective identity. At each fence the log
//!   is drained and overlapping accesses from different origins with
//!   concurrent vector clocks (neither ≤ the other — i.e. no fence
//!   separated them) are reported when at least one is a write.
//!
//! Reports accumulate **without deduplication** in a process-global
//! log drained by [`take_reports`]; because clocks, buffer identities,
//! and the fault plan are all deterministic, two replays of the same
//! seed drain bit-for-bit identical reports. Each report is also
//! mirrored (deduplicated) into the [`crate::analyze`] finding sink for
//! the `pardis-analyze` CLI.

use crate::request::ArgDir;
use pardis_rts::clock::{ClockWitness, VClock};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// How a distributed-sequence local buffer is touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// Application read (`local_data`).
    Read,
    /// Application write (`local_data_mut`, `redistribute`).
    Write,
    /// A transfer engine reading the buffer (an `in` argument in
    /// flight).
    TransferRead,
    /// A transfer engine writing the buffer (an `out`/`inout` argument
    /// in flight).
    TransferWrite,
}

impl AccessKind {
    /// Whether two accesses to the same buffer conflict (at least one
    /// writes).
    pub fn conflicts(self, other: AccessKind) -> bool {
        use AccessKind::*;
        !matches!((self, other), (Read | TransferRead, Read | TransferRead))
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::TransferRead => "transfer-read",
            AccessKind::TransferWrite => "transfer-write",
        }
    }
}

/// One detected race, with enough context to pin both sides.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RaceReport {
    /// `PA201` (dsequence buffer) or `PA202` (RMA window).
    pub code: &'static str,
    /// `machine/rank` label of the thread the race was detected on.
    pub actor: String,
    /// Rank of the first access's origin thread.
    pub rank: usize,
    /// Buffer identity: a per-thread dsequence buffer id (PA201) or the
    /// window's collective id (PA202).
    pub buffer: u64,
    /// Kind of the earlier access (the open interval / first log
    /// entry).
    pub first: AccessKind,
    /// Kind of the later, conflicting access.
    pub second: AccessKind,
    /// Vector clock stamped on the earlier access.
    pub first_clock: VClock,
    /// Vector clock stamped on the later access.
    pub second_clock: VClock,
    /// Human-readable account of the pair.
    pub detail: String,
}

struct Actor {
    machine: String,
    rank: usize,
}

struct OpenInterval {
    buf: u64,
    req_id: u64,
    kind: AccessKind,
    clock: VClock,
    epoch: u64,
    op: String,
    mode: &'static str,
}

thread_local! {
    static ACTOR: RefCell<Option<Actor>> = const { RefCell::new(None) };
    static NEXT_BUF: Cell<u64> = const { Cell::new(1) };
    static INTERVALS: RefCell<Vec<OpenInterval>> = const { RefCell::new(Vec::new()) };
    static WIN_SEQ: Cell<u64> = const { Cell::new(0) };
}

/// Bind the calling thread to its `machine/rank` identity (done by
/// `OrbCtx::init`); reports from this thread carry the label, which is
/// what lets concurrently running scenarios drain their own findings.
pub fn set_actor(machine: &str, rank: usize) {
    ACTOR.with(|a| {
        *a.borrow_mut() = Some(Actor {
            machine: machine.to_string(),
            rank,
        });
    });
}

fn actor_parts() -> (String, usize) {
    ACTOR.with(|a| {
        a.borrow()
            .as_ref()
            .map(|s| (format!("{}/{}", s.machine, s.rank), s.rank))
            .unwrap_or_else(|| ("<unbound>/0".to_string(), 0))
    })
}

/// A fresh buffer identity for the calling thread. Ids are per-thread
/// creation counters — never addresses — so replays of a deterministic
/// scenario assign identical ids.
pub fn new_buf_id() -> u64 {
    NEXT_BUF.with(|n| {
        let id = n.get();
        n.set(id + 1);
        id
    })
}

fn log() -> &'static Mutex<Vec<RaceReport>> {
    static LOG: OnceLock<Mutex<Vec<RaceReport>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Record a report: appended verbatim to the replayable log and
/// mirrored (deduplicated) into the [`crate::analyze`] sink.
pub fn report(r: RaceReport) {
    crate::analyze::record(r.code, format!("[{}] {}", r.actor, r.detail));
    log().lock().unwrap_or_else(|p| p.into_inner()).push(r);
}

/// Drain every report whose actor label starts with `actor_prefix`,
/// sorted. Reports from other actors stay in the log, so concurrently
/// running tests do not steal each other's findings.
pub fn take_reports(actor_prefix: &str) -> Vec<RaceReport> {
    let mut l = log().lock().unwrap_or_else(|p| p.into_inner());
    let mut out = Vec::new();
    l.retain(|r| {
        if r.actor.starts_with(actor_prefix) {
            out.push(r.clone());
            false
        } else {
            true
        }
    });
    out.sort();
    out
}

/// Clear all race state (between analyzer scenarios).
pub fn reset() {
    log().lock().unwrap_or_else(|p| p.into_inner()).clear();
    win_log().lock().unwrap_or_else(|p| p.into_inner()).clear();
}

/// Open a transfer interval on `buf` for one distributed argument of
/// request `req_id`: the engine reads `in` arguments and writes
/// `out`/`inout` arguments until [`close_transfer`]. `buf` 0 means the
/// argument was not built from a tracked sequence and is skipped.
pub(crate) fn open_transfer(
    buf: u64,
    dir: ArgDir,
    op: &str,
    req_id: u64,
    mode: &'static str,
    epoch: u64,
) {
    if buf == 0 {
        return;
    }
    let kind = if dir.returns() {
        AccessKind::TransferWrite
    } else {
        AccessKind::TransferRead
    };
    ClockWitness::tick();
    let clock = ClockWitness::snapshot();
    INTERVALS.with(|iv| {
        iv.borrow_mut().push(OpenInterval {
            buf,
            req_id,
            kind,
            clock,
            epoch,
            op: op.to_string(),
            mode,
        });
    });
}

/// Close every interval request `req_id` opened (invocation complete:
/// from here on, application accesses are ordered after the transfer).
pub(crate) fn close_transfer(req_id: u64) {
    INTERVALS.with(|iv| iv.borrow_mut().retain(|i| i.req_id != req_id));
}

/// Record an application access to dsequence buffer `buf`; any open
/// conflicting interval on the same buffer is a PA201 race.
pub(crate) fn on_access(buf: u64, kind: AccessKind, what: &str) {
    if buf == 0 {
        return;
    }
    ClockWitness::tick();
    let now = ClockWitness::snapshot();
    let (actor, rank) = actor_parts();
    INTERVALS.with(|iv| {
        for i in iv.borrow().iter() {
            if i.buf == buf && i.kind.conflicts(kind) {
                report(RaceReport {
                    code: "PA201",
                    actor: actor.clone(),
                    rank,
                    buffer: buf,
                    first: i.kind,
                    second: kind,
                    first_clock: i.clock.clone(),
                    second_clock: now.clone(),
                    detail: format!(
                        "{what} ({}) on dsequence buffer {buf} while a {} {} interval of \
                         op `{}` (request {:#x}, epoch {}) is open; no happens-before \
                         edge from the transfer's completion orders them",
                        kind.name(),
                        i.mode,
                        i.kind.name(),
                        i.op,
                        i.req_id,
                        i.epoch
                    ),
                });
            }
        }
    });
}

/// One logged one-sided access to an exposed window.
#[derive(Debug, Clone)]
struct WinAccess {
    origin: usize,
    seq: u64,
    target: usize,
    offset: usize,
    len: usize,
    write: bool,
    clock: VClock,
    actor: String,
}

fn win_log() -> &'static Mutex<HashMap<u64, Vec<WinAccess>>> {
    static LOG: OnceLock<Mutex<HashMap<u64, Vec<WinAccess>>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Log a one-sided access to window `win` (`target`'s buffer,
/// `[offset, offset+len)`).
pub(crate) fn on_window_access(win: u64, target: usize, offset: usize, len: usize, write: bool) {
    ClockWitness::tick();
    let clock = ClockWitness::snapshot();
    let (actor, origin) = actor_parts();
    let seq = WIN_SEQ.with(|s| {
        let v = s.get();
        s.set(v + 1);
        v
    });
    win_log()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .entry(win)
        .or_default()
        .push(WinAccess {
            origin,
            seq,
            target,
            offset,
            len,
            write,
            clock,
            actor,
        });
}

/// Drain window `win`'s access log at an exposure-epoch boundary and
/// report every conflicting pair left unordered by the clocks (PA202).
/// Called by one rank per fence, after a barrier has made all pre-fence
/// accesses visible.
pub(crate) fn window_fence(win: u64) {
    let mut accesses = win_log()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&win)
        .unwrap_or_default();
    // Per-origin order is deterministic; sorting makes the global pair
    // enumeration independent of thread interleaving.
    accesses.sort_by_key(|a| (a.origin, a.seq));
    for i in 0..accesses.len() {
        for j in i + 1..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if a.origin == b.origin || a.target != b.target {
                continue;
            }
            if !(a.write || b.write) {
                continue;
            }
            if a.offset + a.len <= b.offset || b.offset + b.len <= a.offset {
                continue;
            }
            // A fence between them would have ordered the clocks.
            if a.clock.leq(&b.clock) || b.clock.leq(&a.clock) {
                continue;
            }
            let kind = |w: bool| {
                if w {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                }
            };
            report(RaceReport {
                code: "PA202",
                actor: a.actor.clone(),
                rank: a.origin,
                buffer: win,
                first: kind(a.write),
                second: kind(b.write),
                first_clock: a.clock.clone(),
                second_clock: b.clock.clone(),
                detail: format!(
                    "one-sided {} of [{}..{}) and {} of [{}..{}) on rank {}'s part of \
                     window {win} by ranks {} and {} fall outside any synchronizing \
                     exposure epoch (no fence orders them)",
                    kind(a.write).name(),
                    a.offset,
                    a.offset + a.len,
                    kind(b.write).name(),
                    b.offset,
                    b.offset + b.len,
                    a.target,
                    a.origin,
                    b.origin
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_matrix() {
        use AccessKind::*;
        assert!(!Read.conflicts(Read));
        assert!(!Read.conflicts(TransferRead));
        assert!(!TransferRead.conflicts(Read));
        assert!(Read.conflicts(Write));
        assert!(Write.conflicts(Write));
        assert!(TransferRead.conflicts(Write));
        assert!(TransferWrite.conflicts(Read));
        assert!(TransferWrite.conflicts(Write));
    }

    #[test]
    fn open_interval_flags_conflicting_access() {
        std::thread::spawn(|| {
            set_actor("race-unit-a", 0);
            let buf = new_buf_id();
            open_transfer(buf, ArgDir::In, "step", 0x10, "multi-port", 0);
            on_access(buf, AccessKind::Read, "local_data");
            assert!(
                take_reports("race-unit-a/").is_empty(),
                "read vs transfer-read"
            );
            on_access(buf, AccessKind::Write, "local_data_mut");
            let r = take_reports("race-unit-a/");
            assert_eq!(r.len(), 1);
            assert_eq!(r[0].code, "PA201");
            assert_eq!(r[0].first, AccessKind::TransferRead);
            assert_eq!(r[0].second, AccessKind::Write);
            assert_eq!(r[0].buffer, buf);
            close_transfer(0x10);
            on_access(buf, AccessKind::Write, "local_data_mut");
            assert!(take_reports("race-unit-a/").is_empty(), "closed interval");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn untracked_buffers_are_skipped() {
        std::thread::spawn(|| {
            set_actor("race-unit-b", 0);
            open_transfer(0, ArgDir::InOut, "step", 0x11, "centralized", 0);
            on_access(0, AccessKind::Write, "local_data_mut");
            assert!(take_reports("race-unit-b/").is_empty());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn window_fence_reports_unordered_overlap_only() {
        // Two origins with concurrent clocks overlapping a write: race.
        // A third access ordered by clock (≤ both): clean.
        let win = 0xFEED_0001;
        let h1 = std::thread::spawn(move || {
            set_actor("race-unit-c", 1);
            pardis_rts::clock::ClockWitness::init(1, 3);
            pardis_rts::clock::ClockWitness::tick();
            on_window_access(win, 0, 0, 4, true);
        });
        let h2 = std::thread::spawn(move || {
            set_actor("race-unit-c", 2);
            pardis_rts::clock::ClockWitness::init(2, 3);
            pardis_rts::clock::ClockWitness::tick();
            on_window_access(win, 0, 2, 4, false);
            // Disjoint range: no conflict with anyone.
            on_window_access(win, 0, 100, 4, true);
        });
        h1.join().unwrap();
        h2.join().unwrap();
        window_fence(win);
        let r = take_reports("race-unit-c/");
        assert_eq!(r.len(), 1, "{r:?}");
        assert_eq!(r[0].code, "PA202");
        assert_eq!(r[0].first, AccessKind::Write);
        assert_eq!(r[0].second, AccessKind::Read);
        assert_eq!(r[0].buffer, win);
    }

    #[test]
    fn take_reports_filters_and_sorts() {
        report(RaceReport {
            code: "PA201",
            actor: "race-unit-d/1".into(),
            rank: 1,
            buffer: 9,
            first: AccessKind::TransferRead,
            second: AccessKind::Write,
            first_clock: VClock::default(),
            second_clock: VClock::default(),
            detail: "b".into(),
        });
        report(RaceReport {
            code: "PA201",
            actor: "race-unit-d/0".into(),
            rank: 0,
            buffer: 3,
            first: AccessKind::TransferRead,
            second: AccessKind::Write,
            first_clock: VClock::default(),
            second_clock: VClock::default(),
            detail: "a".into(),
        });
        report(RaceReport {
            code: "PA201",
            actor: "other-test/0".into(),
            rank: 0,
            buffer: 1,
            first: AccessKind::TransferRead,
            second: AccessKind::Write,
            first_clock: VClock::default(),
            second_clock: VClock::default(),
            detail: "keep".into(),
        });
        let mine = take_reports("race-unit-d/");
        assert_eq!(mine.len(), 2);
        assert!(mine[0].actor <= mine[1].actor, "sorted");
        let other = take_reports("other-test/");
        assert_eq!(other.len(), 1);
    }
}
