//! Request/reply body formats and argument descriptions.
//!
//! A PARDIS invocation carries two kinds of arguments:
//!
//! * **non-distributed** arguments ("it is assumed that all threads will
//!   invoke the request with identical values of non-distributed
//!   arguments", §2.1) — marshaled once into an opaque body,
//! * **distributed** arguments — described by a [`DistArgMeta`] and
//!   carried either inline (centralized method) or as thread-to-thread
//!   DataTransfer fragments (multi-port method).
//!
//! The body formats here are shared by both transfer engines; which one
//! populated the inline data section is recorded per argument.

use crate::dist::DistTempl;
use crate::error::{PardisError, PardisResult};
use bytes::Bytes;
use pardis_cdr::{CdrReader, CdrWriter};
use std::time::Duration;

/// IDL parameter passing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgDir {
    /// `in`: client → server only.
    In,
    /// `out`: server → client only.
    Out,
    /// `inout`: both directions.
    InOut,
}

impl ArgDir {
    /// Data travels client → server.
    pub fn sends(self) -> bool {
        matches!(self, ArgDir::In | ArgDir::InOut)
    }
    /// Data travels server → client.
    pub fn returns(self) -> bool {
        matches!(self, ArgDir::Out | ArgDir::InOut)
    }

    fn to_wire(self) -> u8 {
        match self {
            ArgDir::In => 0,
            ArgDir::Out => 1,
            ArgDir::InOut => 2,
        }
    }

    fn from_wire(b: u8) -> PardisResult<ArgDir> {
        match b {
            0 => Ok(ArgDir::In),
            1 => Ok(ArgDir::Out),
            2 => Ok(ArgDir::InOut),
            other => Err(PardisError::Cdr(format!("bad ArgDir {other}"))),
        }
    }
}

/// Wire metadata for one distributed argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistArgMeta {
    /// Passing mode.
    pub dir: ArgDir,
    /// Bytes per element.
    pub elem_size: usize,
    /// Global element count.
    pub total_len: usize,
    /// Client-side per-thread element counts (reply routing).
    pub client_counts: Vec<usize>,
    /// Server-side per-thread element counts (request routing).
    pub server_counts: Vec<usize>,
}

impl DistArgMeta {
    /// Client-side template.
    pub fn client_templ(&self) -> DistTempl {
        DistTempl::from_counts(self.client_counts.clone())
    }
    /// Server-side template.
    pub fn server_templ(&self) -> DistTempl {
        DistTempl::from_counts(self.server_counts.clone())
    }

    fn encode(&self, w: &mut CdrWriter) {
        w.put_u8(self.dir.to_wire());
        w.put_u32(self.elem_size as u32);
        w.put_u64(self.total_len as u64);
        encode_counts(w, &self.client_counts);
        encode_counts(w, &self.server_counts);
    }

    fn decode(r: &mut CdrReader<'_>) -> PardisResult<DistArgMeta> {
        let dir = ArgDir::from_wire(r.get_u8()?)?;
        let elem_size = r.get_u32()? as usize;
        let total_len = r.get_u64()? as usize;
        let client_counts = decode_counts(r)?;
        let server_counts = decode_counts(r)?;
        let meta = DistArgMeta {
            dir,
            elem_size,
            total_len,
            client_counts,
            server_counts,
        };
        meta.validate()?;
        Ok(meta)
    }

    /// Consistency checks applied on decode: both templates must cover
    /// exactly `total_len` elements.
    pub fn validate(&self) -> PardisResult<()> {
        let c: usize = self.client_counts.iter().sum();
        let s: usize = self.server_counts.iter().sum();
        if c != self.total_len || s != self.total_len {
            return Err(PardisError::BadDistArg(format!(
                "templates cover {c}/{s} elements, sequence has {}",
                self.total_len
            )));
        }
        if self.elem_size == 0 {
            return Err(PardisError::BadDistArg("zero element size".into()));
        }
        Ok(())
    }
}

fn encode_counts(w: &mut CdrWriter, counts: &[usize]) {
    w.put_u32(counts.len() as u32);
    for &c in counts {
        w.put_u64(c as u64);
    }
}

fn decode_counts(r: &mut CdrReader<'_>) -> PardisResult<Vec<usize>> {
    let n = r.get_u32()? as usize;
    if n > r.remaining() {
        return Err(PardisError::Cdr("counts overflow".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_u64()? as usize);
    }
    Ok(out)
}

/// Decoded request body: the opaque non-distributed section plus, per
/// distributed argument, its metadata and (centralized mode only) its
/// full inline data.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestBody {
    /// Marshaled non-distributed `in`/`inout` arguments.
    pub nondist: Bytes,
    /// One entry per distributed argument, in signature order.
    pub dist: Vec<(DistArgMeta, Option<Bytes>)>,
}

impl RequestBody {
    /// Encode into a CDR stream (body of a Request message).
    /// Infallible: every CDR write into memory succeeds.
    pub fn encode(&self, w: &mut CdrWriter) {
        w.put_u32(self.dist.len() as u32);
        w.put_u32(self.nondist.len() as u32);
        w.align(8);
        w.put_bytes(&self.nondist);
        for (meta, data) in &self.dist {
            meta.encode(w);
            match data {
                None => w.put_bool(false),
                Some(d) => {
                    w.put_bool(true);
                    w.put_u64(d.len() as u64);
                    w.align(8);
                    w.put_bytes(d);
                }
            }
        }
    }

    /// Encode to bytes in the given byte order.
    pub fn to_bytes(&self, endian: pardis_cdr::Endian) -> Bytes {
        let cap = 64
            + self.nondist.len()
            + self
                .dist
                .iter()
                .map(|(_, d)| d.as_ref().map_or(64, |b| b.len() + 64))
                .sum::<usize>();
        let mut w = CdrWriter::with_capacity(endian, cap);
        self.encode(&mut w);
        let out = w.into_shared();
        // Client-side marshal phase of the active invocation; no-op on
        // threads (e.g. the server's) with no invocation in flight.
        // Marshal spans carry epoch 0: the body format is epoch-blind.
        #[cfg(feature = "obs")]
        crate::obs::record_phase(
            pardis_obs::SpanKind::Marshal,
            "request-body",
            0,
            out.len() as u64,
            0,
        );
        out
    }

    /// Decode from the body bytes of a Request message.
    pub fn decode(buf: &Bytes, endian: pardis_cdr::Endian) -> PardisResult<RequestBody> {
        let mut r = CdrReader::new(buf, endian);
        let ndist = r.get_u32()? as usize;
        if ndist > r.remaining() {
            return Err(PardisError::Cdr("dist count overflow".into()));
        }
        let nondist_len = r.get_u32()? as usize;
        r.align(8)?;
        let start = r.position();
        if nondist_len > r.remaining() {
            return Err(PardisError::Cdr("nondist body truncated".into()));
        }
        let nondist = buf.slice(start..start + nondist_len);
        let _ = r.take(nondist_len)?;
        let mut dist = Vec::with_capacity(ndist);
        for _ in 0..ndist {
            let meta = DistArgMeta::decode(&mut r)?;
            let data = if r.get_bool()? {
                let len = r.get_u64()? as usize;
                r.align(8)?;
                let s = r.position();
                if len > r.remaining() {
                    return Err(PardisError::Cdr("dist data truncated".into()));
                }
                let d = buf.slice(s..s + len);
                let _ = r.take(len)?;
                Some(d)
            } else {
                None
            };
            dist.push((meta, data));
        }
        Ok(RequestBody { nondist, dist })
    }
}

/// Decoded reply body.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyBody {
    /// Marshaled non-distributed `out`/`inout`/return values.
    pub nondist: Bytes,
    /// Per returning distributed argument: its index in the request's
    /// dist-arg list, the global length, and (centralized mode) the full
    /// inline data.
    pub dist_out: Vec<(u32, usize, Option<Bytes>)>,
}

impl ReplyBody {
    /// Encode into a CDR stream (body of a Reply message).
    /// Infallible: every CDR write into memory succeeds.
    pub fn encode(&self, w: &mut CdrWriter) {
        w.put_u32(self.dist_out.len() as u32);
        w.put_u32(self.nondist.len() as u32);
        w.align(8);
        w.put_bytes(&self.nondist);
        for (idx, total_len, data) in &self.dist_out {
            w.put_u32(*idx);
            w.put_u64(*total_len as u64);
            match data {
                None => w.put_bool(false),
                Some(d) => {
                    w.put_bool(true);
                    w.put_u64(d.len() as u64);
                    w.align(8);
                    w.put_bytes(d);
                }
            }
        }
    }

    /// Encode to bytes in the given byte order.
    pub fn to_bytes(&self, endian: pardis_cdr::Endian) -> Bytes {
        let cap = 64
            + self.nondist.len()
            + self
                .dist_out
                .iter()
                .map(|(_, _, d)| d.as_ref().map_or(32, |b| b.len() + 32))
                .sum::<usize>();
        let mut w = CdrWriter::with_capacity(endian, cap);
        self.encode(&mut w);
        w.into_shared()
    }

    /// Decode from the body bytes of a Reply message.
    pub fn decode(buf: &Bytes, endian: pardis_cdr::Endian) -> PardisResult<ReplyBody> {
        let mut r = CdrReader::new(buf, endian);
        let nout = r.get_u32()? as usize;
        if nout > r.remaining() {
            return Err(PardisError::Cdr("dist_out count overflow".into()));
        }
        let nondist_len = r.get_u32()? as usize;
        r.align(8)?;
        let start = r.position();
        if nondist_len > r.remaining() {
            return Err(PardisError::Cdr("nondist body truncated".into()));
        }
        let nondist = buf.slice(start..start + nondist_len);
        let _ = r.take(nondist_len)?;
        let mut dist_out = Vec::with_capacity(nout);
        for _ in 0..nout {
            let idx = r.get_u32()?;
            let total_len = r.get_u64()? as usize;
            let data = if r.get_bool()? {
                let len = r.get_u64()? as usize;
                r.align(8)?;
                let s = r.position();
                if len > r.remaining() {
                    return Err(PardisError::Cdr("dist_out data truncated".into()));
                }
                let d = buf.slice(s..s + len);
                let _ = r.take(len)?;
                Some(d)
            } else {
                None
            };
            dist_out.push((idx, total_len, data));
        }
        Ok(ReplyBody { nondist, dist_out })
    }
}

/// One distributed argument as supplied by a client computing thread.
#[derive(Debug, Clone)]
pub struct DistArgSend {
    /// Passing mode.
    pub dir: ArgDir,
    /// Bytes per element.
    pub elem_size: usize,
    /// This thread's local part in native byte order; empty for `out`
    /// arguments.
    pub local: Bytes,
    /// Client-side layout.
    pub client_templ: DistTempl,
    /// Server-side layout (materialized from the object reference's
    /// registered template, defaulting to blockwise).
    pub server_templ: DistTempl,
    /// Race-analyzer identity of the client-side source buffer; 0 when
    /// the argument was not built from a tracked sequence.
    #[cfg(feature = "analyze")]
    pub buf_id: u64,
}

impl DistArgSend {
    /// Wire metadata for this argument.
    pub fn meta(&self) -> DistArgMeta {
        DistArgMeta {
            dir: self.dir,
            elem_size: self.elem_size,
            total_len: self.client_templ.len(),
            client_counts: self.client_templ.counts().to_vec(),
            server_counts: self.server_templ.counts().to_vec(),
        }
    }
}

/// A fully described outgoing invocation (one per computing thread; the
/// non-distributed body must be identical across threads).
#[derive(Debug, Clone)]
pub struct RequestSpec {
    /// Operation name.
    pub operation: String,
    /// Marshaled non-distributed `in`/`inout` arguments.
    pub nondist_body: Bytes,
    /// Distributed arguments in signature order.
    pub dist_args: Vec<DistArgSend>,
    /// False for `oneway` operations.
    pub response_expected: bool,
    /// Relative deadline for the whole invocation. `None` (the default)
    /// blocks indefinitely, as classic CORBA does; `Some` turns a lost
    /// reply into [`crate::PardisError::Timeout`] instead of a hang.
    pub deadline: Option<Duration>,
    /// Whether re-executing the operation is safe (read-only and
    /// `oneway` operations). Only idempotent invocations are eligible
    /// for automatic retry under a [`crate::client::RetryPolicy`].
    pub idempotent: bool,
}

impl RequestSpec {
    /// A request with no arguments.
    pub fn simple(operation: &str) -> RequestSpec {
        RequestSpec {
            operation: operation.to_string(),
            nondist_body: Bytes::new(),
            dist_args: Vec::new(),
            response_expected: true,
            deadline: None,
            idempotent: false,
        }
    }

    /// Set a relative deadline for the invocation.
    pub fn with_deadline(mut self, deadline: Duration) -> RequestSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Mark the operation safe to re-execute (eligible for retry).
    pub fn idempotent(mut self) -> RequestSpec {
        self.idempotent = true;
        self
    }
}

/// Phase timings of one invocation, measured on the calling thread.
/// Mirrors the columns of the paper's Tables 1 and 2.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InvokeTiming {
    /// Wall-clock of the whole invocation (T in the tables).
    pub total: Duration,
    /// Marshaling time (pack).
    pub pack: Duration,
    /// Network send time (from first send to last send completion).
    pub send: Duration,
    /// Gathering distributed arguments at the communicating thread
    /// (centralized method only).
    pub gather: Duration,
    /// Scattering received arguments to computing threads (centralized
    /// method only).
    pub scatter: Duration,
    /// Receive + unmarshal time.
    pub recv_unpack: Duration,
    /// Time spent waiting in the post-invocation barrier.
    pub barrier: Duration,
}

impl InvokeTiming {
    /// Merge per-phase maxima (used to report "maximum over all threads
    /// involved" as Table 2 does).
    pub fn max_with(&mut self, other: &InvokeTiming) {
        self.total = self.total.max(other.total);
        self.pack = self.pack.max(other.pack);
        self.send = self.send.max(other.send);
        self.gather = self.gather.max(other.gather);
        self.scatter = self.scatter.max(other.scatter);
        self.recv_unpack = self.recv_unpack.max(other.recv_unpack);
        self.barrier = self.barrier.max(other.barrier);
    }
}

/// The client-visible result of an invocation.
#[derive(Debug, Clone)]
pub struct ReplyResult {
    /// Marshaled non-distributed results.
    pub nondist_body: Bytes,
    /// For each request dist-arg index that returns data: this thread's
    /// new local part (native order), keyed by position in the request's
    /// dist-arg list.
    pub dist_out: Vec<(u32, Vec<u8>)>,
    /// Phase timings on this thread.
    pub timing: InvokeTiming,
}

impl ReplyResult {
    /// Local bytes returned for request dist-arg `idx`, if any.
    pub fn dist_local(&self, idx: u32) -> Option<&[u8]> {
        self.dist_out
            .iter()
            .find(|(i, _)| *i == idx)
            .map(|(_, v)| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardis_cdr::Endian;

    fn meta(dir: ArgDir) -> DistArgMeta {
        DistArgMeta {
            dir,
            elem_size: 8,
            total_len: 10,
            client_counts: vec![5, 5],
            server_counts: vec![4, 3, 3],
        }
    }

    #[test]
    fn request_body_roundtrip_inline() {
        let body = RequestBody {
            nondist: Bytes::from_static(b"nd-args"),
            dist: vec![
                (meta(ArgDir::InOut), Some(Bytes::from(vec![7u8; 80]))),
                (meta(ArgDir::In), None),
            ],
        };
        for endian in [Endian::Big, Endian::Little] {
            let bytes = body.to_bytes(endian);
            let back = RequestBody::decode(&bytes, endian).unwrap();
            assert_eq!(back, body);
        }
    }

    #[test]
    fn reply_body_roundtrip() {
        let body = ReplyBody {
            nondist: Bytes::from_static(b"result"),
            dist_out: vec![(0, 10, Some(Bytes::from(vec![1u8; 80]))), (2, 4, None)],
        };
        let bytes = body.to_bytes(Endian::native());
        assert_eq!(ReplyBody::decode(&bytes, Endian::native()).unwrap(), body);
    }

    #[test]
    fn empty_bodies_roundtrip() {
        let body = RequestBody {
            nondist: Bytes::new(),
            dist: vec![],
        };
        let bytes = body.to_bytes(Endian::native());
        assert_eq!(RequestBody::decode(&bytes, Endian::native()).unwrap(), body);

        let body = ReplyBody {
            nondist: Bytes::new(),
            dist_out: vec![],
        };
        let bytes = body.to_bytes(Endian::native());
        assert_eq!(ReplyBody::decode(&bytes, Endian::native()).unwrap(), body);
    }

    #[test]
    fn meta_validation_catches_bad_totals() {
        let mut m = meta(ArgDir::In);
        assert!(m.validate().is_ok());
        m.server_counts = vec![1, 1, 1];
        assert!(m.validate().is_err());
        let mut m = meta(ArgDir::In);
        m.elem_size = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn decode_rejects_bad_meta() {
        let body = RequestBody {
            nondist: Bytes::new(),
            dist: vec![(
                DistArgMeta {
                    dir: ArgDir::In,
                    elem_size: 8,
                    total_len: 10,
                    client_counts: vec![1], // wrong total
                    server_counts: vec![10],
                },
                None,
            )],
        };
        let bytes = body.to_bytes(Endian::native());
        assert!(RequestBody::decode(&bytes, Endian::native()).is_err());
    }

    #[test]
    fn argdir_properties() {
        assert!(ArgDir::In.sends() && !ArgDir::In.returns());
        assert!(!ArgDir::Out.sends() && ArgDir::Out.returns());
        assert!(ArgDir::InOut.sends() && ArgDir::InOut.returns());
    }

    #[test]
    fn timing_max_merge() {
        let mut a = InvokeTiming {
            total: Duration::from_millis(5),
            pack: Duration::from_millis(1),
            ..Default::default()
        };
        let b = InvokeTiming {
            total: Duration::from_millis(3),
            pack: Duration::from_millis(2),
            send: Duration::from_millis(9),
            ..Default::default()
        };
        a.max_with(&b);
        assert_eq!(a.total, Duration::from_millis(5));
        assert_eq!(a.pack, Duration::from_millis(2));
        assert_eq!(a.send, Duration::from_millis(9));
    }

    #[test]
    fn truncated_request_rejected() {
        let body = RequestBody {
            nondist: Bytes::from_static(b"abc"),
            dist: vec![(meta(ArgDir::In), Some(Bytes::from(vec![0u8; 64])))],
        };
        let bytes = body.to_bytes(Endian::native());
        let cut = bytes.slice(0..bytes.len() - 32);
        assert!(RequestBody::decode(&cut, Endian::native()).is_err());
    }

    #[test]
    fn dist_arg_send_meta() {
        let a = DistArgSend {
            dir: ArgDir::In,
            elem_size: 8,
            local: Bytes::from(vec![0u8; 40]),
            client_templ: DistTempl::block(10, 2),
            server_templ: DistTempl::block(10, 3),
            #[cfg(feature = "analyze")]
            buf_id: 0,
        };
        let m = a.meta();
        assert_eq!(m.total_len, 10);
        assert_eq!(m.client_counts, vec![5, 5]);
        assert_eq!(m.server_counts, vec![4, 3, 3]);
        assert!(m.validate().is_ok());
    }
}
