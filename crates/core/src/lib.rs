//! # pardis-core — the PARDIS ORB
//!
//! A Rust implementation of **PARDIS** (Keahey & Gannon, *PARDIS: A
//! Parallel Approach to CORBA*, HPDC 1997): CORBA-style middleware whose
//! object model is extended with **SPMD objects** — objects backed by a
//! set of computing threads visible to the request broker — and
//! **distributed sequences**, argument structures whose elements live in
//! the address spaces of those threads.
//!
//! ## The pieces
//!
//! * [`orb::OrbCtx`] — one computing thread's handle on the ORB
//!   (initialization is collective across a machine's threads),
//! * [`server::Servant`] + serve loops — the server-side object model;
//!   a request is satisfied only when delivered to *all* computing
//!   threads,
//! * [`client::Proxy`] — `_bind` / `_spmd_bind` and blocking or
//!   future-returning invocations,
//! * [`dseq::DSequence`] — the `dsequence` argument type with blockwise
//!   and proportional distribution templates ([`dist::DistTempl`],
//!   [`dist::Proportions`]), length semantics, redistribution, and
//!   location-transparent element access,
//! * [`transfer::centralized`] / [`transfer::multiport`] — the two
//!   distributed-argument transfer methods the paper evaluates,
//! * [`naming::NameService`] — the naming domain behind binding,
//! * [`world::World`] — a harness that stands up client and server
//!   machines around a shared (optionally rate-limited) link.
//!
//! ## A complete round trip
//!
//! ```
//! use pardis_core::prelude::*;
//! use pardis_cdr::Decode;
//!
//! struct Echo;
//! impl Servant for Echo {
//!     fn type_id(&self) -> &str { "IDL:echo:1.0" }
//!     fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()> {
//!         let x = i32::decode(&mut req.args()).map_err(PardisError::from)?;
//!         req.set_result(|w| { w.put_i32(x * 2); Ok(()) })
//!     }
//! }
//!
//! let world = World::new(LinkSpec::unlimited());
//! let server = world.spawn_machine("server", 2, |ctx| {
//!     ctx.register("echo", Box::new(Echo), vec![]).unwrap();
//!     ctx.serve_forever().unwrap();
//! });
//! let client = world.spawn_machine("client", 1, |ctx| {
//!     let proxy = ctx.bind("echo", None, Some("IDL:echo:1.0")).unwrap();
//!     let mut spec = RequestSpec::simple("double");
//!     let mut w = pardis_cdr::CdrWriter::new(ctx.endian());
//!     w.put_i32(21);
//!     spec.nondist_body = w.into_shared();
//!     let reply = proxy.invoke(&ctx, spec).unwrap();
//!     let mut r = pardis_cdr::CdrReader::new(&reply.nondist_body, ctx.endian());
//!     let doubled = i32::decode(&mut r).unwrap();
//!     ctx.send_shutdown(proxy.objref()).unwrap();
//!     doubled
//! });
//! assert_eq!(client.join(), vec![42]);
//! server.join();
//! ```

#[cfg(feature = "analyze")]
pub mod analyze;
pub mod client;
pub mod dist;
pub mod dseq;
pub mod error;
pub mod future;
pub mod naming;
#[cfg(feature = "obs")]
pub mod obs;
pub mod orb;
#[cfg(feature = "analyze")]
pub mod race;
pub mod request;
pub mod server;
pub mod transfer;
pub mod world;

pub use client::{PendingInvoke, Proxy, RetryPolicy};
pub use dist::{DistTempl, Proportions};
pub use dseq::{DSequence, Elem};
pub use error::{PardisError, PardisResult};
pub use future::PardisFuture;
pub use naming::NameService;
pub use orb::{DegradePolicy, OrbCtx, OrbOptions};
#[cfg(feature = "analyze")]
pub use race::{AccessKind, RaceReport};
pub use request::{ArgDir, DistArgSend, InvokeTiming, ReplyResult, RequestSpec};
pub use server::{DistIn, Servant, ServerRequest};
pub use world::{MachineHandle, World};

/// One-stop imports for applications and generated stubs.
pub mod prelude {
    pub use crate::client::{Proxy, RetryPolicy};
    pub use crate::dist::{DistTempl, Proportions};
    pub use crate::dseq::{DSequence, Elem};
    pub use crate::error::{PardisError, PardisResult};
    pub use crate::future::PardisFuture;
    pub use crate::orb::{DegradePolicy, OrbCtx, OrbOptions};
    pub use crate::request::{ArgDir, InvokeTiming, ReplyResult, RequestSpec};
    pub use crate::server::{Servant, ServerRequest};
    pub use crate::world::World;
    pub use pardis_net::giop::TransferMode;
    pub use pardis_net::{DistSpec, LinkSpec};
}
