//! Centralized argument transfer (paper §3.2, figure 2).
//!
//! "The SPMD object makes available only one network connection to
//! clients. This connection is waited on by one of the SPMD threads which
//! we will subsequently call a communicating thread. … On invocation, the
//! computing threads of the client first synchronize, marshal arguments
//! and then the request is sent to the server as one message. … The
//! distributed arguments are gathered and scattered by the communicating
//! threads of the client and server as part of the marshaling or
//! unmarshaling process."
//!
//! The total invocation time decomposes as
//! `T = t_gather + t_pack + t_wire + t_unpack + t_scatter`, and both the
//! gather/scatter terms grow with the number of computing threads — the
//! effect Table 1 measures.

use crate::client::{PendingInvoke, Proxy};
use crate::error::{PardisError, PardisResult};
use crate::orb::OrbCtx;
use crate::request::{ReplyBody, ReplyResult, RequestBody, RequestSpec};
use crate::server::{DistIn, ServerRequest};
use crate::transfer::{
    pack_into, service_context_entries, status_to_result, synthetic_status, unpack_copy,
};
use bytes::Bytes;
use pardis_net::giop::{GiopMessage, ReplyHeader, ReplyStatus, RequestHeader, TransferMode};
use std::time::Instant;

/// Client send phase: gather distributed arguments at the communicating
/// thread, marshal everything into one Request message, transmit.
pub(crate) fn client_send(
    ctx: &OrbCtx,
    proxy: &Proxy,
    spec: &RequestSpec,
    pending: &mut PendingInvoke,
) -> PardisResult<()> {
    // Every distributed argument's client buffer is in flight from here
    // until the invocation completes.
    #[cfg(feature = "analyze")]
    for arg in &spec.dist_args {
        crate::race::open_transfer(
            arg.buf_id,
            arg.dir,
            &spec.operation,
            pending.req_id,
            "centralized",
            ctx.rts.membership().epoch(),
        );
    }
    // Gather each sending distributed argument at the communicating
    // thread through the RTS.
    let mut gathered: Vec<Option<Vec<Bytes>>> = Vec::with_capacity(spec.dist_args.len());
    let tg = Instant::now();
    for arg in &spec.dist_args {
        if arg.dir.sends() {
            if proxy.collective {
                gathered.push(ctx.rts.gather_bytes(0, arg.local.clone())?);
            } else {
                gathered.push(Some(vec![arg.local.clone()]));
            }
        } else {
            gathered.push(None);
        }
    }
    pending.timing.gather = tg.elapsed();

    // The communicating thread marshals and sends.
    if let Some(conn) = proxy.conn.as_ref() {
        let tp = Instant::now();
        let mut dist = Vec::with_capacity(spec.dist_args.len());
        for (arg, chunks) in spec.dist_args.iter().zip(&gathered) {
            let data = chunks.as_ref().map(|cs| {
                let total: usize = cs.iter().map(|c| c.len()).sum();
                let mut buf = Vec::with_capacity(total);
                for c in cs {
                    pack_into(&mut buf, c, arg.elem_size, ctx.translate);
                }
                Bytes::from(buf)
            });
            dist.push((arg.meta(), data));
        }
        let body = RequestBody {
            nondist: spec.nondist_body.clone(),
            dist,
        };
        let header = RequestHeader {
            request_id: pending.req_id,
            object_name: proxy.objref.name.clone(),
            operation: spec.operation.clone(),
            response_expected: spec.response_expected,
            reply_host: ctx.host.id(),
            reply_port: conn.local_port(),
            mode: TransferMode::Centralized,
            client_threads: if proxy.collective {
                ctx.nthreads() as u32
            } else {
                1
            },
            client_data_ports: vec![],
            service_context: service_context_entries(ctx),
        };
        let body_bytes = body.to_bytes(ctx.endian);
        #[cfg(feature = "obs")]
        let body_len = body_bytes.len() as u64;
        let msg = GiopMessage::Request(header, body_bytes);
        pending.timing.pack = tp.elapsed();

        let ts = Instant::now();
        conn.send(&msg, ctx.endian)?;
        pending.timing.send = ts.elapsed();
        #[cfg(feature = "obs")]
        {
            pardis_obs::metrics::add("xfer.centralized.bytes", body_len);
            crate::obs::record_phase(
                pardis_obs::SpanKind::XferCentralized,
                &spec.operation,
                ctx.rts.membership().epoch(),
                body_len,
                ts.elapsed().as_nanos() as u64,
            );
        }
    }
    Ok(())
}

/// Client receive phase: the communicating thread receives the single
/// Reply, relays status and non-distributed results, and scatters the
/// distributed results to the computing threads.
pub(crate) fn client_recv(
    ctx: &OrbCtx,
    proxy: &Proxy,
    pending: &PendingInvoke,
) -> PardisResult<ReplyResult> {
    let mut timing = pending.timing;

    // Communicating thread: pull the reply off the wire, strip inline
    // data, relay the control part. A local receive failure (deadline
    // exceeded, connection reset, undecodable reply) is converted into
    // a synthetic error Reply and relayed the same way, so the other
    // computing threads resolve to the same error instead of hanging.
    let mut inline: Vec<Option<Bytes>> = Vec::new();
    let control: (ReplyHeader, ReplyBody);
    if let Some(conn) = proxy.conn.as_ref() {
        let tr = Instant::now();
        let received = pending
            .send_failure()
            .map(Err)
            .unwrap_or_else(|| proxy.recv_reply(conn, pending.req_id, pending.deadline))
            .and_then(|(header, body_bytes)| {
                Ok((header, ReplyBody::decode(&body_bytes, ctx.endian)?))
            });
        let (header, stripped) = match received {
            Ok((header, body)) => {
                inline = body.dist_out.iter().map(|(_, _, d)| d.clone()).collect();
                let stripped = ReplyBody {
                    nondist: body.nondist.clone(),
                    dist_out: body
                        .dist_out
                        .iter()
                        .map(|(i, l, _)| (*i, *l, None))
                        .collect(),
                };
                (header, stripped)
            }
            Err(e) => (
                ReplyHeader {
                    request_id: pending.req_id,
                    status: synthetic_status(&e),
                },
                ReplyBody {
                    nondist: Bytes::new(),
                    dist_out: vec![],
                },
            ),
        };
        timing.recv_unpack += tr.elapsed();
        if proxy.collective {
            let wire = GiopMessage::Reply(header.clone(), stripped.to_bytes(ctx.endian))
                .encode(ctx.endian)?;
            ctx.rts.broadcast(0, Some(wire))?;
        }
        control = (header, stripped);
    } else {
        // Non-communicating threads learn the outcome by relay.
        let wire = ctx.rts.broadcast(0, None)?;
        match GiopMessage::decode(&wire)? {
            GiopMessage::Reply(h, b) => {
                let body = ReplyBody::decode(&b, ctx.endian)?;
                control = (h, body);
            }
            other => {
                return Err(PardisError::Net(format!(
                    "unexpected relayed reply: {other:?}"
                )))
            }
        }
    }

    let (header, body) = control;
    status_to_result(&header.status)?;

    // Scatter each returning distributed argument from the communicating
    // thread to its owners.
    let mut dist_out = Vec::new();
    for (pos, (arg_idx, total_len, _)) in body.dist_out.iter().enumerate() {
        let d = pending
            .dist
            .get(*arg_idx as usize)
            .ok_or_else(|| PardisError::BadDistArg(format!("reply names unknown arg {arg_idx}")))?;
        if d.client_templ.len() != *total_len {
            return Err(PardisError::BadDistArg(format!(
                "reply length {total_len} differs from argument length {}",
                d.client_templ.len()
            )));
        }
        if !d.dir.returns() {
            return Err(PardisError::BadDistArg(format!(
                "reply returns data for `in` argument {arg_idx}"
            )));
        }
        let my_bytes = if proxy.collective {
            let ts = Instant::now();
            let chunks = if ctx.is_comm_thread() {
                let data = inline[pos].as_ref().ok_or_else(|| {
                    PardisError::BadDistArg("centralized reply missing inline data".into())
                })?;
                Some(split_by_templ(data, &d.client_templ, d.elem_size)?)
            } else {
                None
            };
            let mine = ctx.rts.scatterv_bytes(0, chunks)?;
            timing.scatter += ts.elapsed();
            mine
        } else {
            let data = inline[pos].as_ref().ok_or_else(|| {
                PardisError::BadDistArg("centralized reply missing inline data".into())
            })?;
            data.clone()
        };
        let tu = Instant::now();
        let local = unpack_copy(&my_bytes, d.elem_size, ctx.translate);
        timing.recv_unpack += tu.elapsed();
        dist_out.push((*arg_idx, local));
    }

    Ok(ReplyResult {
        nondist_body: body.nondist,
        dist_out,
        timing,
    })
}

/// Split a full gathered buffer into per-thread chunks by a template.
fn split_by_templ(
    data: &Bytes,
    templ: &crate::dist::DistTempl,
    elem_size: usize,
) -> PardisResult<Vec<Bytes>> {
    if data.len() != templ.len() * elem_size {
        return Err(PardisError::BadDistArg(format!(
            "inline data {} bytes, template covers {}",
            data.len(),
            templ.len() * elem_size
        )));
    }
    Ok((0..templ.nthreads())
        .map(|t| {
            let r = templ.range(t);
            data.slice(r.start * elem_size..r.end * elem_size)
        })
        .collect())
}

/// Server side: materialize each thread's local parts of the distributed
/// arguments by scattering from the communicating thread.
pub(crate) fn server_receive_args(
    ctx: &OrbCtx,
    body: &RequestBody,
    inline: Option<Vec<Option<Bytes>>>,
    timing: &mut crate::request::InvokeTiming,
) -> PardisResult<Vec<DistIn>> {
    let mut out = Vec::with_capacity(body.dist.len());
    for (i, (meta, _)) in body.dist.iter().enumerate() {
        let server_templ = meta.server_templ();
        let client_templ = meta.client_templ();
        if server_templ.nthreads() != ctx.nthreads() {
            return Err(PardisError::BadDistArg(format!(
                "argument {i} server template names {} threads, machine has {}",
                server_templ.nthreads(),
                ctx.nthreads()
            )));
        }
        // Degraded machine: remap onto the survivor set (dead threads
        // own zero elements); identical on every rank by construction.
        let server_templ = ctx.effective_server_templ(server_templ)?;
        let local = if meta.dir.sends() {
            let ts = Instant::now();
            let chunks = match &inline {
                Some(v) => {
                    let data = v[i].as_ref().ok_or_else(|| {
                        PardisError::BadDistArg(format!(
                            "centralized request missing inline data for argument {i}"
                        ))
                    })?;
                    Some(split_by_templ(data, &server_templ, meta.elem_size)?)
                }
                None => None,
            };
            let mine = ctx.rts.scatterv_bytes(0, chunks)?;
            timing.scatter += ts.elapsed();
            let tu = Instant::now();
            let local = unpack_copy(&mine, meta.elem_size, ctx.translate);
            timing.recv_unpack += tu.elapsed();
            local
        } else {
            vec![0u8; server_templ.count(ctx.rank()) * meta.elem_size]
        };
        out.push(DistIn {
            dir: meta.dir,
            elem_size: meta.elem_size,
            client_templ,
            server_templ,
            local,
        });
    }
    Ok(out)
}

/// Server side: gather the returning arguments at the communicating
/// thread and send one Reply message.
pub(crate) fn server_send_reply(
    ctx: &OrbCtx,
    header: &RequestHeader,
    sreq: &ServerRequest<'_>,
    endian: pardis_cdr::Endian,
    timing: &mut crate::request::InvokeTiming,
) -> PardisResult<()> {
    let mut dist_out = Vec::new();
    for i in 0..sreq.dist_count() {
        let d = sreq.dist_raw(i)?;
        if !d.dir.returns() {
            continue;
        }
        let tg = Instant::now();
        let gathered = ctx
            .rts
            .gather_bytes(0, Bytes::copy_from_slice(sreq.reply_local(i)))?;
        timing.gather += tg.elapsed();
        if let Some(chunks) = gathered {
            let tp = Instant::now();
            let mut buf = Vec::with_capacity(d.server_templ.len() * d.elem_size);
            for c in &chunks {
                pack_into(&mut buf, c, d.elem_size, ctx.translate);
            }
            timing.pack += tp.elapsed();
            dist_out.push((i as u32, d.server_templ.len(), Some(Bytes::from(buf))));
        }
    }

    if ctx.is_comm_thread() {
        let body = ReplyBody {
            nondist: sreq.reply_nondist_bytes(),
            dist_out,
        };
        let reply = GiopMessage::Reply(
            ReplyHeader {
                request_id: header.request_id,
                status: ReplyStatus::NoException,
            },
            body.to_bytes(endian),
        );
        let ts = Instant::now();
        ctx.host
            .send_to(header.reply_host, header.reply_port, reply.encode(endian)?)?;
        timing.send += ts.elapsed();
    }
    Ok(())
}
