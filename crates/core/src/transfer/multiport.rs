//! Multi-port argument transfer (paper §3.3, figure 3).
//!
//! "Each computing thread of the SPMD object opens a network connection
//! on a separate port. These connections become a part of object
//! reference … The invocation header will be delivered using the
//! centralized method as above, and upon its receipt the computing
//! threads will await argument transfer on network ports. … the client's
//! threads first calculate to which of the server's threads they should
//! send data. Each thread then marshals the part of data it owns, and
//! sends it. The server's threads receive all the data transfers
//! associated with a given request and unmarshal them according to
//! information contained in the transfer header."
//!
//! Compared with the centralized method this eliminates the
//! gather/scatter entirely, marshals in parallel on every thread, and —
//! on a single shared link — keeps the wire busy by interleaving frames
//! from concurrent senders. `T = t_pack/n + t_wire + t_unpack/n`: the
//! time *decreases* as computing resources grow, the effect Table 2 and
//! figure 4 measure.

use crate::client::{PendingInvoke, Proxy};
use crate::error::{PardisError, PardisResult};
use crate::orb::OrbCtx;
use crate::request::{ReplyBody, ReplyResult, RequestBody, RequestSpec};
use crate::server::{DistIn, ServerRequest};
use crate::transfer::{pack_copy, service_context_entries, status_to_result, synthetic_status};
use bytes::Bytes;
use pardis_net::giop::{
    GiopMessage, ReplyHeader, ReplyStatus, RequestHeader, TransferHeader, TransferMode,
};
use pardis_net::{HostId, PortId};
use std::time::Instant;

/// Client send phase: the communicating thread sends the header-only
/// Request; every thread then streams its fragments directly to the
/// owning server threads.
pub(crate) fn client_send(
    ctx: &OrbCtx,
    proxy: &Proxy,
    spec: &RequestSpec,
    pending: &mut PendingInvoke,
) -> PardisResult<()> {
    if !proxy.objref.supports_multiport() {
        return Err(PardisError::MultiportUnavailable);
    }

    // Every distributed argument's client buffer is in flight from here
    // until the invocation completes.
    #[cfg(feature = "analyze")]
    for arg in &spec.dist_args {
        crate::race::open_transfer(
            arg.buf_id,
            arg.dir,
            &spec.operation,
            pending.req_id,
            "multi-port",
            ctx.rts.membership().epoch(),
        );
    }

    // Header first, so the server threads are awaiting fragments.
    if let Some(conn) = proxy.conn.as_ref() {
        let tp = Instant::now();
        let body = RequestBody {
            nondist: spec.nondist_body.clone(),
            dist: spec.dist_args.iter().map(|a| (a.meta(), None)).collect(),
        };
        let header = RequestHeader {
            request_id: pending.req_id,
            object_name: proxy.objref.name.clone(),
            operation: spec.operation.clone(),
            response_expected: spec.response_expected,
            reply_host: ctx.host.id(),
            reply_port: conn.local_port(),
            mode: TransferMode::MultiPort,
            client_threads: if proxy.collective {
                ctx.nthreads() as u32
            } else {
                1
            },
            client_data_ports: if proxy.collective {
                ctx.data_port_ids.clone()
            } else {
                vec![ctx.data_port.port()]
            },
            service_context: service_context_entries(ctx),
        };
        let msg = GiopMessage::Request(header, body.to_bytes(ctx.endian));
        pending.timing.pack += tp.elapsed();
        let ts = Instant::now();
        conn.send(&msg, ctx.endian)?;
        pending.timing.send += ts.elapsed();
    }

    // Every thread routes and sends its share of each sending argument.
    let my_thread = if proxy.collective { ctx.rank() } else { 0 };
    #[cfg(feature = "obs")]
    let mut obs_bytes: u64 = 0;
    for (arg_idx, arg) in spec.dist_args.iter().enumerate() {
        if !arg.dir.sends() {
            continue;
        }
        let my_off = arg.client_templ.offset(my_thread);
        for (dst, range) in arg.client_templ.transfers_to(my_thread, &arg.server_templ) {
            let lo = (range.start - my_off) * arg.elem_size;
            let hi = (range.end - my_off) * arg.elem_size;
            // Marshal this fragment (a real copy; the pack cost of the
            // paper's measurements, parallel across threads here).
            let tp = Instant::now();
            let frag = pack_copy(&arg.local[lo..hi], arg.elem_size, ctx.translate);
            #[cfg(feature = "obs")]
            {
                let frag_len = frag.len() as u64;
                pardis_obs::metrics::observe("xfer.multiport.frag_bytes", frag_len);
                obs_bytes += frag_len;
            }
            let msg = GiopMessage::DataTransfer(
                TransferHeader {
                    request_id: pending.req_id,
                    arg_index: arg_idx as u32,
                    src_thread: my_thread as u32,
                    dst_thread: dst as u32,
                    offset: range.start as u64,
                    count: (range.end - range.start) as u64,
                    total_len: arg.client_templ.len() as u64,
                    epoch: ctx.rts.membership().epoch(),
                },
                Bytes::from(frag),
            );
            pending.timing.pack += tp.elapsed();
            let ts = Instant::now();
            // Send from this thread's own data port: fragment flows are
            // then distinct per (source thread, destination thread),
            // which keeps seeded fault decisions independent of how the
            // sending threads interleave.
            ctx.host.send_from(
                ctx.data_port.port(),
                proxy.objref.host,
                proxy.objref.data_ports[dst],
                msg.encode(ctx.endian)?,
            )?;
            pending.timing.send += ts.elapsed();
        }
    }
    #[cfg(feature = "obs")]
    {
        pardis_obs::metrics::add("xfer.multiport.bytes", obs_bytes);
        crate::obs::record_phase(
            pardis_obs::SpanKind::XferMultiport,
            &spec.operation,
            ctx.rts.membership().epoch(),
            obs_bytes,
            0,
        );
    }
    Ok(())
}

/// Client receive phase: learn the outcome from the (relayed) Reply
/// first, then collect the returning fragments on each thread's own
/// port.
pub(crate) fn client_recv(
    ctx: &OrbCtx,
    proxy: &Proxy,
    pending: &PendingInvoke,
) -> PardisResult<ReplyResult> {
    let mut timing = pending.timing;

    let control: (ReplyHeader, ReplyBody);
    if let Some(conn) = proxy.conn.as_ref() {
        let tr = Instant::now();
        // A local receive failure becomes a synthetic error Reply,
        // relayed like a real one so no computing thread hangs.
        let received = pending
            .send_failure()
            .map(Err)
            .unwrap_or_else(|| proxy.recv_reply(conn, pending.req_id, pending.deadline))
            .and_then(|(header, body_bytes)| {
                Ok((
                    header,
                    body_bytes.clone(),
                    ReplyBody::decode(&body_bytes, ctx.endian)?,
                ))
            });
        let (header, body_bytes, body) = match received {
            Ok(ok) => ok,
            Err(e) => {
                let header = ReplyHeader {
                    request_id: pending.req_id,
                    status: synthetic_status(&e),
                };
                let body = ReplyBody {
                    nondist: Bytes::new(),
                    dist_out: vec![],
                };
                let bytes = body.to_bytes(ctx.endian);
                (header, bytes, body)
            }
        };
        timing.recv_unpack += tr.elapsed();
        if proxy.collective {
            let wire = GiopMessage::Reply(header.clone(), body_bytes.clone()).encode(ctx.endian)?;
            ctx.rts.broadcast(0, Some(wire))?;
        }
        control = (header, body);
    } else {
        let wire = ctx.rts.broadcast(0, None)?;
        match GiopMessage::decode(&wire)? {
            GiopMessage::Reply(h, b) => control = (h, ReplyBody::decode(&b, ctx.endian)?),
            other => {
                return Err(PardisError::Net(format!(
                    "unexpected relayed reply: {other:?}"
                )))
            }
        }
    }

    let (header, body) = control;
    status_to_result(&header.status)?;

    // Collect this thread's fragments for each returning argument.
    let my_thread = if proxy.collective { ctx.rank() } else { 0 };
    let mut dist_out = Vec::new();
    for (arg_idx, total_len, _) in &body.dist_out {
        let d = pending
            .dist
            .get(*arg_idx as usize)
            .ok_or_else(|| PardisError::BadDistArg(format!("reply names unknown arg {arg_idx}")))?;
        if d.client_templ.len() != *total_len {
            return Err(PardisError::BadDistArg(format!(
                "reply length {total_len} differs from argument length {}",
                d.client_templ.len()
            )));
        }
        if !d.dir.returns() {
            return Err(PardisError::BadDistArg(format!(
                "reply returns data for `in` argument {arg_idx}"
            )));
        }
        let expected = d.client_templ.incoming_count(my_thread, &d.server_templ);
        let tr = Instant::now();
        let frags = ctx.recv_fragments(pending.req_id, *arg_idx, expected, pending.deadline)?;
        let local = ctx.assemble_local(&frags, &d.client_templ, d.elem_size)?;
        timing.recv_unpack += tr.elapsed();
        dist_out.push((*arg_idx, local));
    }

    Ok(ReplyResult {
        nondist_body: body.nondist,
        dist_out,
        timing,
    })
}

/// Server side: every thread awaits the fragments routed to it and
/// assembles its local parts.
pub(crate) fn server_receive_args(
    ctx: &OrbCtx,
    req_id: u64,
    body: &RequestBody,
    timing: &mut crate::request::InvokeTiming,
) -> PardisResult<Vec<DistIn>> {
    let mut out = Vec::with_capacity(body.dist.len());
    for (i, (meta, _)) in body.dist.iter().enumerate() {
        let server_templ = meta.server_templ();
        let client_templ = meta.client_templ();
        if server_templ.nthreads() != ctx.nthreads() {
            return Err(PardisError::BadDistArg(format!(
                "argument {i} server template names {} threads, machine has {}",
                server_templ.nthreads(),
                ctx.nthreads()
            )));
        }
        let local = if meta.dir.sends() {
            let expected = server_templ.incoming_count(ctx.rank(), &client_templ);
            let tr = Instant::now();
            // The fragment wait is bounded by the ORB's configured
            // timeout; a dropped fragment then degrades to an error
            // reply instead of wedging the serve loop.
            let deadline = ctx.frag_timeout.map(|t| Instant::now() + t);
            let frags = ctx.recv_fragments(req_id, i as u32, expected, deadline)?;
            let local = ctx.assemble_local(&frags, &server_templ, meta.elem_size)?;
            timing.recv_unpack += tr.elapsed();
            local
        } else {
            vec![0u8; server_templ.count(ctx.rank()) * meta.elem_size]
        };
        out.push(DistIn {
            dir: meta.dir,
            elem_size: meta.elem_size,
            client_templ,
            server_templ,
            local,
        });
    }
    Ok(out)
}

/// Server side: the communicating thread reports completion; every
/// thread streams its share of the returning arguments straight to the
/// client threads' data ports.
pub(crate) fn server_send_reply(
    ctx: &OrbCtx,
    header: &RequestHeader,
    sreq: &ServerRequest<'_>,
    endian: pardis_cdr::Endian,
    timing: &mut crate::request::InvokeTiming,
) -> PardisResult<()> {
    // Reply status first so the client can fail fast and only waits for
    // fragments it will actually receive.
    let mut dist_out_meta = Vec::new();
    for i in 0..sreq.dist_count() {
        let d = sreq.dist_raw(i)?;
        if d.dir.returns() {
            dist_out_meta.push((i as u32, d.server_templ.len(), None));
        }
    }
    if ctx.is_comm_thread() {
        let body = ReplyBody {
            nondist: sreq.reply_nondist_bytes(),
            dist_out: dist_out_meta.clone(),
        };
        let reply = GiopMessage::Reply(
            ReplyHeader {
                request_id: header.request_id,
                status: ReplyStatus::NoException,
            },
            body.to_bytes(endian),
        );
        let ts = Instant::now();
        ctx.host
            .send_to(header.reply_host, header.reply_port, reply.encode(endian)?)?;
        timing.send += ts.elapsed();
    }

    // Fragments from every thread directly to the owning client threads.
    let client_ports: &[PortId] = &header.client_data_ports;
    let client_host: HostId = header.reply_host;
    for (i, _, _) in &dist_out_meta {
        let i = *i as usize;
        let d = sreq.dist_raw(i)?;
        let my_off = d.server_templ.offset(ctx.rank());
        let reply_local = sreq.reply_local(i);
        for (dst, range) in d.server_templ.transfers_to(ctx.rank(), &d.client_templ) {
            if dst >= client_ports.len() {
                return Err(PardisError::BadDistArg(format!(
                    "client advertised {} data ports, routing needs thread {dst}",
                    client_ports.len()
                )));
            }
            let lo = (range.start - my_off) * d.elem_size;
            let hi = (range.end - my_off) * d.elem_size;
            let tp = Instant::now();
            let frag = pack_copy(&reply_local[lo..hi], d.elem_size, ctx.translate);
            let msg = GiopMessage::DataTransfer(
                TransferHeader {
                    request_id: header.request_id,
                    arg_index: i as u32,
                    src_thread: ctx.rank() as u32,
                    dst_thread: dst as u32,
                    offset: range.start as u64,
                    count: (range.end - range.start) as u64,
                    total_len: d.server_templ.len() as u64,
                    epoch: ctx.rts.membership().epoch(),
                },
                Bytes::from(frag),
            );
            timing.pack += tp.elapsed();
            let ts = Instant::now();
            ctx.host.send_from(
                ctx.data_port.port(),
                client_host,
                client_ports[dst],
                msg.encode(endian)?,
            )?;
            timing.send += ts.elapsed();
        }
    }
    Ok(())
}
