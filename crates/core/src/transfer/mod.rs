//! Distributed-argument transfer engines.
//!
//! The paper's §3 investigates two ways of moving distributed arguments
//! between the computing threads of a parallel client and a parallel
//! server:
//!
//! * [`centralized`] — one network connection; arguments are gathered at
//!   a *communicating thread*, travel inside the request/reply message,
//!   and are scattered on the far side (figure 2),
//! * [`multiport`] — every computing thread owns a port; the invocation
//!   header still travels centrally, but argument data flows directly
//!   thread-to-thread according to the overlap of the two distribution
//!   templates (figure 3).
//!
//! This module holds the pieces both engines share: marshaling copies
//! (with optional data translation), fragment reassembly, and phase
//! timing.

pub mod centralized;
pub mod multiport;

use crate::error::{PardisError, PardisResult};
use crate::orb::OrbCtx;
use bytes::Bytes;
use pardis_net::giop::{GiopMessage, ReplyStatus, TransferHeader};
use std::time::Instant;

/// Prefix used when the communicating thread converts a local receive
/// timeout into a synthetic relayed Reply, so every computing thread of
/// the client resolves to the same [`PardisError::Timeout`].
pub(crate) const SYNTH_TIMEOUT: &str = "TIMEOUT:";
/// Same, for transport failures → [`PardisError::CommFailure`].
pub(crate) const SYNTH_COMM_FAILURE: &str = "COMM_FAILURE:";

/// The service-context entries for an outgoing request header: the
/// active tracing context when observability is compiled in, nothing
/// otherwise.
pub(crate) fn service_context_entries(ctx: &OrbCtx) -> Vec<(u32, Bytes)> {
    #[cfg(feature = "obs")]
    {
        crate::obs::service_context(&ctx.rts)
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = ctx;
        Vec::new()
    }
}

/// Map a reply status to a client-visible result. Synthetic statuses
/// fabricated by the communicating thread on a local receive failure
/// are converted back to their typed CORBA-style errors.
pub(crate) fn status_to_result(status: &ReplyStatus) -> PardisResult<()> {
    match status {
        ReplyStatus::NoException => Ok(()),
        ReplyStatus::UserException(name) => Err(PardisError::UserException(name.clone())),
        ReplyStatus::SystemException(msg) => {
            if msg.strip_prefix(SYNTH_TIMEOUT).is_some() {
                Err(PardisError::Timeout)
            } else if let Some(rest) = msg.strip_prefix(SYNTH_COMM_FAILURE) {
                Err(PardisError::CommFailure(rest.trim().to_string()))
            } else {
                Err(PardisError::SystemException(msg.clone()))
            }
        }
        ReplyStatus::MembershipChange {
            epoch,
            dead,
            survivors,
        } => Err(PardisError::MembershipChange {
            epoch: *epoch,
            dead: dead.clone(),
            survivors: survivors.clone(),
        }),
    }
}

/// Build the synthetic status the communicating thread relays when its
/// own receive phase failed.
pub(crate) fn synthetic_status(e: &PardisError) -> ReplyStatus {
    match e {
        PardisError::Timeout => ReplyStatus::SystemException(format!("{SYNTH_TIMEOUT} {e}")),
        other => ReplyStatus::SystemException(format!("{SYNTH_COMM_FAILURE} {other}")),
    }
}

/// Marshal `src` into a fresh buffer. This is the "pack" cost of the
/// paper's measurements: a full copy of the data, with an extra per-word
/// byte swap when data translation is enabled (the §3.3 remark about
/// heterogeneous encodings).
pub(crate) fn pack_copy(src: &[u8], elem_size: usize, translate: bool) -> Vec<u8> {
    let mut out = src.to_vec();
    if translate {
        swap_in_place(&mut out, elem_size);
    }
    out
}

/// Append `src` into `dst`, translating if asked. Used when packing
/// several gathered chunks into one message body.
pub(crate) fn pack_into(dst: &mut Vec<u8>, src: &[u8], elem_size: usize, translate: bool) {
    let start = dst.len();
    dst.extend_from_slice(src);
    if translate {
        swap_in_place(&mut dst[start..], elem_size);
    }
}

/// Unmarshal: copy `src` out of a message, undoing translation.
pub(crate) fn unpack_copy(src: &[u8], elem_size: usize, translate: bool) -> Vec<u8> {
    // Symmetric swap: translating twice restores the original.
    pack_copy(src, elem_size, translate)
}

fn swap_in_place(buf: &mut [u8], elem_size: usize) {
    match elem_size {
        8 => pardis_cdr::byteswap::swap_f64_bytes_in_place(buf),
        4 => pardis_cdr::byteswap::swap_i32_bytes_in_place(buf),
        _ => {} // octets need no translation
    }
}

impl OrbCtx {
    /// Collect `expected` DataTransfer fragments for `(req_id, arg)` from
    /// this thread's data port, buffering any fragments that belong to
    /// other requests or arguments.
    pub(crate) fn recv_fragments(
        &self,
        req_id: u64,
        arg: u32,
        expected: usize,
        deadline: Option<Instant>,
    ) -> PardisResult<Vec<(TransferHeader, Bytes)>> {
        let mut got = Vec::with_capacity(expected);
        // Drain anything already buffered.
        {
            let mut frags = self.frags.borrow_mut();
            if let Some(q) = frags.get_mut(&(req_id, arg)) {
                while got.len() < expected {
                    match q.pop_front() {
                        Some(f) => got.push(f),
                        None => break,
                    }
                }
                if q.is_empty() {
                    frags.remove(&(req_id, arg));
                }
            }
        }
        // Then read from the port.
        while got.len() < expected {
            let dg = self
                .data_port
                .recv_deadline(deadline)
                .map_err(PardisError::from)?;
            match GiopMessage::decode(&dg.payload)? {
                GiopMessage::DataTransfer(h, body) => {
                    if h.request_id == req_id && h.arg_index == arg {
                        got.push((h, body));
                    } else {
                        self.frags
                            .borrow_mut()
                            .entry((h.request_id, h.arg_index))
                            .or_default()
                            .push_back((h, body));
                    }
                }
                other => {
                    return Err(PardisError::Net(format!(
                        "unexpected message on data port: {other:?}"
                    )))
                }
            }
        }
        Ok(got)
    }

    /// Assemble received fragments into this thread's local part of a
    /// sequence laid out by `templ`. Fragments carry global element
    /// offsets; the local buffer covers `templ.range(self.rank())`.
    pub(crate) fn assemble_local(
        &self,
        frags: &[(TransferHeader, Bytes)],
        templ: &crate::dist::DistTempl,
        elem_size: usize,
    ) -> PardisResult<Vec<u8>> {
        let my = templ.range(self.rank());
        let mut local = vec![0u8; (my.end - my.start) * elem_size];
        for (h, body) in frags {
            let off = h.offset as usize;
            let count = h.count as usize;
            if off < my.start || off + count > my.end {
                return Err(PardisError::BadDistArg(format!(
                    "fragment [{off}, {}) outside local range [{}, {})",
                    off + count,
                    my.start,
                    my.end
                )));
            }
            if body.len() != count * elem_size {
                return Err(PardisError::BadDistArg(format!(
                    "fragment body {} bytes, header promises {}",
                    body.len(),
                    count * elem_size
                )));
            }
            let lo = (off - my.start) * elem_size;
            let dst = &mut local[lo..lo + body.len()];
            dst.copy_from_slice(body);
            if self.translate {
                swap_in_place(dst, elem_size);
            }
        }
        Ok(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_without_translation_is_copy() {
        let src = [1u8, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(pack_copy(&src, 8, false), src.to_vec());
    }

    #[test]
    fn pack_with_translation_swaps() {
        let src = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let packed = pack_copy(&src, 8, true);
        assert_eq!(packed, vec![8, 7, 6, 5, 4, 3, 2, 1]);
        // unpack restores
        assert_eq!(unpack_copy(&packed, 8, true), src.to_vec());
    }

    #[test]
    fn pack_into_appends_translated() {
        let mut dst = vec![0xFFu8];
        pack_into(&mut dst, &[1, 2, 3, 4], 4, true);
        assert_eq!(dst, vec![0xFF, 4, 3, 2, 1]);
    }

    #[test]
    fn octets_never_translate() {
        let src = [9u8, 8, 7];
        assert_eq!(pack_copy(&src, 1, true), src.to_vec());
    }
}
