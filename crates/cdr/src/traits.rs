//! `Encode`/`Decode` traits mapping Rust types onto CDR.
//!
//! The IDL compiler generates implementations of these traits for
//! user-defined structs and enums; the blanket implementations here cover
//! the IDL basic types, strings, sequences (`Vec`), bounded checks, and
//! optionals (used for nullable object references).

use crate::{CdrError, CdrReader, CdrResult, CdrWriter};

/// Types that can be marshaled into a CDR stream.
pub trait Encode {
    /// Append `self` to the writer.
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()>;
}

/// Types that can be unmarshaled from a CDR stream.
pub trait Decode: Sized {
    /// Read a value from the reader.
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self>;
}

macro_rules! impl_prim {
    ($t:ty, $put:ident, $get:ident) => {
        impl Encode for $t {
            #[inline]
            fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
                w.$put(*self);
                Ok(())
            }
        }
        impl Decode for $t {
            #[inline]
            fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
                r.$get()
            }
        }
    };
}

impl_prim!(bool, put_bool, get_bool);
impl_prim!(u8, put_u8, get_u8);
impl_prim!(i8, put_i8, get_i8);
impl_prim!(u16, put_u16, get_u16);
impl_prim!(i16, put_i16, get_i16);
impl_prim!(u32, put_u32, get_u32);
impl_prim!(i32, put_i32, get_i32);
impl_prim!(u64, put_u64, get_u64);
impl_prim!(i64, put_i64, get_i64);
impl_prim!(f32, put_f32, get_f32);
impl_prim!(f64, put_f64, get_f64);

impl Encode for str {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        w.put_string(self);
        Ok(())
    }
}

impl Encode for String {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        w.put_string(self);
        Ok(())
    }
}

impl Decode for String {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        r.get_string()
    }
}

/// CORBA sequence mapping: `u32` element count then the elements.
impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w)?;
        }
        Ok(())
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        let n = r.get_u32()? as usize;
        // A length field cannot promise more elements than bytes remain;
        // this guards against corrupt or hostile streams allocating
        // gigabytes up front. Every element is at least one octet.
        if n > r.remaining() {
            return Err(CdrError::LengthOverflow(n as u64));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w)?;
        }
        Ok(())
    }
}

/// Optional values encode as a boolean presence flag then the value; this
/// is the classic CORBA "union with a boolean discriminator" pattern used
/// for nullable references.
impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        match self {
            Some(v) => {
                w.put_bool(true);
                v.encode(w)
            }
            None => {
                w.put_bool(false);
                Ok(())
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        if r.get_bool()? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        self.0.encode(w)?;
        self.1.encode(w)
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Encode a bounded sequence, enforcing the IDL bound at marshal time.
pub fn encode_bounded<T: Encode>(v: &[T], bound: usize, w: &mut CdrWriter) -> CdrResult<()> {
    if v.len() > bound {
        return Err(CdrError::BoundExceeded {
            bound,
            len: v.len(),
        });
    }
    v.encode(w)
}

/// Decode a bounded sequence, enforcing the IDL bound.
pub fn decode_bounded<T: Decode>(bound: usize, r: &mut CdrReader<'_>) -> CdrResult<Vec<T>> {
    let v = Vec::<T>::decode(r)?;
    if v.len() > bound {
        return Err(CdrError::BoundExceeded {
            bound,
            len: v.len(),
        });
    }
    Ok(v)
}

/// Convenience: marshal a single value to a fresh byte vector in native
/// byte order.
pub fn to_bytes<T: Encode + ?Sized>(v: &T) -> CdrResult<Vec<u8>> {
    let mut w = CdrWriter::new(crate::Endian::native());
    v.encode(&mut w)?;
    Ok(w.into_bytes())
}

/// Convenience: unmarshal a single value from native-order bytes.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> CdrResult<T> {
    let mut r = CdrReader::new(bytes, crate::Endian::native());
    T::decode(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Endian;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        for endian in [Endian::Big, Endian::Little] {
            let mut w = CdrWriter::new(endian);
            v.encode(&mut w).unwrap();
            let buf = w.into_bytes();
            let mut r = CdrReader::new(&buf, endian);
            assert_eq!(T::decode(&mut r).unwrap(), v);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(0xABu8);
        roundtrip(-5i16);
        roundtrip(123456789u32);
        roundtrip(-9_876_543_210i64);
        roundtrip(2.5f32);
        roundtrip(-1.0e100f64);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip("hello pardis".to_string());
        roundtrip(vec![1i32, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip((42u32, "pair".to_string()));
        roundtrip(vec!["a".to_string(), String::new(), "c".to_string()]);
    }

    #[test]
    fn nested_vec_roundtrip() {
        roundtrip(vec![vec![1u8, 2], vec![], vec![3]]);
    }

    #[test]
    fn bounds_enforced() {
        let mut w = CdrWriter::new(Endian::native());
        assert!(encode_bounded(&[1u8, 2, 3], 2, &mut w).is_err());
        assert!(encode_bounded(&[1u8, 2], 2, &mut w).is_ok());
        let buf = w.into_bytes();
        let mut r = CdrReader::new(&buf, Endian::native());
        assert!(decode_bounded::<u8>(1, &mut r).is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        let mut w = CdrWriter::new(Endian::native());
        w.put_u32(u32::MAX);
        let buf = w.into_bytes();
        let mut r = CdrReader::new(&buf, Endian::native());
        assert!(matches!(
            Vec::<u8>::decode(&mut r),
            Err(CdrError::LengthOverflow(_))
        ));
    }

    #[test]
    fn helper_to_from_bytes() {
        let bytes = to_bytes(&vec![9i32, 8, 7]).unwrap();
        let v: Vec<i32> = from_bytes(&bytes).unwrap();
        assert_eq!(v, vec![9, 8, 7]);
    }
}
