//! The CDR decoder.
//!
//! A [`CdrReader`] walks a byte slice, skipping the same alignment gaps
//! the encoder inserted and swapping bytes when the stream's recorded
//! order differs from the machine's ("receiver makes right").

use crate::{align_up, CdrError, CdrResult, Endian};

/// An aligning, endian-aware binary decoder over a borrowed buffer.
#[derive(Debug, Clone)]
pub struct CdrReader<'a> {
    buf: &'a [u8],
    pos: usize,
    endian: Endian,
    /// Stream offset of `buf[0]` — see [`crate::CdrWriter::at_offset`].
    base: usize,
}

impl<'a> CdrReader<'a> {
    /// Create a reader over `buf` whose contents were encoded in
    /// byte order `endian`.
    pub fn new(buf: &'a [u8], endian: Endian) -> CdrReader<'a> {
        CdrReader {
            buf,
            pos: 0,
            endian,
            base: 0,
        }
    }

    /// Create a reader whose stream position starts at `base`; alignment
    /// is computed relative to the logical stream, not the fragment.
    pub fn at_offset(buf: &'a [u8], endian: Endian, base: usize) -> CdrReader<'a> {
        CdrReader {
            buf,
            pos: 0,
            endian,
            base,
        }
    }

    /// Byte order of the stream being decoded.
    #[inline]
    pub fn endian(&self) -> Endian {
        self.endian
    }

    /// Current position within the fragment.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Skip pad bytes so the next read starts at alignment `align`.
    pub fn align(&mut self, align: usize) -> CdrResult<()> {
        let stream_pos = self.base + self.pos;
        let target = align_up(stream_pos, align);
        let skip = target - stream_pos;
        if skip > self.remaining() {
            return Err(CdrError::UnexpectedEof {
                needed: skip,
                remained: self.remaining(),
            });
        }
        self.pos += skip;
        Ok(())
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> CdrResult<&'a [u8]> {
        if n > self.remaining() {
            return Err(CdrError::UnexpectedEof {
                needed: n,
                remained: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_array<const N: usize>(&mut self) -> CdrResult<[u8; N]> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    /// Read one octet.
    pub fn get_u8(&mut self) -> CdrResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a boolean octet, rejecting values other than 0/1.
    pub fn get_bool(&mut self) -> CdrResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CdrError::BadBool(b)),
        }
    }

    /// Read an `i8`.
    pub fn get_i8(&mut self) -> CdrResult<i8> {
        Ok(self.get_u8()? as i8)
    }

    /// Read a `u16` (2-aligned).
    pub fn get_u16(&mut self) -> CdrResult<u16> {
        self.align(2)?;
        let b = self.take_array::<2>()?;
        Ok(match self.endian {
            Endian::Big => u16::from_be_bytes(b),
            Endian::Little => u16::from_le_bytes(b),
        })
    }

    /// Read an `i16` (2-aligned).
    pub fn get_i16(&mut self) -> CdrResult<i16> {
        Ok(self.get_u16()? as i16)
    }

    /// Read a `u32` (4-aligned).
    pub fn get_u32(&mut self) -> CdrResult<u32> {
        self.align(4)?;
        let b = self.take_array::<4>()?;
        Ok(match self.endian {
            Endian::Big => u32::from_be_bytes(b),
            Endian::Little => u32::from_le_bytes(b),
        })
    }

    /// Read an `i32` (4-aligned).
    pub fn get_i32(&mut self) -> CdrResult<i32> {
        Ok(self.get_u32()? as i32)
    }

    /// Read a `u64` (8-aligned).
    pub fn get_u64(&mut self) -> CdrResult<u64> {
        self.align(8)?;
        let b = self.take_array::<8>()?;
        Ok(match self.endian {
            Endian::Big => u64::from_be_bytes(b),
            Endian::Little => u64::from_le_bytes(b),
        })
    }

    /// Read an `i64` (8-aligned).
    pub fn get_i64(&mut self) -> CdrResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read an `f32` (4-aligned).
    pub fn get_f32(&mut self) -> CdrResult<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an `f64` (8-aligned).
    pub fn get_f64(&mut self) -> CdrResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a CORBA string (length includes the terminating NUL).
    pub fn get_string(&mut self) -> CdrResult<String> {
        let len = self.get_u32()? as usize;
        if len == 0 {
            // Strictly, CORBA strings always carry a NUL, but be lenient
            // with a zero length: treat it as the empty string.
            return Ok(String::new());
        }
        let bytes = self.take(len)?;
        let (body, nul) = bytes.split_at(len - 1);
        if nul != [0] {
            return Err(CdrError::BadUtf8);
        }
        String::from_utf8(body.to_vec()).map_err(|_| CdrError::BadUtf8)
    }

    /// Read `n` `f64` values in bulk into `out`.
    ///
    /// The hot path for distributed sequences of `double`; same-endian
    /// streams decode with one bulk copy, other-endian streams swap
    /// per element — this is the "data translation" cost the paper
    /// discusses in §3.3.
    pub fn get_f64_slice(&mut self, n: usize, out: &mut Vec<f64>) -> CdrResult<()> {
        self.align(8)?;
        let bytes = self.take(n * 8)?;
        out.reserve(n);
        if self.endian == Endian::native() {
            crate::byteswap::bytes_to_f64(bytes, out);
        } else {
            for chunk in bytes.chunks_exact(8) {
                let mut a = [0u8; 8];
                a.copy_from_slice(chunk);
                let bits = match self.endian {
                    Endian::Big => u64::from_be_bytes(a),
                    Endian::Little => u64::from_le_bytes(a),
                };
                out.push(f64::from_bits(bits));
            }
        }
        Ok(())
    }

    /// Read `n` `i32` values in bulk into `out`.
    pub fn get_i32_slice(&mut self, n: usize, out: &mut Vec<i32>) -> CdrResult<()> {
        self.align(4)?;
        let bytes = self.take(n * 4)?;
        out.reserve(n);
        if self.endian == Endian::native() {
            crate::byteswap::bytes_to_i32(bytes, out);
        } else {
            for chunk in bytes.chunks_exact(4) {
                let mut a = [0u8; 4];
                a.copy_from_slice(chunk);
                let v = match self.endian {
                    Endian::Big => i32::from_be_bytes(a),
                    Endian::Little => i32::from_le_bytes(a),
                };
                out.push(v);
            }
        }
        Ok(())
    }

    /// Decode a value implementing [`crate::Decode`].
    pub fn get<T: crate::Decode>(&mut self) -> CdrResult<T> {
        T::decode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CdrWriter;

    #[test]
    fn roundtrip_mixed_primitives() {
        for endian in [Endian::Big, Endian::Little] {
            let mut w = CdrWriter::new(endian);
            w.put_bool(true);
            w.put_u16(0xBEEF);
            w.put_i32(-7);
            w.put_f64(std::f64::consts::PI);
            w.put_string("pardis");
            w.put_i64(i64::MIN);
            let buf = w.into_bytes();

            let mut r = CdrReader::new(&buf, endian);
            assert!(r.get_bool().unwrap());
            assert_eq!(r.get_u16().unwrap(), 0xBEEF);
            assert_eq!(r.get_i32().unwrap(), -7);
            assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
            assert_eq!(r.get_string().unwrap(), "pardis");
            assert_eq!(r.get_i64().unwrap(), i64::MIN);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn eof_is_detected() {
        let buf = [0u8; 3];
        let mut r = CdrReader::new(&buf, Endian::Big);
        assert!(matches!(
            r.get_u32(),
            Err(CdrError::UnexpectedEof { needed: 4, .. })
        ));
    }

    #[test]
    fn bad_bool_rejected() {
        let buf = [2u8];
        let mut r = CdrReader::new(&buf, Endian::Big);
        assert_eq!(r.get_bool(), Err(CdrError::BadBool(2)));
    }

    #[test]
    fn cross_endian_swaps() {
        // Encode little, decode declaring little on any machine.
        let mut w = CdrWriter::new(Endian::Little);
        w.put_u32(0x0A0B0C0D);
        let buf = w.into_bytes();
        assert_eq!(buf, [0x0D, 0x0C, 0x0B, 0x0A]);
        let mut r = CdrReader::new(&buf, Endian::Little);
        assert_eq!(r.get_u32().unwrap(), 0x0A0B0C0D);
    }

    #[test]
    fn offset_fragment_roundtrip() {
        // Fragment logically at stream offset 12: one u32 then f64.
        let mut w = CdrWriter::at_offset(Endian::native(), 12);
        w.put_u32(5);
        w.put_f64(2.5);
        let buf = w.into_bytes();
        let mut r = CdrReader::at_offset(&buf, Endian::native(), 12);
        assert_eq!(r.get_u32().unwrap(), 5);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert!(r.is_exhausted());
    }

    #[test]
    fn bulk_f64_roundtrip_both_endians() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 * 1.25 - 3.0).collect();
        for endian in [Endian::Big, Endian::Little] {
            let mut w = CdrWriter::new(endian);
            w.put_f64_slice(&data);
            let buf = w.into_bytes();
            let mut r = CdrReader::new(&buf, endian);
            let mut out = Vec::new();
            r.get_f64_slice(100, &mut out).unwrap();
            assert_eq!(out, data);
        }
    }

    #[test]
    fn empty_string_lenient() {
        let mut w = CdrWriter::new(Endian::Big);
        w.put_u32(0);
        let buf = w.into_bytes();
        let mut r = CdrReader::new(&buf, Endian::Big);
        assert_eq!(r.get_string().unwrap(), "");
    }
}
