//! Error type for CDR encoding and decoding.

use std::fmt;

/// Result alias used throughout the crate.
pub type CdrResult<T> = Result<T, CdrError>;

/// Errors raised while encoding or decoding a CDR stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdrError {
    /// The reader ran off the end of the buffer.
    ///
    /// Records how many bytes were `needed` versus how many `remained`.
    UnexpectedEof { needed: usize, remained: usize },
    /// A boolean octet held something other than 0 or 1.
    BadBool(u8),
    /// An endianness flag byte held something other than 0 or 1.
    BadEndianFlag(u8),
    /// A decoded string was not valid UTF-8.
    BadUtf8,
    /// A decoded enum discriminant did not name a variant.
    BadDiscriminant { type_name: &'static str, value: u32 },
    /// A sequence length exceeded the bound declared in IDL.
    BoundExceeded { bound: usize, len: usize },
    /// A length field implied more data than the message can hold.
    LengthOverflow(u64),
    /// A type code in the stream did not match the expected type.
    TypeMismatch {
        expected: &'static str,
        found: String,
    },
}

impl fmt::Display for CdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdrError::UnexpectedEof { needed, remained } => write!(
                f,
                "unexpected end of CDR stream: needed {needed} bytes, {remained} remained"
            ),
            CdrError::BadBool(b) => write!(f, "invalid boolean octet {b:#04x}"),
            CdrError::BadEndianFlag(b) => write!(f, "invalid endianness flag {b:#04x}"),
            CdrError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            CdrError::BadDiscriminant { type_name, value } => {
                write!(f, "invalid discriminant {value} for enum {type_name}")
            }
            CdrError::BoundExceeded { bound, len } => {
                write!(f, "sequence length {len} exceeds declared bound {bound}")
            }
            CdrError::LengthOverflow(n) => write!(f, "length field {n} overflows the message"),
            CdrError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for CdrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CdrError::UnexpectedEof {
            needed: 8,
            remained: 3,
        };
        let s = e.to_string();
        assert!(s.contains("needed 8"));
        assert!(s.contains("3 remained"));

        assert!(CdrError::BadBool(9).to_string().contains("0x09"));
        assert!(CdrError::BoundExceeded { bound: 4, len: 9 }
            .to_string()
            .contains("bound 4"));
    }
}
