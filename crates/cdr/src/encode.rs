//! The CDR encoder.
//!
//! A [`CdrWriter`] owns a growable byte buffer and tracks the stream
//! position so that every primitive lands on its natural alignment
//! boundary, exactly as CORBA CDR requires. The writer always encodes in
//! a chosen byte order (normally [`Endian::native`]); the order is
//! recorded out of band (e.g. in a GIOP header flag) so receivers can
//! translate.

use crate::{align_up, CdrResult, Endian};
use bytes::Bytes;

/// Pad byte written into alignment gaps. CORBA leaves gap contents
/// unspecified; using a constant keeps encodings deterministic, which the
/// test suite and the simulator rely on.
pub const PAD_BYTE: u8 = 0;

/// An aligning, endian-aware binary encoder.
#[derive(Debug, Clone)]
pub struct CdrWriter {
    buf: Vec<u8>,
    endian: Endian,
    /// Stream offset of `buf[0]`. Non-zero when encoding a fragment that
    /// will be appended to an existing stream (multi-port chunks), so
    /// alignment stays consistent with the final assembled stream.
    base: usize,
}

impl CdrWriter {
    /// Create a writer encoding in byte order `endian`.
    pub fn new(endian: Endian) -> CdrWriter {
        CdrWriter {
            buf: Vec::new(),
            endian,
            base: 0,
        }
    }

    /// Create a writer with a pre-reserved capacity.
    pub fn with_capacity(endian: Endian, cap: usize) -> CdrWriter {
        CdrWriter {
            buf: Vec::with_capacity(cap),
            endian,
            base: 0,
        }
    }

    /// Create a writer whose stream position starts at `base` instead of
    /// zero. Used when a fragment is encoded independently (by another
    /// computing thread) but must align as if it were at offset `base` of
    /// one logical stream.
    pub fn at_offset(endian: Endian, base: usize) -> CdrWriter {
        CdrWriter {
            buf: Vec::new(),
            endian,
            base,
        }
    }

    /// Byte order this writer encodes in.
    #[inline]
    pub fn endian(&self) -> Endian {
        self.endian
    }

    /// Current stream position (including any base offset).
    #[inline]
    pub fn position(&self) -> usize {
        self.base + self.buf.len()
    }

    /// Number of bytes written into this writer's own buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Insert pad bytes so the next write lands on `align`.
    pub fn align(&mut self, align: usize) {
        let pos = self.position();
        let target = align_up(pos, align);
        for _ in pos..target {
            self.buf.push(PAD_BYTE);
        }
    }

    /// Append raw bytes without alignment.
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a single octet (1-byte aligned by definition).
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a boolean as an octet (0 or 1).
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append an `i8`.
    #[inline]
    pub fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Append a `u16` aligned to 2.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.align(2);
        let b = match self.endian {
            Endian::Big => v.to_be_bytes(),
            Endian::Little => v.to_le_bytes(),
        };
        self.put_bytes(&b);
    }

    /// Append an `i16` aligned to 2.
    #[inline]
    pub fn put_i16(&mut self, v: i16) {
        self.put_u16(v as u16);
    }

    /// Append a `u32` aligned to 4.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.align(4);
        let b = match self.endian {
            Endian::Big => v.to_be_bytes(),
            Endian::Little => v.to_le_bytes(),
        };
        self.put_bytes(&b);
    }

    /// Append an `i32` aligned to 4. (CORBA `long`.)
    #[inline]
    pub fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }

    /// Append a `u64` aligned to 8.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.align(8);
        let b = match self.endian {
            Endian::Big => v.to_be_bytes(),
            Endian::Little => v.to_le_bytes(),
        };
        self.put_bytes(&b);
    }

    /// Append an `i64` aligned to 8. (CORBA `long long`.)
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Append an `f32` aligned to 4. (CORBA `float`.)
    #[inline]
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` aligned to 8. (CORBA `double`.)
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a CORBA string: `u32` length *including* the terminating
    /// NUL, then the bytes, then the NUL.
    pub fn put_string(&mut self, s: &str) {
        self.put_u32(s.len() as u32 + 1);
        self.put_bytes(s.as_bytes());
        self.put_u8(0);
    }

    /// Append a slice of `f64` in bulk.
    ///
    /// This is the hot path for distributed sequences of `double`: after
    /// a single 8-byte alignment the elements are copied as one block
    /// (with per-element byteswap only if the target order differs from
    /// native), matching how a production ORB would marshal an array of
    /// primitives.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.align(8);
        if self.endian == Endian::native() {
            // Same order: one bulk copy.
            let bytes = crate::byteswap::f64_slice_as_bytes(v);
            self.put_bytes(bytes);
        } else {
            self.buf.reserve(v.len() * 8);
            for &x in v {
                let b = match self.endian {
                    Endian::Big => x.to_bits().to_be_bytes(),
                    Endian::Little => x.to_bits().to_le_bytes(),
                };
                self.buf.extend_from_slice(&b);
            }
        }
    }

    /// Append a slice of `i32` in bulk (same strategy as
    /// [`CdrWriter::put_f64_slice`]).
    pub fn put_i32_slice(&mut self, v: &[i32]) {
        self.align(4);
        if self.endian == Endian::native() {
            let bytes = crate::byteswap::i32_slice_as_bytes(v);
            self.put_bytes(bytes);
        } else {
            self.buf.reserve(v.len() * 4);
            for &x in v {
                let b = match self.endian {
                    Endian::Big => x.to_be_bytes(),
                    Endian::Little => x.to_le_bytes(),
                };
                self.buf.extend_from_slice(&b);
            }
        }
    }

    /// Encode a value implementing [`crate::Encode`].
    pub fn put<T: crate::Encode + ?Sized>(&mut self, v: &T) -> CdrResult<()> {
        v.encode(self)
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Consume the writer and return a cheaply cloneable [`Bytes`].
    pub fn into_shared(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_inserts_padding() {
        let mut w = CdrWriter::new(Endian::Big);
        w.put_u8(1);
        w.put_u32(2); // 3 pad bytes
        assert_eq!(w.len(), 8);
        assert_eq!(&w.as_slice()[..4], &[1, 0, 0, 0]);
        w.put_u8(3);
        w.put_f64(1.0); // 7 pad bytes to reach offset 16
        assert_eq!(w.len(), 24);
    }

    #[test]
    fn big_endian_layout_matches_corba() {
        let mut w = CdrWriter::new(Endian::Big);
        w.put_u32(0x0102_0304);
        assert_eq!(w.as_slice(), &[1, 2, 3, 4]);
        let mut w = CdrWriter::new(Endian::Little);
        w.put_u32(0x0102_0304);
        assert_eq!(w.as_slice(), &[4, 3, 2, 1]);
    }

    #[test]
    fn string_has_nul_and_length() {
        let mut w = CdrWriter::new(Endian::Big);
        w.put_string("ab");
        // length 3 (includes NUL) + 'a' 'b' '\0'
        assert_eq!(w.as_slice(), &[0, 0, 0, 3, b'a', b'b', 0]);
    }

    #[test]
    fn offset_writer_aligns_relative_to_base() {
        // At base 4, the first f64 must pad 4 bytes to reach offset 8.
        let mut w = CdrWriter::at_offset(Endian::native(), 4);
        w.put_f64(1.0);
        assert_eq!(w.len(), 12);
        assert_eq!(w.position(), 16);
    }

    #[test]
    fn bulk_f64_matches_elementwise() {
        let data = [1.5f64, -2.25, 1e300, 0.0];
        for endian in [Endian::Big, Endian::Little] {
            let mut bulk = CdrWriter::new(endian);
            bulk.put_f64_slice(&data);
            let mut one = CdrWriter::new(endian);
            for &x in &data {
                one.put_f64(x);
            }
            assert_eq!(bulk.as_slice(), one.as_slice(), "endian {endian:?}");
        }
    }

    #[test]
    fn bulk_i32_matches_elementwise() {
        let data = [1i32, -7, i32::MAX, i32::MIN];
        for endian in [Endian::Big, Endian::Little] {
            let mut bulk = CdrWriter::new(endian);
            bulk.put_i32_slice(&data);
            let mut one = CdrWriter::new(endian);
            for &x in &data {
                one.put_i32(x);
            }
            assert_eq!(bulk.as_slice(), one.as_slice());
        }
    }
}
