//! Runtime type descriptions (CORBA `TypeCode`, abridged).
//!
//! PARDIS request headers describe argument types so that a server can
//! sanity-check a request against the registered operation signature and
//! so the dynamic-invocation path in `pardis-core` can interpret
//! arguments without compiled stubs. This is a compact subset of the
//! CORBA TypeCode system sufficient for the IDL subset we compile.

use crate::{CdrError, CdrReader, CdrResult, CdrWriter, Decode, Encode};

/// A runtime description of an IDL type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeCode {
    /// `void` (operation return only).
    Void,
    Boolean,
    Octet,
    Char,
    Short,
    UShort,
    Long,
    ULong,
    LongLong,
    ULongLong,
    Float,
    Double,
    String,
    /// `sequence<T>` with optional bound.
    Sequence {
        elem: Box<TypeCode>,
        bound: Option<u32>,
    },
    /// PARDIS `dsequence<T>` with optional bound; distribution templates
    /// are carried separately (they are runtime state, not type).
    DSequence {
        elem: Box<TypeCode>,
        bound: Option<u32>,
    },
    /// A named struct with ordered members.
    Struct {
        name: String,
        members: Vec<(String, TypeCode)>,
    },
    /// A named enum with its variant labels.
    Enum {
        name: String,
        variants: Vec<String>,
    },
    /// An object reference to the named interface.
    ObjRef {
        interface: String,
    },
}

/// Discriminants used on the wire.
#[repr(u32)]
enum Tag {
    Void = 0,
    Boolean = 1,
    Octet = 2,
    Char = 3,
    Short = 4,
    UShort = 5,
    Long = 6,
    ULong = 7,
    LongLong = 8,
    ULongLong = 9,
    Float = 10,
    Double = 11,
    Str = 12,
    Sequence = 13,
    DSequence = 14,
    Struct = 15,
    Enum = 16,
    ObjRef = 17,
}

impl TypeCode {
    /// Fixed size in bytes of one element, if the type has one (i.e. it
    /// is a primitive). Variable-size types return `None`.
    pub fn primitive_size(&self) -> Option<usize> {
        Some(match self {
            TypeCode::Boolean | TypeCode::Octet | TypeCode::Char => 1,
            TypeCode::Short | TypeCode::UShort => 2,
            TypeCode::Long | TypeCode::ULong | TypeCode::Float => 4,
            TypeCode::LongLong | TypeCode::ULongLong | TypeCode::Double => 8,
            _ => return None,
        })
    }

    /// Natural CDR alignment of the type, if primitive.
    pub fn primitive_align(&self) -> Option<usize> {
        self.primitive_size()
    }

    /// Whether this is a `dsequence` (distributed argument).
    pub fn is_distributed(&self) -> bool {
        matches!(self, TypeCode::DSequence { .. })
    }

    /// Human-readable IDL-ish rendering, used in diagnostics.
    pub fn idl_name(&self) -> String {
        match self {
            TypeCode::Void => "void".into(),
            TypeCode::Boolean => "boolean".into(),
            TypeCode::Octet => "octet".into(),
            TypeCode::Char => "char".into(),
            TypeCode::Short => "short".into(),
            TypeCode::UShort => "unsigned short".into(),
            TypeCode::Long => "long".into(),
            TypeCode::ULong => "unsigned long".into(),
            TypeCode::LongLong => "long long".into(),
            TypeCode::ULongLong => "unsigned long long".into(),
            TypeCode::Float => "float".into(),
            TypeCode::Double => "double".into(),
            TypeCode::String => "string".into(),
            TypeCode::Sequence { elem, bound } => match bound {
                Some(b) => format!("sequence<{}, {}>", elem.idl_name(), b),
                None => format!("sequence<{}>", elem.idl_name()),
            },
            TypeCode::DSequence { elem, bound } => match bound {
                Some(b) => format!("dsequence<{}, {}>", elem.idl_name(), b),
                None => format!("dsequence<{}>", elem.idl_name()),
            },
            TypeCode::Struct { name, .. } => name.clone(),
            TypeCode::Enum { name, .. } => name.clone(),
            TypeCode::ObjRef { interface } => interface.clone(),
        }
    }
}

impl Encode for TypeCode {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        match self {
            TypeCode::Void => w.put_u32(Tag::Void as u32),
            TypeCode::Boolean => w.put_u32(Tag::Boolean as u32),
            TypeCode::Octet => w.put_u32(Tag::Octet as u32),
            TypeCode::Char => w.put_u32(Tag::Char as u32),
            TypeCode::Short => w.put_u32(Tag::Short as u32),
            TypeCode::UShort => w.put_u32(Tag::UShort as u32),
            TypeCode::Long => w.put_u32(Tag::Long as u32),
            TypeCode::ULong => w.put_u32(Tag::ULong as u32),
            TypeCode::LongLong => w.put_u32(Tag::LongLong as u32),
            TypeCode::ULongLong => w.put_u32(Tag::ULongLong as u32),
            TypeCode::Float => w.put_u32(Tag::Float as u32),
            TypeCode::Double => w.put_u32(Tag::Double as u32),
            TypeCode::String => w.put_u32(Tag::Str as u32),
            TypeCode::Sequence { elem, bound } => {
                w.put_u32(Tag::Sequence as u32);
                elem.encode(w)?;
                w.put_u32(bound.map_or(0, |b| b));
            }
            TypeCode::DSequence { elem, bound } => {
                w.put_u32(Tag::DSequence as u32);
                elem.encode(w)?;
                w.put_u32(bound.map_or(0, |b| b));
            }
            TypeCode::Struct { name, members } => {
                w.put_u32(Tag::Struct as u32);
                w.put_string(name);
                w.put_u32(members.len() as u32);
                for (mname, mtc) in members {
                    w.put_string(mname);
                    mtc.encode(w)?;
                }
            }
            TypeCode::Enum { name, variants } => {
                w.put_u32(Tag::Enum as u32);
                w.put_string(name);
                variants.encode(w)?;
            }
            TypeCode::ObjRef { interface } => {
                w.put_u32(Tag::ObjRef as u32);
                w.put_string(interface);
            }
        }
        Ok(())
    }
}

impl Decode for TypeCode {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        let tag = r.get_u32()?;
        Ok(match tag {
            x if x == Tag::Void as u32 => TypeCode::Void,
            x if x == Tag::Boolean as u32 => TypeCode::Boolean,
            x if x == Tag::Octet as u32 => TypeCode::Octet,
            x if x == Tag::Char as u32 => TypeCode::Char,
            x if x == Tag::Short as u32 => TypeCode::Short,
            x if x == Tag::UShort as u32 => TypeCode::UShort,
            x if x == Tag::Long as u32 => TypeCode::Long,
            x if x == Tag::ULong as u32 => TypeCode::ULong,
            x if x == Tag::LongLong as u32 => TypeCode::LongLong,
            x if x == Tag::ULongLong as u32 => TypeCode::ULongLong,
            x if x == Tag::Float as u32 => TypeCode::Float,
            x if x == Tag::Double as u32 => TypeCode::Double,
            x if x == Tag::Str as u32 => TypeCode::String,
            x if x == Tag::Sequence as u32 => {
                let elem = Box::new(TypeCode::decode(r)?);
                let b = r.get_u32()?;
                TypeCode::Sequence {
                    elem,
                    bound: if b == 0 { None } else { Some(b) },
                }
            }
            x if x == Tag::DSequence as u32 => {
                let elem = Box::new(TypeCode::decode(r)?);
                let b = r.get_u32()?;
                TypeCode::DSequence {
                    elem,
                    bound: if b == 0 { None } else { Some(b) },
                }
            }
            x if x == Tag::Struct as u32 => {
                let name = r.get_string()?;
                let n = r.get_u32()? as usize;
                if n > r.remaining() {
                    return Err(CdrError::LengthOverflow(n as u64));
                }
                let mut members = Vec::with_capacity(n);
                for _ in 0..n {
                    let mname = r.get_string()?;
                    let mtc = TypeCode::decode(r)?;
                    members.push((mname, mtc));
                }
                TypeCode::Struct { name, members }
            }
            x if x == Tag::Enum as u32 => TypeCode::Enum {
                name: r.get_string()?,
                variants: Vec::<String>::decode(r)?,
            },
            x if x == Tag::ObjRef as u32 => TypeCode::ObjRef {
                interface: r.get_string()?,
            },
            other => {
                return Err(CdrError::BadDiscriminant {
                    type_name: "TypeCode",
                    value: other,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Endian;

    fn roundtrip(tc: TypeCode) {
        let mut w = CdrWriter::new(Endian::native());
        tc.encode(&mut w).unwrap();
        let buf = w.into_bytes();
        let mut r = CdrReader::new(&buf, Endian::native());
        assert_eq!(TypeCode::decode(&mut r).unwrap(), tc);
    }

    #[test]
    fn primitive_typecodes_roundtrip() {
        for tc in [
            TypeCode::Void,
            TypeCode::Boolean,
            TypeCode::Octet,
            TypeCode::Long,
            TypeCode::ULongLong,
            TypeCode::Double,
            TypeCode::String,
        ] {
            roundtrip(tc);
        }
    }

    #[test]
    fn composite_typecodes_roundtrip() {
        roundtrip(TypeCode::DSequence {
            elem: Box::new(TypeCode::Double),
            bound: Some(1024),
        });
        roundtrip(TypeCode::Sequence {
            elem: Box::new(TypeCode::Sequence {
                elem: Box::new(TypeCode::Octet),
                bound: None,
            }),
            bound: None,
        });
        roundtrip(TypeCode::Struct {
            name: "Point".into(),
            members: vec![
                ("x".into(), TypeCode::Double),
                ("y".into(), TypeCode::Double),
            ],
        });
        roundtrip(TypeCode::Enum {
            name: "Color".into(),
            variants: vec!["RED".into(), "GREEN".into()],
        });
        roundtrip(TypeCode::ObjRef {
            interface: "diff_object".into(),
        });
    }

    #[test]
    fn sizes_and_flags() {
        assert_eq!(TypeCode::Double.primitive_size(), Some(8));
        assert_eq!(TypeCode::Short.primitive_size(), Some(2));
        assert_eq!(TypeCode::String.primitive_size(), None);
        assert!(TypeCode::DSequence {
            elem: Box::new(TypeCode::Double),
            bound: None
        }
        .is_distributed());
        assert!(!TypeCode::Long.is_distributed());
    }

    #[test]
    fn idl_names() {
        assert_eq!(
            TypeCode::DSequence {
                elem: Box::new(TypeCode::Double),
                bound: Some(1024)
            }
            .idl_name(),
            "dsequence<double, 1024>"
        );
        assert_eq!(TypeCode::UShort.idl_name(), "unsigned short");
    }

    #[test]
    fn bad_tag_rejected() {
        let mut w = CdrWriter::new(Endian::native());
        w.put_u32(999);
        let buf = w.into_bytes();
        let mut r = CdrReader::new(&buf, Endian::native());
        assert!(matches!(
            TypeCode::decode(&mut r),
            Err(CdrError::BadDiscriminant { .. })
        ));
    }
}
