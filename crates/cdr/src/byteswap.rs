//! Data translation helpers.
//!
//! The PARDIS paper (§3.3) points out that the advantage of multi-port
//! transfer grows "in cases which require data translation (not present
//! in our experiments) or more sophisticated marshaling", because
//! translation work is divided among all computing threads. This module
//! supplies the translation primitives: bulk reinterpretation of
//! primitive slices as bytes (the zero-translation path) and in-place
//! byte swapping (the translation path), which the benchmark harness
//! ablates.
//!
//! The read-side byte view ([`as_byte_slice`]) is the one documented
//! `unsafe` reinterpretation in the workspace; every decode goes
//! through safe byte-by-byte conversions — the copies model real
//! marshaling work anyway.

/// Marker for primitive types whose in-memory representation is plain
/// bytes: inhabited, no padding, every bit pattern meaningful when
/// read back as bytes.
///
/// # Safety
///
/// Implementors guarantee the above; [`as_byte_slice`] relies on it to
/// reinterpret `&[T]` as `&[u8]`.
pub unsafe trait Pod: Copy {}

// SAFETY: primitive numeric types are inhabited and padding-free.
unsafe impl Pod for f64 {}
// SAFETY: as above.
unsafe impl Pod for i32 {}
// SAFETY: as above.
unsafe impl Pod for u8 {}
// SAFETY: as above.
unsafe impl Pod for u64 {}

/// View a slice of plain-old-data values as its native-order byte
/// representation. Allocation-free: the returned slice borrows `v`.
///
/// This is the *single* byte-view reinterpretation in the workspace
/// (bytemuck would provide it; one well-understood unsafe block beats
/// a dependency). Everything else goes through safe byte-by-byte
/// conversions — the copies model real marshaling work anyway.
#[inline]
pub fn as_byte_slice<T: Pod>(v: &[T]) -> &[u8] {
    // SAFETY: `T: Pod` rules out padding and uninhabited types, `u8`'s
    // alignment of 1 is always satisfied, and the length is exactly
    // the slice's byte size — so the view covers only memory owned by
    // `v`, for the duration of the borrow the signature ties it to.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

/// View a `f64` slice as its native-order byte representation.
#[inline]
pub fn f64_slice_as_bytes(v: &[f64]) -> &[u8] {
    as_byte_slice(v)
}

/// View an `i32` slice as its native-order byte representation.
#[inline]
pub fn i32_slice_as_bytes(v: &[i32]) -> &[u8] {
    as_byte_slice(v)
}

/// Append `bytes` (native order, length a multiple of 8) to `out` as
/// `f64` values.
#[inline]
pub fn bytes_to_f64(bytes: &[u8], out: &mut Vec<f64>) {
    debug_assert_eq!(bytes.len() % 8, 0);
    out.extend(bytes.chunks_exact(8).map(|c| {
        let mut a = [0u8; 8];
        a.copy_from_slice(c);
        f64::from_ne_bytes(a)
    }));
}

/// Append `bytes` (native order, length a multiple of 4) to `out` as
/// `i32` values.
#[inline]
pub fn bytes_to_i32(bytes: &[u8], out: &mut Vec<i32>) {
    debug_assert_eq!(bytes.len() % 4, 0);
    out.extend(bytes.chunks_exact(4).map(|c| {
        let mut a = [0u8; 4];
        a.copy_from_slice(c);
        i32::from_ne_bytes(a)
    }));
}

/// Swap the byte order of every 8-byte word in `buf` in place.
///
/// This is the "data translation" workload: a receiver whose byte order
/// differs from the sender's must touch every byte of the payload.
pub fn swap_f64_bytes_in_place(buf: &mut [u8]) {
    debug_assert_eq!(buf.len() % 8, 0);
    for chunk in buf.chunks_exact_mut(8) {
        chunk.reverse();
    }
}

/// Swap the byte order of every 4-byte word in `buf` in place.
pub fn swap_i32_bytes_in_place(buf: &mut [u8]) {
    debug_assert_eq!(buf.len() % 4, 0);
    for chunk in buf.chunks_exact_mut(4) {
        chunk.reverse();
    }
}

/// Swap every element of an `f64` slice in place (translation applied on
/// decoded values rather than on the wire buffer).
pub fn swap_f64_in_place(v: &mut [f64]) {
    for x in v {
        *x = f64::from_bits(x.to_bits().swap_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_bytes_roundtrip() {
        let data = [1.0f64, -2.5, 1e-300, f64::INFINITY];
        let bytes = f64_slice_as_bytes(&data);
        assert_eq!(bytes.len(), 32);
        let mut back = Vec::new();
        bytes_to_f64(bytes, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn i32_bytes_roundtrip() {
        let data = [0i32, -1, i32::MAX, 42];
        let bytes = i32_slice_as_bytes(&data);
        let mut back = Vec::new();
        bytes_to_i32(bytes, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn double_swap_is_identity() {
        let data = [3.25f64, -0.5, 9.75];
        let mut buf = f64_slice_as_bytes(&data).to_vec();
        swap_f64_bytes_in_place(&mut buf);
        swap_f64_bytes_in_place(&mut buf);
        let mut back = Vec::new();
        bytes_to_f64(&buf, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn swap_matches_value_swap() {
        let mut vals = [1.5f64, 2.5];
        let mut buf = f64_slice_as_bytes(&vals).to_vec();
        swap_f64_bytes_in_place(&mut buf);
        swap_f64_in_place(&mut vals);
        let mut back = Vec::new();
        bytes_to_f64(&buf, &mut back);
        assert_eq!(back, vals);
    }

    #[test]
    fn i32_swap_swaps() {
        let mut buf = vec![1u8, 2, 3, 4];
        swap_i32_bytes_in_place(&mut buf);
        assert_eq!(buf, [4, 3, 2, 1]);
    }
}
