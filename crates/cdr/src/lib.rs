//! # pardis-cdr — Common Data Representation for PARDIS
//!
//! CORBA transports arguments in *CDR* (Common Data Representation): a
//! binary encoding in which every primitive is aligned to its natural
//! boundary and the byte order of the *sender* is recorded in the message
//! header, so that a receiver on a same-endian machine can decode without
//! any data translation, and a receiver on an other-endian machine swaps
//! bytes on read ("receiver makes right").
//!
//! PARDIS (Keahey & Gannon, HPDC 1997) marshals both request headers and
//! distributed-sequence payloads through this layer. The paper notes in
//! §3.3 that the benefit of multi-port transfer is *amplified* "in cases
//! which require data translation … or more sophisticated marshaling";
//! the [`byteswap`] module implements that translation path and the
//! benchmark harness ablates it.
//!
//! ## Quick example
//!
//! ```
//! use pardis_cdr::{CdrWriter, CdrReader, Encode, Decode, Endian};
//!
//! let mut w = CdrWriter::new(Endian::native());
//! 42u32.encode(&mut w).unwrap();
//! "diffusion".to_string().encode(&mut w).unwrap();
//! vec![1.0f64, 2.0, 3.0].encode(&mut w).unwrap();
//!
//! let buf = w.into_bytes();
//! let mut r = CdrReader::new(&buf, Endian::native());
//! assert_eq!(u32::decode(&mut r).unwrap(), 42);
//! assert_eq!(String::decode(&mut r).unwrap(), "diffusion");
//! assert_eq!(Vec::<f64>::decode(&mut r).unwrap(), vec![1.0, 2.0, 3.0]);
//! ```

pub mod byteswap;
pub mod decode;
pub mod encode;
pub mod error;
pub mod traits;
pub mod typecode;

pub use decode::CdrReader;
pub use encode::CdrWriter;
pub use error::{CdrError, CdrResult};
pub use traits::{Decode, Encode};
pub use typecode::TypeCode;

/// Byte order of an encoded stream.
///
/// CDR streams are tagged with the sender's byte order; decoding on a
/// machine with the other order performs byte swapping ("receiver makes
/// right").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endian {
    /// Most significant byte first.
    Big,
    /// Least significant byte first.
    Little,
}

impl Endian {
    /// The byte order of the machine we are running on.
    #[inline]
    pub fn native() -> Endian {
        if cfg!(target_endian = "big") {
            Endian::Big
        } else {
            Endian::Little
        }
    }

    /// The opposite byte order — used by tests and the data-translation
    /// ablation to force the swap path.
    #[inline]
    pub fn swapped(self) -> Endian {
        match self {
            Endian::Big => Endian::Little,
            Endian::Little => Endian::Big,
        }
    }

    /// Whether decoding a stream of this order on the current machine
    /// requires byte swapping.
    #[inline]
    pub fn needs_swap(self) -> bool {
        self != Endian::native()
    }

    /// Flag byte used in GIOP-style headers (0 = big, 1 = little).
    #[inline]
    pub fn flag(self) -> u8 {
        match self {
            Endian::Big => 0,
            Endian::Little => 1,
        }
    }

    /// Parse the GIOP-style flag byte.
    pub fn from_flag(flag: u8) -> CdrResult<Endian> {
        match flag {
            0 => Ok(Endian::Big),
            1 => Ok(Endian::Little),
            other => Err(CdrError::BadEndianFlag(other)),
        }
    }
}

/// Round `pos` up to the next multiple of `align` (a power of two).
///
/// CDR aligns every primitive to its natural boundary relative to the
/// start of the stream.
#[inline]
pub fn align_up(pos: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (pos + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 4), 12);
        assert_eq!(align_up(13, 1), 13);
        assert_eq!(align_up(15, 2), 16);
    }

    #[test]
    fn endian_flag_roundtrip() {
        assert_eq!(Endian::from_flag(Endian::Big.flag()).unwrap(), Endian::Big);
        assert_eq!(
            Endian::from_flag(Endian::Little.flag()).unwrap(),
            Endian::Little
        );
        assert!(Endian::from_flag(7).is_err());
    }

    #[test]
    fn native_is_not_swapped() {
        assert!(!Endian::native().needs_swap());
        assert!(Endian::native().swapped().needs_swap());
    }
}
