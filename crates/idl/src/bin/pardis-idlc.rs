//! `pardis-idlc` — the PARDIS IDL compiler command-line driver.
//!
//! ```text
//! pardis-idlc input.idl              # generated Rust to stdout
//! pardis-idlc input.idl -o out.rs    # ... to a file
//! pardis-idlc --check input.idl      # parse + semantic check only
//! pardis-idlc --emit-idl input.idl   # normalized/pretty-printed IDL
//! pardis-idlc --emit-doc input.idl   # Markdown interface reference
//! pardis-idlc --analyze input.idl    # distribution lints, JSON to stdout
//! ```
//!
//! Exit status: `0` clean (warnings do not fail unless
//! `--deny-warnings`), `1` analysis findings at error severity (or any
//! finding under `--deny-warnings`), `2` usage, I/O, or parse/semantic
//! failure.

use pardis_idl::lint::LintOptions;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: pardis-idlc [--check|--emit-idl|--emit-doc|--analyze] \
                     [--deny-warnings] [--allow PAxxx] [-o OUT.rs] INPUT.idl";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut check_only = false;
    let mut emit_idl = false;
    let mut emit_doc = false;
    let mut analyze = false;
    let mut deny_warnings = false;
    let mut allow: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("pardis-idlc: -o needs a file name");
                    return ExitCode::from(2);
                }
                output = Some(args[i].clone());
            }
            "--check" => check_only = true,
            "--emit-idl" => emit_idl = true,
            "--emit-doc" => emit_doc = true,
            "--analyze" => analyze = true,
            "--deny-warnings" => deny_warnings = true,
            "--allow" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("pardis-idlc: --allow needs a lint code (e.g. PA004)");
                    return ExitCode::from(2);
                }
                allow.extend(args[i].split(',').map(|c| c.trim().to_string()));
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("pardis-idlc: unknown option `{other}`");
                return ExitCode::from(2);
            }
            other => {
                if input.replace(other.to_string()).is_some() {
                    eprintln!("pardis-idlc: more than one input file");
                    return ExitCode::from(2);
                }
            }
        }
        i += 1;
    }
    let input = match input {
        Some(f) => f,
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pardis-idlc: cannot read {input}: {e}");
            return ExitCode::from(2);
        }
    };

    if analyze {
        return run_analyze(&source, &input, &allow, deny_warnings);
    }

    if check_only {
        return match pardis_idl::parse_and_check(&source, &input) {
            Ok(_) => ExitCode::SUCCESS,
            Err(diags) => {
                eprintln!("{diags}");
                ExitCode::from(2)
            }
        };
    }

    if emit_idl || emit_doc {
        return match pardis_idl::parse_and_check(&source, &input) {
            Ok(model) => {
                if emit_idl {
                    print!("{}", pardis_idl::pretty::print_spec(&model.spec));
                }
                if emit_doc {
                    print!("{}", pardis_idl::codegen::doc::generate(&model, &input));
                }
                ExitCode::SUCCESS
            }
            Err(diags) => {
                eprintln!("{diags}");
                ExitCode::from(2)
            }
        };
    }

    match pardis_idl::compile_to_rust(&source, &input) {
        Ok(code) => match output {
            None => {
                print!("{code}");
                ExitCode::SUCCESS
            }
            Some(path) => {
                match std::fs::File::create(&path).and_then(|mut f| f.write_all(code.as_bytes())) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("pardis-idlc: cannot write {path}: {e}");
                        ExitCode::from(2)
                    }
                }
            }
        },
        Err(diags) => {
            eprintln!("{diags}");
            ExitCode::from(2)
        }
    }
}

/// `--analyze`: run the PA lints. Machine-readable JSON goes to
/// stdout, human-readable findings to stderr.
fn run_analyze(source: &str, input: &str, allow: &[String], deny_warnings: bool) -> ExitCode {
    let model = match pardis_idl::parse_and_check(source, input) {
        Ok(m) => m,
        Err(diags) => {
            // The file does not even compile; report that, still in
            // schema, and exit 2 (the findings are not lints).
            println!("{}", diags.to_json());
            eprintln!("{diags}");
            return ExitCode::from(2);
        }
    };
    let opts = LintOptions {
        allow: allow.to_vec(),
    };
    let findings = model.lint(&opts);
    println!("{}", findings.to_json());
    if findings.is_empty() {
        return ExitCode::SUCCESS;
    }
    eprintln!("{findings}");
    eprintln!(
        "pardis-idlc: {} error(s), {} warning(s)",
        findings.error_count(),
        findings.warning_count()
    );
    if findings.has_errors() || (deny_warnings && findings.has_warnings()) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
