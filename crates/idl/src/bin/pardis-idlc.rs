//! `pardis-idlc` — the PARDIS IDL compiler command-line driver.
//!
//! ```text
//! pardis-idlc input.idl              # generated Rust to stdout
//! pardis-idlc input.idl -o out.rs    # ... to a file
//! pardis-idlc --check input.idl      # parse + semantic check only
//! pardis-idlc --emit-idl input.idl   # normalized/pretty-printed IDL
//! pardis-idlc --emit-doc input.idl   # Markdown interface reference
//! ```

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut check_only = false;
    let mut emit_idl = false;
    let mut emit_doc = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("pardis-idlc: -o needs a file name");
                    return ExitCode::from(2);
                }
                output = Some(args[i].clone());
            }
            "--check" => check_only = true,
            "--emit-idl" => emit_idl = true,
            "--emit-doc" => emit_doc = true,
            "-h" | "--help" => {
                println!(
                    "usage: pardis-idlc [--check|--emit-idl|--emit-doc] [-o OUT.rs] INPUT.idl"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("pardis-idlc: unknown option `{other}`");
                return ExitCode::from(2);
            }
            other => {
                if input.replace(other.to_string()).is_some() {
                    eprintln!("pardis-idlc: more than one input file");
                    return ExitCode::from(2);
                }
            }
        }
        i += 1;
    }
    let input = match input {
        Some(f) => f,
        None => {
            eprintln!("usage: pardis-idlc [--check|--emit-idl|--emit-doc] [-o OUT.rs] INPUT.idl");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pardis-idlc: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if check_only {
        return match pardis_idl::parse_and_check(&source, &input) {
            Ok(_) => ExitCode::SUCCESS,
            Err(diags) => {
                eprintln!("{diags}");
                ExitCode::FAILURE
            }
        };
    }

    if emit_idl || emit_doc {
        return match pardis_idl::parse_and_check(&source, &input) {
            Ok(model) => {
                if emit_idl {
                    print!("{}", pardis_idl::pretty::print_spec(&model.spec));
                }
                if emit_doc {
                    print!("{}", pardis_idl::codegen::doc::generate(&model, &input));
                }
                ExitCode::SUCCESS
            }
            Err(diags) => {
                eprintln!("{diags}");
                ExitCode::FAILURE
            }
        };
    }

    match pardis_idl::compile_to_rust(&source, &input) {
        Ok(code) => match output {
            None => {
                print!("{code}");
                ExitCode::SUCCESS
            }
            Some(path) => {
                match std::fs::File::create(&path).and_then(|mut f| f.write_all(code.as_bytes())) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("pardis-idlc: cannot write {path}: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
        },
        Err(diags) => {
            eprintln!("{diags}");
            ExitCode::FAILURE
        }
    }
}
