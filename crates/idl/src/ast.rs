//! Abstract syntax for the IDL subset.

use crate::diag::Pos;

/// A whole specification (one `.idl` file).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Spec {
    /// Top-level definitions in source order.
    pub defs: Vec<Def>,
    /// `#pragma` directives, in source order (wherever they appeared).
    pub pragmas: Vec<Pragma>,
}

/// One `#pragma` directive. The compiler records them verbatim; the
/// analyzer interprets the `pardis` namespace (`#pragma pardis
/// threads N`, `#pragma pardis allow PA001,PA002`).
#[derive(Debug, Clone, PartialEq)]
pub struct Pragma {
    /// The directive text after `#pragma`, trimmed.
    pub text: String,
    pub pos: Pos,
}

/// A definition at file or module scope.
#[derive(Debug, Clone, PartialEq)]
pub enum Def {
    Module(Module),
    Interface(Interface),
    Typedef(Typedef),
    Struct(StructDef),
    Enum(EnumDef),
    Const(ConstDef),
    Exception(ExceptDef),
}

impl Def {
    /// The defined name.
    pub fn name(&self) -> &str {
        match self {
            Def::Module(m) => &m.name,
            Def::Interface(i) => &i.name,
            Def::Typedef(t) => &t.name,
            Def::Struct(s) => &s.name,
            Def::Enum(e) => &e.name,
            Def::Const(c) => &c.name,
            Def::Exception(e) => &e.name,
        }
    }

    /// Where the definition begins.
    pub fn pos(&self) -> Pos {
        match self {
            Def::Module(m) => m.pos,
            Def::Interface(i) => i.pos,
            Def::Typedef(t) => t.pos,
            Def::Struct(s) => s.pos,
            Def::Enum(e) => e.pos,
            Def::Const(c) => c.pos,
            Def::Exception(e) => e.pos,
        }
    }
}

/// `module name { ... };`
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    pub name: String,
    pub defs: Vec<Def>,
    pub pos: Pos,
}

/// `interface name [: base, ...] { ... };`
#[derive(Debug, Clone, PartialEq)]
pub struct Interface {
    pub name: String,
    pub bases: Vec<String>,
    pub ops: Vec<OpDecl>,
    pub attrs: Vec<AttrDecl>,
    pub pos: Pos,
}

/// One operation declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct OpDecl {
    pub name: String,
    /// True for `oneway` operations (no reply).
    pub oneway: bool,
    /// True for operations declared `idempotent`: safe to re-invoke
    /// after a transport fault, so client retry policies apply.
    pub idempotent: bool,
    pub ret: Type,
    pub params: Vec<Param>,
    /// Names of exceptions listed in `raises(...)`.
    pub raises: Vec<String>,
    pub pos: Pos,
}

/// One operation parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub dir: ParamDir,
    pub ty: Type,
    pub name: String,
    pub pos: Pos,
}

/// Parameter passing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamDir {
    In,
    Out,
    InOut,
}

/// `readonly attribute T name;` / `attribute T name;`
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDecl {
    pub readonly: bool,
    pub ty: Type,
    pub name: String,
    pub pos: Pos,
}

/// A type expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    Void,
    Boolean,
    Char,
    Octet,
    Short,
    UShort,
    Long,
    ULong,
    LongLong,
    ULongLong,
    Float,
    Double,
    String_,
    /// `sequence<T[, bound]>`
    Sequence(Box<Type>, Option<u64>),
    /// `dsequence<T[, bound][, dist]>` — the PARDIS distributed sequence.
    DSequence(Box<Type>, Option<u64>, Option<DistAnnot>),
    /// A (possibly scoped) reference to a user-defined type.
    Named(String),
}

/// Distribution annotation inside a `dsequence` type: the paper's
/// `dsequence<double, 1024, block>`, extended with weighted
/// proportions (`dsequence<double, 1024, proportions<2, 1, 1>>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistAnnot {
    /// Uniform blockwise (also the default when unspecified).
    Block,
    /// Weighted blockwise: thread `i` owns a share proportional to
    /// weight `i`; the weight count fixes the thread count.
    Proportions(Vec<u64>),
}

impl Type {
    /// Whether the type (syntactically) is distributed. Typedef
    /// indirection is resolved during semantic analysis.
    pub fn is_dsequence(&self) -> bool {
        matches!(self, Type::DSequence(..))
    }
}

/// `typedef T name;`
#[derive(Debug, Clone, PartialEq)]
pub struct Typedef {
    pub name: String,
    pub ty: Type,
    pub pos: Pos,
}

/// `struct name { T member; ... };`
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    pub name: String,
    pub members: Vec<(String, Type, Pos)>,
    pub pos: Pos,
}

/// `enum name { A, B, ... };`
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDef {
    pub name: String,
    pub variants: Vec<String>,
    pub pos: Pos,
}

/// `const T name = literal;`
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDef {
    pub name: String,
    pub ty: Type,
    pub value: Literal,
    pub pos: Pos,
}

/// `exception name { T member; ... };`
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptDef {
    pub name: String,
    pub members: Vec<(String, Type, Pos)>,
    pub pos: Pos,
}

/// A literal constant value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(u64),
    Float(f64),
    Str(String),
    Bool(bool),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_name_and_pos() {
        let d = Def::Typedef(Typedef {
            name: "diff_array".into(),
            ty: Type::DSequence(Box::new(Type::Double), Some(1024), None),
            pos: Pos::new(2, 1),
        });
        assert_eq!(d.name(), "diff_array");
        assert_eq!(d.pos(), Pos::new(2, 1));
    }

    #[test]
    fn dsequence_detection() {
        assert!(Type::DSequence(Box::new(Type::Double), None, None).is_dsequence());
        assert!(!Type::Sequence(Box::new(Type::Double), None).is_dsequence());
        assert!(!Type::Named("diff_array".into()).is_dsequence());
    }
}
