//! Recursive-descent parser for the IDL subset.

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics, Pos};
use crate::token::{Kw, Tok, Token};

struct Parser<'a> {
    toks: Vec<Token>,
    i: usize,
    file: &'a str,
    /// `#pragma` directives seen anywhere in the file.
    pragmas: Vec<Pragma>,
}

/// Parse a token stream into a [`Spec`].
pub fn parse(toks: Vec<Token>, file: &str) -> Result<Spec, Diagnostics> {
    let mut p = Parser {
        toks,
        i: 0,
        file,
        pragmas: Vec::new(),
    };
    let mut defs = Vec::new();
    while !p.at(&Tok::Eof) {
        if p.take_pragma() {
            continue;
        }
        defs.push(p.definition()?);
    }
    Ok(Spec {
        defs,
        pragmas: p.pragmas,
    })
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn at_kw(&self, k: Kw) -> bool {
        matches!(self.peek(), Tok::Keyword(kk) if *kk == k)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, Diagnostics> {
        Err(Diagnostics::single(Diagnostic::new(
            self.file,
            self.pos(),
            msg,
        )))
    }

    fn expect(&mut self, t: Tok) -> Result<(), Diagnostics> {
        if self.at(&t) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t}, found {}", self.peek()))
        }
    }

    fn expect_kw(&mut self, k: Kw) -> Result<(), Diagnostics> {
        if self.at_kw(k) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected keyword `{k:?}`, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, Diagnostics> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    /// `a` or `a::b::c`.
    fn scoped_name(&mut self) -> Result<String, Diagnostics> {
        let mut s = self.ident()?;
        while self.at(&Tok::ColonColon) {
            self.bump();
            s.push_str("::");
            s.push_str(&self.ident()?);
        }
        Ok(s)
    }

    /// If the current token is a `#pragma`, record it and advance.
    fn take_pragma(&mut self) -> bool {
        let pos = self.pos();
        if let Tok::Pragma(text) = self.peek().clone() {
            self.bump();
            self.pragmas.push(Pragma { text, pos });
            true
        } else {
            false
        }
    }

    fn definition(&mut self) -> Result<Def, Diagnostics> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Keyword(Kw::Module) => self.module(pos),
            Tok::Keyword(Kw::Interface) => self.interface(pos),
            Tok::Keyword(Kw::Typedef) => self.typedef(pos),
            Tok::Keyword(Kw::Struct) => self.struct_def(pos),
            Tok::Keyword(Kw::Enum) => self.enum_def(pos),
            Tok::Keyword(Kw::Const) => self.const_def(pos),
            Tok::Keyword(Kw::Exception) => self.except_def(pos),
            other => self.err(format!("expected a definition, found {other}")),
        }
    }

    fn module(&mut self, pos: Pos) -> Result<Def, Diagnostics> {
        self.expect_kw(Kw::Module)?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut defs = Vec::new();
        while !self.at(&Tok::RBrace) {
            if self.at(&Tok::Eof) {
                return self.err("unterminated module body");
            }
            if self.take_pragma() {
                continue;
            }
            defs.push(self.definition()?);
        }
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Semi)?;
        Ok(Def::Module(Module { name, defs, pos }))
    }

    fn interface(&mut self, pos: Pos) -> Result<Def, Diagnostics> {
        self.expect_kw(Kw::Interface)?;
        let name = self.ident()?;
        let mut bases = Vec::new();
        if self.at(&Tok::Colon) {
            self.bump();
            bases.push(self.scoped_name()?);
            while self.at(&Tok::Comma) {
                self.bump();
                bases.push(self.scoped_name()?);
            }
        }
        // Forward declaration: `interface x;`
        if self.at(&Tok::Semi) {
            self.bump();
            return Ok(Def::Interface(Interface {
                name,
                bases,
                ops: vec![],
                attrs: vec![],
                pos,
            }));
        }
        self.expect(Tok::LBrace)?;
        let mut ops = Vec::new();
        let mut attrs = Vec::new();
        while !self.at(&Tok::RBrace) {
            if self.at(&Tok::Eof) {
                return self.err("unterminated interface body");
            }
            let mpos = self.pos();
            if self.at_kw(Kw::Readonly) || self.at_kw(Kw::Attribute) {
                attrs.push(self.attribute(mpos)?);
            } else {
                ops.push(self.operation(mpos)?);
            }
        }
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Semi)?;
        Ok(Def::Interface(Interface {
            name,
            bases,
            ops,
            attrs,
            pos,
        }))
    }

    fn attribute(&mut self, pos: Pos) -> Result<AttrDecl, Diagnostics> {
        let readonly = if self.at_kw(Kw::Readonly) {
            self.bump();
            true
        } else {
            false
        };
        self.expect_kw(Kw::Attribute)?;
        let ty = self.type_spec()?;
        let name = self.ident()?;
        self.expect(Tok::Semi)?;
        Ok(AttrDecl {
            readonly,
            ty,
            name,
            pos,
        })
    }

    fn operation(&mut self, pos: Pos) -> Result<OpDecl, Diagnostics> {
        // Qualifiers may appear in either order; each at most once.
        let mut oneway = false;
        let mut idempotent = false;
        loop {
            if self.at_kw(Kw::Oneway) && !oneway {
                self.bump();
                oneway = true;
            } else if self.at_kw(Kw::Idempotent) && !idempotent {
                self.bump();
                idempotent = true;
            } else {
                break;
            }
        }
        let ret = self.type_spec()?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.at(&Tok::RParen) {
            params.push(self.param()?);
            while self.at(&Tok::Comma) {
                self.bump();
                params.push(self.param()?);
            }
        }
        self.expect(Tok::RParen)?;
        let mut raises = Vec::new();
        if self.at_kw(Kw::Raises) {
            self.bump();
            self.expect(Tok::LParen)?;
            raises.push(self.scoped_name()?);
            while self.at(&Tok::Comma) {
                self.bump();
                raises.push(self.scoped_name()?);
            }
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::Semi)?;
        Ok(OpDecl {
            name,
            oneway,
            idempotent,
            ret,
            params,
            raises,
            pos,
        })
    }

    fn param(&mut self) -> Result<Param, Diagnostics> {
        let pos = self.pos();
        let dir = if self.at_kw(Kw::In) {
            self.bump();
            ParamDir::In
        } else if self.at_kw(Kw::Out) {
            self.bump();
            ParamDir::Out
        } else if self.at_kw(Kw::InOut) {
            self.bump();
            ParamDir::InOut
        } else {
            return self.err(format!(
                "expected parameter direction (`in`, `out`, `inout`), found {}",
                self.peek()
            ));
        };
        let ty = self.type_spec()?;
        let name = self.ident()?;
        Ok(Param { dir, ty, name, pos })
    }

    fn typedef(&mut self, pos: Pos) -> Result<Def, Diagnostics> {
        self.expect_kw(Kw::Typedef)?;
        let ty = self.type_spec()?;
        let name = self.ident()?;
        self.expect(Tok::Semi)?;
        Ok(Def::Typedef(Typedef { name, ty, pos }))
    }

    fn struct_def(&mut self, pos: Pos) -> Result<Def, Diagnostics> {
        self.expect_kw(Kw::Struct)?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let members = self.members()?;
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Semi)?;
        Ok(Def::Struct(StructDef { name, members, pos }))
    }

    fn except_def(&mut self, pos: Pos) -> Result<Def, Diagnostics> {
        self.expect_kw(Kw::Exception)?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let members = self.members()?;
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Semi)?;
        Ok(Def::Exception(ExceptDef { name, members, pos }))
    }

    fn members(&mut self) -> Result<Vec<(String, Type, Pos)>, Diagnostics> {
        let mut members = Vec::new();
        while !self.at(&Tok::RBrace) {
            if self.at(&Tok::Eof) {
                return self.err("unterminated member list");
            }
            let mpos = self.pos();
            let ty = self.type_spec()?;
            let mname = self.ident()?;
            self.expect(Tok::Semi)?;
            members.push((mname, ty, mpos));
        }
        Ok(members)
    }

    fn enum_def(&mut self, pos: Pos) -> Result<Def, Diagnostics> {
        self.expect_kw(Kw::Enum)?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut variants = vec![self.ident()?];
        while self.at(&Tok::Comma) {
            self.bump();
            if self.at(&Tok::RBrace) {
                break; // trailing comma
            }
            variants.push(self.ident()?);
        }
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Semi)?;
        Ok(Def::Enum(EnumDef {
            name,
            variants,
            pos,
        }))
    }

    fn const_def(&mut self, pos: Pos) -> Result<Def, Diagnostics> {
        self.expect_kw(Kw::Const)?;
        let ty = self.type_spec()?;
        let name = self.ident()?;
        self.expect(Tok::Eq)?;
        let value = match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                Literal::Int(v)
            }
            Tok::FloatLit(v) => {
                self.bump();
                Literal::Float(v)
            }
            Tok::StrLit(s) => {
                self.bump();
                Literal::Str(s)
            }
            Tok::Keyword(Kw::True_) => {
                self.bump();
                Literal::Bool(true)
            }
            Tok::Keyword(Kw::False_) => {
                self.bump();
                Literal::Bool(false)
            }
            other => return self.err(format!("expected a literal, found {other}")),
        };
        self.expect(Tok::Semi)?;
        Ok(Def::Const(ConstDef {
            name,
            ty,
            value,
            pos,
        }))
    }

    fn type_spec(&mut self) -> Result<Type, Diagnostics> {
        match self.peek().clone() {
            Tok::Keyword(Kw::Void) => {
                self.bump();
                Ok(Type::Void)
            }
            Tok::Keyword(Kw::Boolean) => {
                self.bump();
                Ok(Type::Boolean)
            }
            Tok::Keyword(Kw::Char) => {
                self.bump();
                Ok(Type::Char)
            }
            Tok::Keyword(Kw::Octet) => {
                self.bump();
                Ok(Type::Octet)
            }
            Tok::Keyword(Kw::Short) => {
                self.bump();
                Ok(Type::Short)
            }
            Tok::Keyword(Kw::Float) => {
                self.bump();
                Ok(Type::Float)
            }
            Tok::Keyword(Kw::Double) => {
                self.bump();
                Ok(Type::Double)
            }
            Tok::Keyword(Kw::String_) => {
                self.bump();
                Ok(Type::String_)
            }
            Tok::Keyword(Kw::Long) => {
                self.bump();
                if self.at_kw(Kw::Long) {
                    self.bump();
                    Ok(Type::LongLong)
                } else {
                    Ok(Type::Long)
                }
            }
            Tok::Keyword(Kw::Unsigned) => {
                self.bump();
                if self.at_kw(Kw::Short) {
                    self.bump();
                    Ok(Type::UShort)
                } else if self.at_kw(Kw::Long) {
                    self.bump();
                    if self.at_kw(Kw::Long) {
                        self.bump();
                        Ok(Type::ULongLong)
                    } else {
                        Ok(Type::ULong)
                    }
                } else {
                    self.err("expected `short` or `long` after `unsigned`")
                }
            }
            Tok::Keyword(Kw::Sequence) => {
                self.bump();
                self.expect(Tok::LAngle)?;
                let elem = self.type_spec()?;
                let bound = if self.at(&Tok::Comma) {
                    self.bump();
                    match self.bump() {
                        Tok::IntLit(v) => Some(v),
                        other => {
                            return self.err(format!("expected sequence bound, found {other}"))
                        }
                    }
                } else {
                    None
                };
                self.expect(Tok::RAngle)?;
                Ok(Type::Sequence(Box::new(elem), bound))
            }
            Tok::Keyword(Kw::DSequence) => {
                self.bump();
                self.expect(Tok::LAngle)?;
                let elem = self.type_spec()?;
                let mut bound = None;
                let mut dist = None;
                while self.at(&Tok::Comma) {
                    self.bump();
                    match self.peek().clone() {
                        Tok::IntLit(v) => {
                            if bound.is_some() {
                                return self.err("duplicate dsequence bound");
                            }
                            self.bump();
                            bound = Some(v);
                        }
                        Tok::Keyword(Kw::Block) => {
                            if dist.is_some() {
                                return self.err("duplicate dsequence distribution");
                            }
                            self.bump();
                            dist = Some(DistAnnot::Block);
                        }
                        Tok::Keyword(Kw::Proportions) => {
                            if dist.is_some() {
                                return self.err("duplicate dsequence distribution");
                            }
                            self.bump();
                            self.expect(Tok::LAngle)?;
                            let mut weights = Vec::new();
                            loop {
                                match self.peek().clone() {
                                    Tok::IntLit(w) => {
                                        self.bump();
                                        weights.push(w);
                                    }
                                    other => {
                                        return self.err(format!(
                                            "expected a proportions weight, found {other}"
                                        ))
                                    }
                                }
                                if self.at(&Tok::Comma) {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                            self.expect(Tok::RAngle)?;
                            dist = Some(DistAnnot::Proportions(weights));
                        }
                        other => {
                            return self.err(format!(
                                "expected dsequence bound or distribution, found {other}"
                            ))
                        }
                    }
                }
                self.expect(Tok::RAngle)?;
                Ok(Type::DSequence(Box::new(elem), bound, dist))
            }
            Tok::Ident(_) => Ok(Type::Named(self.scoped_name()?)),
            other => self.err(format!("expected a type, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Spec, Diagnostics> {
        parse(lex(src, "t.idl").unwrap(), "t.idl")
    }

    #[test]
    fn paper_example_parses() {
        let spec = parse_src(
            r#"
            typedef dsequence<double, 1024> diff_array;
            interface diff_object {
                void diffusion(in long timestep, inout diff_array darray);
            };
            "#,
        )
        .unwrap();
        assert_eq!(spec.defs.len(), 2);
        match &spec.defs[0] {
            Def::Typedef(t) => {
                assert_eq!(t.name, "diff_array");
                assert_eq!(
                    t.ty,
                    Type::DSequence(Box::new(Type::Double), Some(1024), None)
                );
            }
            other => panic!("{other:?}"),
        }
        match &spec.defs[1] {
            Def::Interface(i) => {
                assert_eq!(i.name, "diff_object");
                assert_eq!(i.ops.len(), 1);
                let op = &i.ops[0];
                assert_eq!(op.name, "diffusion");
                assert_eq!(op.ret, Type::Void);
                assert_eq!(op.params.len(), 2);
                assert_eq!(op.params[0].dir, ParamDir::In);
                assert_eq!(op.params[1].dir, ParamDir::InOut);
                assert_eq!(op.params[1].ty, Type::Named("diff_array".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn modules_nest() {
        let spec = parse_src("module a { module b { typedef long x; }; };").unwrap();
        match &spec.defs[0] {
            Def::Module(m) => {
                assert_eq!(m.name, "a");
                match &m.defs[0] {
                    Def::Module(b) => assert_eq!(b.defs.len(), 1),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn structs_enums_consts_exceptions() {
        let spec = parse_src(
            r#"
            struct Point { double x; double y; };
            enum Color { RED, GREEN, BLUE, };
            const long MAX = 0x10;
            const double PI = 3.14;
            const boolean YES = TRUE;
            exception overflow { long where; };
            "#,
        )
        .unwrap();
        assert_eq!(spec.defs.len(), 6);
        match &spec.defs[1] {
            Def::Enum(e) => assert_eq!(e.variants, vec!["RED", "GREEN", "BLUE"]),
            other => panic!("{other:?}"),
        }
        match &spec.defs[2] {
            Def::Const(c) => assert_eq!(c.value, Literal::Int(16)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oneway_raises_attributes() {
        let spec = parse_src(
            r#"
            exception failed { };
            interface monitor {
                readonly attribute long count;
                attribute double rate;
                oneway void report(in string msg);
                void run(in long n) raises(failed);
            };
            "#,
        )
        .unwrap();
        match &spec.defs[1] {
            Def::Interface(i) => {
                assert_eq!(i.attrs.len(), 2);
                assert!(i.attrs[0].readonly);
                assert!(i.ops[0].oneway);
                assert_eq!(i.ops[1].raises, vec!["failed"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn interface_inheritance() {
        let spec = parse_src("interface a {}; interface b : a { void f(); };").unwrap();
        match &spec.defs[1] {
            Def::Interface(i) => assert_eq!(i.bases, vec!["a"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsigned_variants() {
        let spec = parse_src(
            "interface t { void f(in unsigned short a, in unsigned long b, in unsigned long long c, in long long d); };",
        )
        .unwrap();
        match &spec.defs[0] {
            Def::Interface(i) => {
                let tys: Vec<&Type> = i.ops[0].params.iter().map(|p| &p.ty).collect();
                assert_eq!(
                    tys,
                    vec![
                        &Type::UShort,
                        &Type::ULong,
                        &Type::ULongLong,
                        &Type::LongLong
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dsequence_with_distribution_annotation() {
        let spec =
            parse_src("typedef dsequence<double, 1024, block> a; typedef dsequence<long> b;")
                .unwrap();
        match &spec.defs[0] {
            Def::Typedef(t) => assert_eq!(
                t.ty,
                Type::DSequence(Box::new(Type::Double), Some(1024), Some(DistAnnot::Block))
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn proportions_annotation_parses() {
        let spec = parse_src("typedef dsequence<double, 1024, proportions<2, 1, 1>> a;").unwrap();
        match &spec.defs[0] {
            Def::Typedef(t) => assert_eq!(
                t.ty,
                Type::DSequence(
                    Box::new(Type::Double),
                    Some(1024),
                    Some(DistAnnot::Proportions(vec![2, 1, 1]))
                )
            ),
            other => panic!("{other:?}"),
        }
        assert!(parse_src("typedef dsequence<double, proportions<>> a;").is_err());
        assert!(parse_src("typedef dsequence<double, block, proportions<1>> a;").is_err());
    }

    #[test]
    fn idempotent_qualifier_parses() {
        let spec = parse_src(
            "interface i {
                idempotent void set(in double v);
                oneway idempotent void push(in double v);
                idempotent oneway void nudge(in double v);
                void plain();
            };",
        )
        .unwrap();
        match &spec.defs[0] {
            Def::Interface(i) => {
                assert!(i.ops[0].idempotent && !i.ops[0].oneway);
                assert!(i.ops[1].idempotent && i.ops[1].oneway);
                assert!(i.ops[2].idempotent && i.ops[2].oneway);
                assert!(!i.ops[3].idempotent);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pragmas_are_collected() {
        let spec = parse_src(
            "#pragma pardis threads 4\n\
             module m {\n#pragma pardis allow PA004\n typedef long x; };",
        )
        .unwrap();
        let texts: Vec<&str> = spec.pragmas.iter().map(|p| p.text.as_str()).collect();
        assert_eq!(texts, vec!["pardis threads 4", "pardis allow PA004"]);
        assert_eq!(spec.pragmas[0].pos.line, 1);
    }

    #[test]
    fn errors_are_reported_with_positions() {
        assert!(parse_src("interface {").is_err());
        assert!(parse_src("typedef dsequence<double diff;").is_err());
        assert!(parse_src("interface x { void f(long a); };").is_err()); // missing direction
        let err = parse_src("struct s { double x }").unwrap_err();
        assert!(err.to_string().contains("t.idl:1"));
    }

    #[test]
    fn nested_sequences() {
        let spec = parse_src("typedef sequence<sequence<octet>> blobs;").unwrap();
        match &spec.defs[0] {
            Def::Typedef(t) => assert_eq!(
                t.ty,
                Type::Sequence(Box::new(Type::Sequence(Box::new(Type::Octet), None)), None)
            ),
            other => panic!("{other:?}"),
        }
    }
}
