//! IDL pretty-printer: render an AST back to canonical IDL text.
//!
//! Used by `pardis-idlc --emit-idl` for formatting/normalizing IDL
//! files, and by the test suite as a parse → print → parse fixpoint
//! check on the grammar.

use crate::ast::*;

/// Render a whole specification.
pub fn print_spec(spec: &Spec) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
    };
    // Pragmas are hoisted to the top of the normalized form (they are
    // file-scoped directives regardless of where they appeared).
    for pragma in &spec.pragmas {
        p.line(&format!("#pragma {}", pragma.text));
    }
    for def in &spec.defs {
        p.def(def);
    }
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn def(&mut self, def: &Def) {
        match def {
            Def::Module(m) => {
                self.line(&format!("module {} {{", m.name));
                self.indent += 1;
                for d in &m.defs {
                    self.def(d);
                }
                self.indent -= 1;
                self.line("};");
            }
            Def::Typedef(t) => {
                self.line(&format!("typedef {} {};", type_str(&t.ty), t.name));
            }
            Def::Struct(s) => {
                self.line(&format!("struct {} {{", s.name));
                self.indent += 1;
                for (name, ty, _) in &s.members {
                    self.line(&format!("{} {};", type_str(ty), name));
                }
                self.indent -= 1;
                self.line("};");
            }
            Def::Exception(e) => {
                self.line(&format!("exception {} {{", e.name));
                self.indent += 1;
                for (name, ty, _) in &e.members {
                    self.line(&format!("{} {};", type_str(ty), name));
                }
                self.indent -= 1;
                self.line("};");
            }
            Def::Enum(e) => {
                self.line(&format!("enum {} {{ {} }};", e.name, e.variants.join(", ")));
            }
            Def::Const(c) => {
                self.line(&format!(
                    "const {} {} = {};",
                    type_str(&c.ty),
                    c.name,
                    literal_str(&c.value)
                ));
            }
            Def::Interface(i) => {
                let bases = if i.bases.is_empty() {
                    String::new()
                } else {
                    format!(" : {}", i.bases.join(", "))
                };
                if i.ops.is_empty() && i.attrs.is_empty() && i.bases.is_empty() {
                    // Could be a forward declaration; print the empty
                    // body form, which parses back equivalently.
                    self.line(&format!("interface {} {{", i.name));
                    self.line("};");
                    return;
                }
                self.line(&format!("interface {}{} {{", i.name, bases));
                self.indent += 1;
                for a in &i.attrs {
                    let ro = if a.readonly { "readonly " } else { "" };
                    self.line(&format!("{}attribute {} {};", ro, type_str(&a.ty), a.name));
                }
                for op in &i.ops {
                    self.op(op);
                }
                self.indent -= 1;
                self.line("};");
            }
        }
    }

    fn op(&mut self, op: &OpDecl) {
        let mut oneway = String::new();
        if op.oneway {
            oneway.push_str("oneway ");
        }
        if op.idempotent {
            oneway.push_str("idempotent ");
        }
        let params: Vec<String> = op
            .params
            .iter()
            .map(|p| {
                let dir = match p.dir {
                    ParamDir::In => "in",
                    ParamDir::Out => "out",
                    ParamDir::InOut => "inout",
                };
                format!("{dir} {} {}", type_str(&p.ty), p.name)
            })
            .collect();
        let raises = if op.raises.is_empty() {
            String::new()
        } else {
            format!(" raises({})", op.raises.join(", "))
        };
        self.line(&format!(
            "{oneway}{} {}({}){raises};",
            type_str(&op.ret),
            op.name,
            params.join(", ")
        ));
    }
}

/// Render a type expression.
pub fn type_str(ty: &Type) -> String {
    match ty {
        Type::Void => "void".into(),
        Type::Boolean => "boolean".into(),
        Type::Char => "char".into(),
        Type::Octet => "octet".into(),
        Type::Short => "short".into(),
        Type::UShort => "unsigned short".into(),
        Type::Long => "long".into(),
        Type::ULong => "unsigned long".into(),
        Type::LongLong => "long long".into(),
        Type::ULongLong => "unsigned long long".into(),
        Type::Float => "float".into(),
        Type::Double => "double".into(),
        Type::String_ => "string".into(),
        Type::Sequence(e, None) => format!("sequence<{}>", type_str(e)),
        Type::Sequence(e, Some(b)) => format!("sequence<{}, {b}>", type_str(e)),
        Type::DSequence(e, bound, dist) => {
            let mut s = format!("dsequence<{}", type_str(e));
            if let Some(b) = bound {
                s.push_str(&format!(", {b}"));
            }
            match dist {
                None => {}
                Some(DistAnnot::Block) => s.push_str(", block"),
                Some(DistAnnot::Proportions(ws)) => {
                    let ws: Vec<String> = ws.iter().map(|w| w.to_string()).collect();
                    s.push_str(&format!(", proportions<{}>", ws.join(", ")));
                }
            }
            s.push('>');
            s
        }
        Type::Named(n) => n.clone(),
    }
}

fn literal_str(l: &Literal) -> String {
    match l {
        Literal::Int(v) => format!("{v}"),
        Literal::Float(v) => {
            // Keep a decimal point so the value re-lexes as a float.
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains('E') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Literal::Str(s) => format!("{s:?}"),
        Literal::Bool(true) => "TRUE".into(),
        Literal::Bool(false) => "FALSE".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, parser};

    fn parse(src: &str) -> Spec {
        parser::parse(lexer::lex(src, "t.idl").unwrap(), "t.idl").unwrap()
    }

    const RICH: &str = r#"
        #pragma pardis threads 4
        module m {
            typedef dsequence<double, 1024, proportions<2, 1, 1, 1>> weighted;
            const long MAX = 16;
            const double PI = 3.5;
            const string NAME = "x";
            const boolean ON = TRUE;
            enum Color { RED, GREEN };
            struct P { double x; sequence<long> tags; };
            exception oops { long code; };
            typedef dsequence<double, 1024> arr;
            interface base { void ping(); };
            interface svc : base {
                readonly attribute long n;
                attribute double rate;
                oneway void log(in string msg);
                idempotent void set(in double v);
                double work(in arr a, inout arr b, out long n2) raises(oops);
            };
        };
    "#;

    #[test]
    fn print_parse_fixpoint() {
        let spec1 = parse(RICH);
        let printed1 = print_spec(&spec1);
        let spec2 = parse(&printed1);
        let printed2 = print_spec(&spec2);
        // Printing is a fixpoint: once normalized, stable.
        assert_eq!(printed1, printed2);
        // And the reparsed AST is structurally identical up to positions.
        assert_eq!(strip(spec1), strip(spec2));
    }

    /// Positions differ between original and printed text; normalize.
    fn strip(mut spec: Spec) -> Spec {
        fn fix_ty(_t: &mut Type) {}
        fn fix(defs: &mut [Def]) {
            use crate::diag::Pos;
            let z = Pos::default();
            for d in defs {
                match d {
                    Def::Module(m) => {
                        m.pos = z;
                        fix(&mut m.defs);
                    }
                    Def::Typedef(t) => t.pos = z,
                    Def::Struct(s) => {
                        s.pos = z;
                        for m in &mut s.members {
                            m.2 = z;
                            fix_ty(&mut m.1);
                        }
                    }
                    Def::Exception(e) => {
                        e.pos = z;
                        for m in &mut e.members {
                            m.2 = z;
                        }
                    }
                    Def::Enum(e) => e.pos = z,
                    Def::Const(c) => c.pos = z,
                    Def::Interface(i) => {
                        i.pos = z;
                        for a in &mut i.attrs {
                            a.pos = z;
                        }
                        for o in &mut i.ops {
                            o.pos = z;
                            for p in &mut o.params {
                                p.pos = z;
                            }
                        }
                    }
                }
            }
        }
        fix(&mut spec.defs);
        // Pragmas are hoisted to the top on print, so their reparsed
        // positions legitimately differ too.
        for p in &mut spec.pragmas {
            p.pos = crate::diag::Pos::default();
        }
        spec
    }

    #[test]
    fn types_render_canonically() {
        assert_eq!(type_str(&Type::ULongLong), "unsigned long long");
        assert_eq!(
            type_str(&Type::DSequence(Box::new(Type::Double), Some(8), None)),
            "dsequence<double, 8>"
        );
        assert_eq!(
            type_str(&Type::DSequence(
                Box::new(Type::Long),
                None,
                Some(DistAnnot::Proportions(vec![3, 1]))
            )),
            "dsequence<long, proportions<3, 1>>"
        );
        assert_eq!(
            type_str(&Type::Sequence(
                Box::new(Type::Sequence(Box::new(Type::Octet), None)),
                Some(4)
            )),
            "sequence<sequence<octet>, 4>"
        );
    }

    #[test]
    fn printed_output_is_checkable() {
        // The printed form passes semantic analysis too.
        let spec = parse(RICH);
        let printed = print_spec(&spec);
        assert!(crate::parse_and_check(&printed, "printed.idl").is_ok());
    }
}
