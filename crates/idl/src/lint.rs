//! Distribution-template lints: the static half of `pardis-analyze`.
//!
//! Each lint is a [`LintPass`] with a stable code (`PA001`…), run over
//! a checked [`Model`] by [`run`]. Passes flag illegal or ineffective
//! distribution templates and collective-invocation hazards that the
//! type checker accepts but that deadlock or waste work at run time:
//!
//! The catalog below is generated from the registry — each row is
//! `| code | severity | summary() |` verbatim, and the
//! `lint_catalog_docs_match_registry` test fails on drift (here and in
//! DESIGN.md §9):
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | PA001 | error | proportions weights are all zero |
//! | PA002 | error | proportions arity differs from the declared thread count |
//! | PA003 | warning | a computing thread owns no elements under this template |
//! | PA004 | warning | redistribution to a template identical to the default |
//! | PA005 | warning | oneway op with a distributed argument is not marked idempotent |
//! | PA006 | warning | one operation's dsequence arguments carry divergent templates |
//! | PA007 | warning | unrecognized #pragma pardis directive |
//! | PA104 | warning | degraded-mode policy discards a fixed proportions template |
//! | PA205 | error | oneway op declares a returning (out/inout) distributed argument |
//! | PA206 | warning | overlapping proportions templates alias a thread's buffers in one operation |
//!
//! (PA104 shares its code with the runtime finding recorded by the ORB
//! when the remap actually happens; this is the static half.)
//!
//! Suppression: per-file `#pragma pardis allow PA004,PA005`, or the
//! `--allow` flag of `pardis-idlc --analyze` ([`LintOptions::allow`]).

use crate::ast::{Def, DistAnnot, OpDecl, ParamDir, Type};
use crate::diag::{Diagnostic, Diagnostics, Pos, Severity};
use crate::sema::{Model, Symbol};
use std::collections::HashSet;

/// Options for a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Lint codes to suppress (in addition to any the file allows via
    /// `#pragma pardis allow ...`).
    pub allow: Vec<String>,
}

/// One pluggable lint.
pub trait LintPass {
    /// Stable code, `PA001`…
    fn code(&self) -> &'static str;
    /// One-line description for catalogs and docs.
    fn summary(&self) -> &'static str;
    /// Severity of this pass's findings.
    fn severity(&self) -> Severity;
    /// Inspect the model, pushing findings.
    fn run(&self, ctx: &LintCtx<'_>, out: &mut Diagnostics);
}

/// Version of the lint catalog carried by `pardis-idlc --analyze`
/// JSON (`lint_catalog_version`). Bumped whenever a pass is added,
/// removed, or changes code/severity, so consumers can tell which
/// findings they could possibly see: v1 = PA001–PA007, v2 = +PA104,
/// v3 = +PA205/PA206.
pub const CATALOG_VERSION: u32 = 3;

/// The full registry, in code order.
pub fn all_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(ZeroProportions),
        Box::new(ProportionsArity),
        Box::new(StarvedThread),
        Box::new(IdentityRedistribution),
        Box::new(OnewayDistNotIdempotent),
        Box::new(DivergentArgTemplates),
        Box::new(UnknownPardisPragma),
        Box::new(DegradedFixedProportions),
        Box::new(OnewayDistReturns),
        Box::new(OverlappingProportions),
    ]
}

/// Declared degradation policy (`#pragma pardis degrade ...`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DegradeDecl {
    FailFast,
    Survivors,
    Quorum(u64),
}

impl DegradeDecl {
    /// Whether the policy keeps serving on a degraded machine (where
    /// every template is remapped blockwise onto the survivors).
    fn serves_degraded(self) -> bool {
        !matches!(self, DegradeDecl::FailFast)
    }
}

impl std::fmt::Display for DegradeDecl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeDecl::FailFast => write!(f, "failfast"),
            DegradeDecl::Survivors => write!(f, "survivors"),
            DegradeDecl::Quorum(k) => write!(f, "quorum {k}"),
        }
    }
}

/// Run every (non-suppressed) pass over `model`; findings come back
/// sorted by source position.
pub fn run(model: &Model, opts: &LintOptions) -> Diagnostics {
    let ctx = LintCtx::new(model);
    let mut allow: HashSet<String> = opts.allow.iter().cloned().collect();
    allow.extend(ctx.allowed.iter().cloned());
    let mut out = Diagnostics::new();
    for pass in all_passes() {
        if !allow.contains(pass.code()) {
            pass.run(&ctx, &mut out);
        }
    }
    out.sort();
    out
}

/// One syntactic `dsequence` occurrence (typedef or parameter).
struct DseqSite {
    pos: Pos,
    /// Where the type was written, for messages: ``typedef `arr` `` or
    /// ``parameter `d` of operation `diffusion` ``.
    desc: String,
    bound: Option<u64>,
    annot: Option<DistAnnot>,
}

/// One operation, with the scope needed to resolve its types.
struct OpSite<'m> {
    scope: String,
    op: &'m OpDecl,
}

/// Everything the passes look at, computed once per run.
pub struct LintCtx<'m> {
    model: &'m Model,
    /// Thread count from `#pragma pardis threads N`, if declared.
    declared_threads: Option<u64>,
    /// Degradation policy from `#pragma pardis degrade ...`, if declared.
    declared_degrade: Option<DegradeDecl>,
    /// Codes allowed via `#pragma pardis allow ...`.
    allowed: Vec<String>,
    /// `pardis` pragmas that did not parse (pos, text).
    bad_pragmas: Vec<(Pos, String)>,
    sites: Vec<DseqSite>,
    ops: Vec<OpSite<'m>>,
}

impl<'m> LintCtx<'m> {
    fn new(model: &'m Model) -> LintCtx<'m> {
        let mut ctx = LintCtx {
            model,
            declared_threads: None,
            declared_degrade: None,
            allowed: Vec::new(),
            bad_pragmas: Vec::new(),
            sites: Vec::new(),
            ops: Vec::new(),
        };
        ctx.read_pragmas();
        ctx.collect(&model.spec.defs, "");
        ctx
    }

    fn read_pragmas(&mut self) {
        for p in &self.model.spec.pragmas {
            let Some(rest) = p.text.strip_prefix("pardis") else {
                continue; // other namespaces are not ours to judge
            };
            let words: Vec<&str> = rest.split_whitespace().collect();
            match words.as_slice() {
                ["threads", n] => match n.parse::<u64>() {
                    Ok(n) if n > 0 => self.declared_threads = Some(n),
                    _ => self.bad_pragmas.push((p.pos, p.text.clone())),
                },
                ["degrade", "failfast"] => self.declared_degrade = Some(DegradeDecl::FailFast),
                ["degrade", "survivors"] => self.declared_degrade = Some(DegradeDecl::Survivors),
                ["degrade", "quorum", k] => match k.parse::<u64>() {
                    Ok(k) if k > 0 => self.declared_degrade = Some(DegradeDecl::Quorum(k)),
                    _ => self.bad_pragmas.push((p.pos, p.text.clone())),
                },
                ["allow", codes] => {
                    self.allowed
                        .extend(codes.split(',').map(|c| c.trim().to_string()));
                }
                _ => self.bad_pragmas.push((p.pos, p.text.clone())),
            }
        }
    }

    fn collect(&mut self, defs: &'m [Def], scope: &str) {
        for def in defs {
            match def {
                Def::Module(m) => {
                    let inner = if scope.is_empty() {
                        m.name.clone()
                    } else {
                        format!("{scope}::{}", m.name)
                    };
                    self.collect(&m.defs, &inner);
                }
                Def::Typedef(t) => {
                    if let Type::DSequence(_, bound, annot) = &t.ty {
                        self.sites.push(DseqSite {
                            pos: t.pos,
                            desc: format!("typedef `{}`", t.name),
                            bound: *bound,
                            annot: annot.clone(),
                        });
                    }
                }
                Def::Interface(i) => {
                    for op in &i.ops {
                        self.ops.push(OpSite {
                            scope: scope.to_string(),
                            op,
                        });
                        for p in &op.params {
                            if let Type::DSequence(_, bound, annot) = &p.ty {
                                self.sites.push(DseqSite {
                                    pos: p.pos,
                                    desc: format!(
                                        "parameter `{}` of operation `{}`",
                                        p.name, op.name
                                    ),
                                    bound: *bound,
                                    annot: annot.clone(),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Resolve a parameter type to its dsequence shape (bound,
    /// annotation), chasing typedefs. `None` if not distributed.
    fn dseq_shape(&self, ty: &Type, scope: &str) -> Option<(Option<u64>, Option<DistAnnot>)> {
        let mut ty = ty.clone();
        let mut scope = scope.to_string();
        for _ in 0..64 {
            match ty {
                Type::DSequence(_, bound, annot) => return Some((bound, annot)),
                Type::Named(ref name) => match self.model.lookup(&scope, name) {
                    Some((qname, Symbol::Typedef(inner))) => {
                        scope = crate::sema::parent_scope(qname);
                        ty = inner.clone();
                    }
                    _ => return None,
                },
                _ => return None,
            }
        }
        None
    }
}

fn finding(pass: &dyn LintPass, ctx: &LintCtx<'_>, pos: Pos, msg: String) -> Diagnostic {
    Diagnostic::lint(pass.code(), pass.severity(), &ctx.model.file, pos, msg)
}

/// PA001: a `proportions` template whose weights are all zero assigns
/// every element to nobody — no thread would own any data.
struct ZeroProportions;
impl LintPass for ZeroProportions {
    fn code(&self) -> &'static str {
        "PA001"
    }
    fn summary(&self) -> &'static str {
        "proportions weights are all zero"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn run(&self, ctx: &LintCtx<'_>, out: &mut Diagnostics) {
        for s in &ctx.sites {
            if let Some(DistAnnot::Proportions(ws)) = &s.annot {
                if ws.iter().all(|&w| w == 0) {
                    out.push(finding(
                        self,
                        ctx,
                        s.pos,
                        format!(
                            "{}: all `proportions` weights are zero; no thread would own any element",
                            s.desc
                        ),
                    ));
                }
            }
        }
    }
}

/// PA002: the number of `proportions` weights fixes the machine's
/// thread count; if the file declares one, they must agree.
struct ProportionsArity;
impl LintPass for ProportionsArity {
    fn code(&self) -> &'static str {
        "PA002"
    }
    fn summary(&self) -> &'static str {
        "proportions arity differs from the declared thread count"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn run(&self, ctx: &LintCtx<'_>, out: &mut Diagnostics) {
        let Some(threads) = ctx.declared_threads else {
            return;
        };
        for s in &ctx.sites {
            if let Some(DistAnnot::Proportions(ws)) = &s.annot {
                if ws.len() as u64 != threads {
                    out.push(finding(
                        self,
                        ctx,
                        s.pos,
                        format!(
                            "{}: `proportions` names {} threads but `#pragma pardis threads` declares {}",
                            s.desc,
                            ws.len(),
                            threads
                        ),
                    ));
                }
            }
        }
    }
}

/// PA003: a thread that owns no elements still participates in every
/// collective — declared parallelism the distribution cannot deliver.
struct StarvedThread;
impl LintPass for StarvedThread {
    fn code(&self) -> &'static str {
        "PA003"
    }
    fn summary(&self) -> &'static str {
        "a computing thread owns no elements under this template"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn run(&self, ctx: &LintCtx<'_>, out: &mut Diagnostics) {
        for s in &ctx.sites {
            if let Some(DistAnnot::Proportions(ws)) = &s.annot {
                if !ws.iter().all(|&w| w == 0) {
                    if let Some(i) = ws.iter().position(|&w| w == 0) {
                        out.push(finding(
                            self,
                            ctx,
                            s.pos,
                            format!(
                                "{}: `proportions` weight {i} is zero; thread {i} owns no elements",
                                s.desc
                            ),
                        ));
                    }
                    continue;
                }
            }
            if let (Some(bound), Some(threads)) = (s.bound, ctx.declared_threads) {
                if bound < threads {
                    out.push(finding(
                        self,
                        ctx,
                        s.pos,
                        format!(
                            "{}: bound {bound} is smaller than the declared thread count \
                             {threads}; some threads own no elements",
                            s.desc
                        ),
                    ));
                }
            }
        }
    }
}

/// PA004: an explicit template identical to the effective default
/// requests a redistribution that moves nothing.
struct IdentityRedistribution;
impl LintPass for IdentityRedistribution {
    fn code(&self) -> &'static str {
        "PA004"
    }
    fn summary(&self) -> &'static str {
        "redistribution to a template identical to the default"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn run(&self, ctx: &LintCtx<'_>, out: &mut Diagnostics) {
        for s in &ctx.sites {
            match &s.annot {
                Some(DistAnnot::Block) => {
                    out.push(finding(
                        self,
                        ctx,
                        s.pos,
                        format!(
                            "{}: explicit `block` matches the default distribution; \
                             redistribution to an identical template is a no-op",
                            s.desc
                        ),
                    ));
                }
                Some(DistAnnot::Proportions(ws))
                    if ws.len() > 1 && ws[0] > 0 && ws.iter().all(|&w| w == ws[0]) =>
                {
                    out.push(finding(
                        self,
                        ctx,
                        s.pos,
                        format!(
                            "{}: all `proportions` weights are equal, which is the default \
                             blockwise distribution; redistribution to an identical template \
                             is a no-op",
                            s.desc
                        ),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// PA005: a request is satisfied only when delivered to *all*
/// computing threads; a `oneway` op with a distributed argument that a
/// retry policy cannot re-send leaves partial deliveries undetectable.
struct OnewayDistNotIdempotent;
impl LintPass for OnewayDistNotIdempotent {
    fn code(&self) -> &'static str {
        "PA005"
    }
    fn summary(&self) -> &'static str {
        "oneway op with a distributed argument is not marked idempotent"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn run(&self, ctx: &LintCtx<'_>, out: &mut Diagnostics) {
        for site in &ctx.ops {
            let op = site.op;
            if !op.oneway || op.idempotent {
                continue;
            }
            let has_dist = op
                .params
                .iter()
                .any(|p| ctx.dseq_shape(&p.ty, &site.scope).is_some());
            if has_dist {
                out.push(finding(
                    self,
                    ctx,
                    op.pos,
                    format!(
                        "oneway operation `{}` has a distributed argument but is not marked \
                         `idempotent`; a partially delivered collective cannot be safely retried",
                        op.name
                    ),
                ));
            }
        }
    }
}

/// PA006: two dsequence arguments of one operation with different
/// templates make every invocation redistribute them differently —
/// usually a copy-paste divergence, and a collective-consistency
/// hazard when the templates disagree about the thread count.
struct DivergentArgTemplates;
impl LintPass for DivergentArgTemplates {
    fn code(&self) -> &'static str {
        "PA006"
    }
    fn summary(&self) -> &'static str {
        "one operation's dsequence arguments carry divergent templates"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn run(&self, ctx: &LintCtx<'_>, out: &mut Diagnostics) {
        for site in &ctx.ops {
            let op = site.op;
            let dist: Vec<(&str, DistAnnot, Pos)> = op
                .params
                .iter()
                .filter(|p| p.dir != ParamDir::Out)
                .filter_map(|p| {
                    ctx.dseq_shape(&p.ty, &site.scope).map(|(_, annot)| {
                        (p.name.as_str(), annot.unwrap_or(DistAnnot::Block), p.pos)
                    })
                })
                .collect();
            for pair in dist.windows(2) {
                if pair[0].1 != pair[1].1 {
                    out.push(finding(
                        self,
                        ctx,
                        pair[1].2,
                        format!(
                            "operation `{}`: arguments `{}` and `{}` carry divergent \
                             distribution templates; every invocation redistributes them \
                             differently",
                            op.name, pair[0].0, pair[1].0
                        ),
                    ));
                    break; // one finding per operation
                }
            }
        }
    }
}

/// PA007: a `#pragma pardis` directive the analyzer does not
/// understand is more likely a typo than a new dialect.
struct UnknownPardisPragma;
impl LintPass for UnknownPardisPragma {
    fn code(&self) -> &'static str {
        "PA007"
    }
    fn summary(&self) -> &'static str {
        "unrecognized #pragma pardis directive"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn run(&self, ctx: &LintCtx<'_>, out: &mut Diagnostics) {
        for (pos, text) in &ctx.bad_pragmas {
            out.push(finding(
                self,
                ctx,
                *pos,
                format!(
                    "unrecognized directive `#pragma {text}`; expected \
                     `pardis threads N`, `pardis degrade failfast|survivors|quorum N`, \
                     or `pardis allow PAxxx[,PAxxx...]`"
                ),
            ));
        }
    }
}

/// PA104: a skewed `proportions` template fixes a per-thread layout,
/// but a `survivors`/`quorum` degradation policy keeps serving after a
/// thread death by remapping every template *blockwise* onto the
/// survivor set — the declared proportions are silently discarded in
/// degraded mode. The runtime records the same code when the remap
/// actually happens; this pass flags the combination at `--analyze`
/// time, before any thread has died.
struct DegradedFixedProportions;
impl LintPass for DegradedFixedProportions {
    fn code(&self) -> &'static str {
        "PA104"
    }
    fn summary(&self) -> &'static str {
        "degraded-mode policy discards a fixed proportions template"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn run(&self, ctx: &LintCtx<'_>, out: &mut Diagnostics) {
        let Some(policy) = ctx.declared_degrade else {
            return;
        };
        if !policy.serves_degraded() {
            return;
        }
        for s in &ctx.sites {
            if let Some(DistAnnot::Proportions(ws)) = &s.annot {
                // Uniform weights already equal the blockwise remap
                // (PA004's territory); all-zero weights are PA001's.
                let skewed = ws.iter().any(|&w| w > 0) && ws.iter().any(|&w| w != ws[0]);
                if skewed {
                    out.push(finding(
                        self,
                        ctx,
                        s.pos,
                        format!(
                            "{}: `proportions` fixes a per-thread layout, but `#pragma pardis \
                             degrade {policy}` remaps templates blockwise onto the survivors \
                             after a thread death; the declared proportions are discarded in \
                             degraded mode",
                            s.desc
                        ),
                    ));
                }
            }
        }
    }
}

/// PA205: sema accepts a distributed argument in a returning direction
/// on a `oneway` operation (so the hazard can be reported precisely
/// here instead of as a generic type error), but a oneway invocation
/// never carries a reply — the redistributed result can never reach
/// the caller's computing threads.
struct OnewayDistReturns;
impl LintPass for OnewayDistReturns {
    fn code(&self) -> &'static str {
        "PA205"
    }
    fn summary(&self) -> &'static str {
        "oneway op declares a returning (out/inout) distributed argument"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn run(&self, ctx: &LintCtx<'_>, out: &mut Diagnostics) {
        for site in &ctx.ops {
            let op = site.op;
            if !op.oneway {
                continue;
            }
            for p in &op.params {
                if p.dir == ParamDir::In || ctx.dseq_shape(&p.ty, &site.scope).is_none() {
                    continue;
                }
                let dir = if p.dir == ParamDir::Out {
                    "out"
                } else {
                    "inout"
                };
                out.push(finding(
                    self,
                    ctx,
                    p.pos,
                    format!(
                        "oneway operation `{}`: parameter `{}` is `{dir}`, but a oneway \
                         invocation never returns; the redistributed result can never reach \
                         the caller",
                        op.name, p.name
                    ),
                ));
            }
        }
    }
}

/// PA206: two `proportions` templates in one operation that both place
/// elements on the same thread make that thread's local buffers alias
/// during a returning transfer — while the collective redistributes one
/// argument back, the same thread still owns live elements of the
/// other. Disjoint partitions (no thread weighted in both) are safe.
struct OverlappingProportions;
impl LintPass for OverlappingProportions {
    fn code(&self) -> &'static str {
        "PA206"
    }
    fn summary(&self) -> &'static str {
        "overlapping proportions templates alias a thread's buffers in one operation"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn run(&self, ctx: &LintCtx<'_>, out: &mut Diagnostics) {
        for site in &ctx.ops {
            let op = site.op;
            // Every param with an *explicit* proportions template;
            // defaulted/blockwise args never pin a per-thread layout.
            let props: Vec<(&str, ParamDir, Vec<u64>, Pos)> = op
                .params
                .iter()
                .filter_map(|p| match ctx.dseq_shape(&p.ty, &site.scope) {
                    Some((_, Some(DistAnnot::Proportions(ws)))) => {
                        Some((p.name.as_str(), p.dir, ws, p.pos))
                    }
                    _ => None,
                })
                .collect();
            'op: for (i, a) in props.iter().enumerate() {
                for b in &props[i + 1..] {
                    // Aliasing only bites when a transfer returns into
                    // one of the buffers mid-collective.
                    if a.1 == ParamDir::In && b.1 == ParamDir::In {
                        continue;
                    }
                    let overlap =
                        a.2.iter()
                            .zip(b.2.iter())
                            .position(|(&wa, &wb)| wa > 0 && wb > 0);
                    if let Some(t) = overlap {
                        out.push(finding(
                            self,
                            ctx,
                            b.3,
                            format!(
                                "operation `{}`: `proportions` templates of `{}` and `{}` \
                                 both place elements on thread {t}; a returning transfer \
                                 aliases that thread's buffers mid-collective",
                                op.name, a.0, b.0
                            ),
                        ));
                        break 'op; // one finding per operation
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_check;

    fn lint_src(src: &str) -> Diagnostics {
        let model = parse_and_check(src, "t.idl").unwrap();
        run(&model, &LintOptions::default())
    }

    fn codes(d: &Diagnostics) -> Vec<&str> {
        d.items
            .iter()
            .map(|d| d.code.as_deref().unwrap_or("?"))
            .collect()
    }

    #[test]
    fn clean_idl_has_no_findings() {
        let d = lint_src(
            "typedef dsequence<double, 1024> diff_array;
             interface diff_object { void diffusion(in long t, inout diff_array d); };",
        );
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn pa001_all_zero_weights() {
        let d = lint_src("typedef dsequence<double, 64, proportions<0, 0>> z;");
        assert_eq!(codes(&d), vec!["PA001"]);
        assert!(d.has_errors());
    }

    #[test]
    fn pa002_arity_mismatch_needs_pragma() {
        let with = lint_src(
            "#pragma pardis threads 4\n typedef dsequence<double, 64, proportions<1, 2>> p;",
        );
        assert_eq!(codes(&with), vec!["PA002"]);
        // Without a declared thread count the arity is unknowable.
        let without = lint_src("typedef dsequence<double, 64, proportions<1, 2>> p;");
        assert!(without.is_empty(), "{without}");
    }

    #[test]
    fn pa003_starved_threads() {
        let d = lint_src("#pragma pardis threads 8\n typedef dsequence<double, 4> small;");
        assert_eq!(codes(&d), vec!["PA003"]);
        let d = lint_src("typedef dsequence<double, 64, proportions<1, 0, 1>> gap;");
        assert_eq!(codes(&d), vec!["PA003"]);
    }

    #[test]
    fn pa004_identity_redistribution() {
        let d = lint_src("typedef dsequence<double, 1024, block> b;");
        assert_eq!(codes(&d), vec!["PA004"]);
        let d = lint_src("typedef dsequence<double, 1024, proportions<2, 2, 2, 2>> eq;");
        assert_eq!(codes(&d), vec!["PA004"]);
        // Genuinely skewed proportions are fine.
        let d = lint_src("typedef dsequence<double, 1024, proportions<2, 1, 1, 1>> skew;");
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn pa005_oneway_dist_without_idempotent() {
        let d = lint_src(
            "typedef dsequence<double> arr;
             interface i { oneway void push(in arr a); };",
        );
        assert_eq!(codes(&d), vec!["PA005"]);
        // Marked idempotent: fine. No dist arg: fine.
        let d = lint_src(
            "typedef dsequence<double> arr;
             interface i { oneway idempotent void push(in arr a); oneway void ping(in long x); };",
        );
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn pa006_divergent_templates() {
        let d = lint_src(
            "interface i { void f(in dsequence<double, 8, proportions<3, 1>> a,
                                  in dsequence<double, 8, proportions<1, 3>> b); };",
        );
        assert_eq!(codes(&d), vec!["PA006"]);
        // Same template on both: no divergence (and no identity lint —
        // skewed weights differ from the default).
        let d = lint_src(
            "interface i { void f(in dsequence<double, 8, proportions<3, 1>> a,
                                  in dsequence<double, 8, proportions<3, 1>> b); };",
        );
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn pa007_unknown_pardis_pragma() {
        let d = lint_src("#pragma pardis frobnicate\n typedef long x;");
        assert_eq!(codes(&d), vec!["PA007"]);
        // Foreign pragma namespaces are ignored.
        let d = lint_src("#pragma once\n typedef long x;");
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn pa104_degraded_fixed_proportions() {
        let d = lint_src(
            "#pragma pardis degrade survivors\n\
             typedef dsequence<double, 64, proportions<3, 1>> skew;",
        );
        assert_eq!(codes(&d), vec!["PA104"]);
        assert!(!d.has_errors());
        // Quorum also serves degraded.
        let d = lint_src(
            "#pragma pardis degrade quorum 2\n\
             typedef dsequence<double, 64, proportions<3, 1>> skew;",
        );
        assert_eq!(codes(&d), vec!["PA104"]);
        // failfast never remaps — refused invocations keep their layout.
        let d = lint_src(
            "#pragma pardis degrade failfast\n\
             typedef dsequence<double, 64, proportions<3, 1>> skew;",
        );
        assert!(d.is_empty(), "{d}");
        // Without a declared policy the layout is never remapped here.
        let d = lint_src("typedef dsequence<double, 64, proportions<3, 1>> skew;");
        assert!(d.is_empty(), "{d}");
        // Uniform weights equal the blockwise remap: PA004, not PA104.
        let d = lint_src(
            "#pragma pardis degrade survivors\n\
             typedef dsequence<double, 64, proportions<2, 2>> eq;",
        );
        assert_eq!(codes(&d), vec!["PA004"]);
    }

    #[test]
    fn degrade_pragma_parses_and_rejects_garbage() {
        // All three policies parse cleanly.
        for p in ["failfast", "survivors", "quorum 3"] {
            let d = lint_src(&format!("#pragma pardis degrade {p}\n typedef long x;"));
            assert!(d.is_empty(), "degrade {p}: {d}");
        }
        // Bad arguments fall through to PA007.
        let d = lint_src("#pragma pardis degrade quorum 0\n typedef long x;");
        assert_eq!(codes(&d), vec!["PA007"]);
        let d = lint_src("#pragma pardis degrade sometimes\n typedef long x;");
        assert_eq!(codes(&d), vec!["PA007"]);
    }

    #[test]
    fn suppression_via_pragma_and_options() {
        let src = "typedef dsequence<double, 1024, block> b;";
        let suppressed = lint_src(&format!("#pragma pardis allow PA004\n{src}"));
        assert!(suppressed.is_empty(), "{suppressed}");
        let model = parse_and_check(src, "t.idl").unwrap();
        let opts = LintOptions {
            allow: vec!["PA004".into()],
        };
        assert!(run(&model, &opts).is_empty());
    }

    #[test]
    fn findings_sort_by_position() {
        let d = lint_src(
            "typedef dsequence<double, 64, proportions<0, 0>> z;
             typedef dsequence<double, 1024, block> b;
             typedef dsequence<double, 64, proportions<1, 0>> gap;",
        );
        assert_eq!(codes(&d), vec!["PA001", "PA004", "PA003"]);
        let lines: Vec<u32> = d.items.iter().map(|i| i.pos.line).collect();
        assert!(lines.windows(2).all(|w| w[0] <= w[1]), "{lines:?}");
    }

    #[test]
    fn typedef_chasing_finds_dist_params() {
        // The oneway op's arg is distributed only through two typedefs.
        let d = lint_src(
            "typedef dsequence<double> arr;
             typedef arr arr2;
             interface i { oneway void push(in arr2 a); };",
        );
        assert_eq!(codes(&d), vec!["PA005"]);
    }

    #[test]
    fn pa205_oneway_returning_dist_arg() {
        let d = lint_src(
            "typedef dsequence<double> arr;
             interface i { oneway idempotent void pull(out arr a); };",
        );
        assert_eq!(codes(&d), vec!["PA205"]);
        assert!(d.has_errors());
        let d = lint_src(
            "typedef dsequence<double> arr;
             interface i { oneway idempotent void pull(inout arr a); };",
        );
        assert_eq!(codes(&d), vec!["PA205"]);
        // `in` distributed args and two-way returning args are fine.
        let d = lint_src(
            "typedef dsequence<double> arr;
             interface i { oneway idempotent void push(in arr a); void pull(out arr a); };",
        );
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn pa206_overlapping_proportions() {
        let d = lint_src(
            "interface i { void f(in dsequence<double, 8, proportions<3, 1>> a,
                                  inout dsequence<double, 8, proportions<3, 1>> b); };",
        );
        assert_eq!(codes(&d), vec!["PA206"]);
        assert!(!d.has_errors());
        // Disjoint partitions never alias (PA003/PA006 silenced: the
        // zero weights and divergent templates are deliberate here).
        let d = lint_src(
            "#pragma pardis allow PA003,PA006\n\
             interface i { void f(in dsequence<double, 8, proportions<1, 0>> a,
                                  inout dsequence<double, 8, proportions<0, 1>> b); };",
        );
        assert!(d.is_empty(), "{d}");
        // All-`in` overlap is harmless — nothing returns mid-collective.
        let d = lint_src(
            "interface i { void f(in dsequence<double, 8, proportions<3, 1>> a,
                                  in dsequence<double, 8, proportions<3, 1>> b); };",
        );
        assert!(d.is_empty(), "{d}");
        // A single explicit template has nothing to overlap with.
        let d = lint_src(
            "interface i { void f(in dsequence<double, 8, proportions<3, 1>> a,
                                  inout dsequence<double, 8> b); };",
        );
        assert!(!codes(&d).contains(&"PA206"), "{d}");
    }

    #[test]
    fn registry_is_complete_and_distinct() {
        let passes = all_passes();
        let codes: Vec<&str> = passes.iter().map(|p| p.code()).collect();
        assert_eq!(
            codes,
            vec![
                "PA001", "PA002", "PA003", "PA004", "PA005", "PA006", "PA007", "PA104", "PA205",
                "PA206"
            ]
        );
        for p in &passes {
            assert!(!p.summary().is_empty());
        }
        // The catalog version names the registry above; growing the
        // registry without bumping it is drift.
        assert_eq!(CATALOG_VERSION, 3, "registry changed: bump CATALOG_VERSION");
    }

    /// The catalogs in this module's docs and in DESIGN.md §9 are
    /// hand-written copies of the registry; this test fails when they
    /// drift from `code()`/`severity()`/`summary()`.
    #[test]
    fn lint_catalog_docs_match_registry() {
        let module_src = include_str!("lint.rs");
        let design = include_str!("../../../DESIGN.md");
        for p in all_passes() {
            let row = format!("| {} | {} | {} |", p.code(), p.severity(), p.summary());
            assert!(
                module_src.contains(&row),
                "lint.rs module doc is missing catalog row: {row}"
            );
            assert!(
                design.contains(&row),
                "DESIGN.md §9 is missing catalog row: {row}"
            );
        }
    }
}
