//! Hand-rolled lexer for the IDL subset.
//!
//! Handles `//` and `/* */` comments, decimal / hex / octal integer
//! literals, floating literals, string literals, and the punctuation the
//! grammar needs. Every token carries a source position for
//! diagnostics.

use crate::diag::{Diagnostic, Diagnostics, Pos};
use crate::token::{Kw, Tok, Token};

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    file: &'a str,
}

/// Tokenize `source`; `file` names it in diagnostics.
pub fn lex(source: &str, file: &str) -> Result<Vec<Token>, Diagnostics> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
        file,
    };
    let mut out = Vec::new();
    loop {
        lx.skip_trivia()?;
        let pos = Pos::new(lx.line, lx.col);
        if lx.eof() {
            out.push(Token { tok: Tok::Eof, pos });
            return Ok(out);
        }
        if lx.peek() == b'#' {
            // Preprocessor-style line. `#pragma` lines surface as
            // tokens (the analyzer reads `#pragma pardis ...`
            // directives); everything else (#include, #if, ...) is
            // skipped: this compiler treats each file as
            // self-contained.
            if let Some(text) = lx.hash_line() {
                out.push(Token {
                    tok: Tok::Pragma(text),
                    pos,
                });
            }
            continue;
        }
        let tok = lx.next_token(pos)?;
        out.push(Token { tok, pos });
    }
}

impl<'a> Lexer<'a> {
    fn eof(&self) -> bool {
        self.i >= self.src.len()
    }

    fn peek(&self) -> u8 {
        if self.eof() {
            0
        } else {
            self.src[self.i]
        }
    }

    fn peek2(&self) -> u8 {
        if self.i + 1 >= self.src.len() {
            0
        } else {
            self.src[self.i + 1]
        }
    }

    fn bump(&mut self) -> u8 {
        let c = self.src[self.i];
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn err(&self, pos: Pos, msg: impl Into<String>) -> Diagnostics {
        Diagnostics::single(Diagnostic::new(self.file, pos, msg))
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostics> {
        loop {
            if self.eof() {
                return Ok(());
            }
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while !self.eof() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = Pos::new(self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        if self.eof() {
                            return Err(self.err(start, "unterminated block comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Consume a `#`-line; return the directive text for `#pragma`
    /// lines, `None` for other preprocessor-style lines.
    fn hash_line(&mut self) -> Option<String> {
        self.bump(); // '#'
        let mut line = String::new();
        while !self.eof() && self.peek() != b'\n' {
            line.push(self.bump() as char);
        }
        let line = line.trim();
        line.strip_prefix("pragma")
            .map(|rest| rest.trim().to_string())
    }

    fn next_token(&mut self, pos: Pos) -> Result<Tok, Diagnostics> {
        let c = self.peek();
        match c {
            b'{' => {
                self.bump();
                Ok(Tok::LBrace)
            }
            b'}' => {
                self.bump();
                Ok(Tok::RBrace)
            }
            b'(' => {
                self.bump();
                Ok(Tok::LParen)
            }
            b')' => {
                self.bump();
                Ok(Tok::RParen)
            }
            b'<' => {
                self.bump();
                Ok(Tok::LAngle)
            }
            b'>' => {
                self.bump();
                Ok(Tok::RAngle)
            }
            b';' => {
                self.bump();
                Ok(Tok::Semi)
            }
            b',' => {
                self.bump();
                Ok(Tok::Comma)
            }
            b'=' => {
                self.bump();
                Ok(Tok::Eq)
            }
            b':' => {
                self.bump();
                if self.peek() == b':' {
                    self.bump();
                    Ok(Tok::ColonColon)
                } else {
                    Ok(Tok::Colon)
                }
            }
            b'"' => self.string_lit(pos),
            b'0'..=b'9' => self.number(pos),
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let mut s = String::new();
                while !self.eof() && (self.peek() == b'_' || self.peek().is_ascii_alphanumeric()) {
                    s.push(self.bump() as char);
                }
                Ok(match Kw::from_str(&s) {
                    Some(k) => Tok::Keyword(k),
                    None => Tok::Ident(s),
                })
            }
            other => Err(self.err(pos, format!("unexpected character `{}`", other as char))),
        }
    }

    fn string_lit(&mut self, pos: Pos) -> Result<Tok, Diagnostics> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            if self.eof() {
                return Err(self.err(pos, "unterminated string literal"));
            }
            match self.bump() {
                b'"' => return Ok(Tok::StrLit(s)),
                b'\\' => {
                    if self.eof() {
                        return Err(self.err(pos, "unterminated string literal"));
                    }
                    match self.bump() {
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'\\' => s.push('\\'),
                        b'"' => s.push('"'),
                        other => {
                            return Err(
                                self.err(pos, format!("unknown escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                other => s.push(other as char),
            }
        }
    }

    fn number(&mut self, pos: Pos) -> Result<Tok, Diagnostics> {
        let mut text = String::new();
        // Hex?
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            while !self.eof() && self.peek().is_ascii_hexdigit() {
                text.push(self.bump() as char);
            }
            return u64::from_str_radix(&text, 16)
                .map(Tok::IntLit)
                .map_err(|_| self.err(pos, "invalid hexadecimal literal"));
        }
        let mut is_float = false;
        while !self.eof() && self.peek().is_ascii_digit() {
            text.push(self.bump() as char);
        }
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            text.push(self.bump() as char);
            while !self.eof() && self.peek().is_ascii_digit() {
                text.push(self.bump() as char);
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            is_float = true;
            text.push(self.bump() as char);
            if self.peek() == b'+' || self.peek() == b'-' {
                text.push(self.bump() as char);
            }
            while !self.eof() && self.peek().is_ascii_digit() {
                text.push(self.bump() as char);
            }
        }
        if is_float {
            text.parse::<f64>()
                .map(Tok::FloatLit)
                .map_err(|_| self.err(pos, "invalid float literal"))
        } else if text.len() > 1 && text.starts_with('0') {
            // Octal, as in C.
            u64::from_str_radix(&text[1..], 8)
                .map(Tok::IntLit)
                .map_err(|_| self.err(pos, "invalid octal literal"))
        } else {
            text.parse::<u64>()
                .map(Tok::IntLit)
                .map_err(|_| self.err(pos, "invalid integer literal"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src, "t.idl")
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn paper_typedef_lexes() {
        let ts = toks("typedef dsequence<double, 1024> diff_array;");
        assert_eq!(
            ts,
            vec![
                Tok::Keyword(Kw::Typedef),
                Tok::Keyword(Kw::DSequence),
                Tok::LAngle,
                Tok::Keyword(Kw::Double),
                Tok::Comma,
                Tok::IntLit(1024),
                Tok::RAngle,
                Tok::Ident("diff_array".into()),
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ts = toks("// line\n/* block\nmultiline */ interface /*x*/ y;");
        assert_eq!(
            ts,
            vec![
                Tok::Keyword(Kw::Interface),
                Tok::Ident("y".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn preprocessor_lines_skipped() {
        let ts = toks("#include \"x.idl\"\nmodule m {};");
        assert_eq!(ts[0], Tok::Keyword(Kw::Module));
    }

    #[test]
    fn pragma_lines_surface_as_tokens() {
        let ts = toks("#pragma pardis threads 4\nmodule m {};");
        assert_eq!(ts[0], Tok::Pragma("pardis threads 4".into()));
        assert_eq!(ts[1], Tok::Keyword(Kw::Module));
        // Non-pragma hash lines still vanish.
        let ts = toks("#if 0\n#pragma  pardis allow PA003 \ninterface i;");
        assert_eq!(ts[0], Tok::Pragma("pardis allow PA003".into()));
    }

    #[test]
    fn numbers_dec_hex_oct_float() {
        assert_eq!(toks("42")[0], Tok::IntLit(42));
        assert_eq!(toks("0x1F")[0], Tok::IntLit(31));
        assert_eq!(toks("010")[0], Tok::IntLit(8));
        assert_eq!(toks("2.5")[0], Tok::FloatLit(2.5));
        assert_eq!(toks("1e3")[0], Tok::FloatLit(1000.0));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks(r#""a\nb\"c""#)[0], Tok::StrLit("a\nb\"c".to_string()));
    }

    #[test]
    fn scoped_names() {
        let ts = toks("a::b");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("a".into()),
                Tok::ColonColon,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let tokens = lex("interface\n  x;", "t.idl").unwrap();
        assert_eq!(tokens[0].pos, Pos::new(1, 1));
        assert_eq!(tokens[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn errors_are_located() {
        let err = lex("interface $", "t.idl").unwrap_err();
        assert!(err.to_string().contains("t.idl:1:11"));
        assert!(lex("/* unterminated", "t.idl").is_err());
        assert!(lex("\"unterminated", "t.idl").is_err());
    }
}
