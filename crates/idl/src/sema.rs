//! Semantic analysis: symbol resolution and the checks the code
//! generator relies on.

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics, Pos};
use std::collections::HashMap;

/// What a qualified name denotes.
#[derive(Debug, Clone, PartialEq)]
pub enum Symbol {
    Module,
    Typedef(Type),
    Struct(StructDef),
    Enum(EnumDef),
    Interface(Interface),
    Exception(ExceptDef),
    Const(ConstDef),
}

/// A fully resolved type, with typedefs chased.
#[derive(Debug, Clone, PartialEq)]
pub enum RType {
    Void,
    Boolean,
    Char,
    Octet,
    Short,
    UShort,
    Long,
    ULong,
    LongLong,
    ULongLong,
    Float,
    Double,
    String_,
    /// `sequence<T>`; element is itself resolved.
    Sequence(Box<RType>, Option<u64>),
    /// `dsequence<elem>`; the current Rust mapping supports primitive
    /// `double`, `long` and `octet` elements.
    DSequence(DElem, Option<u64>),
    /// A struct, by qualified name.
    Struct(String),
    /// An enum, by qualified name.
    Enum(String),
    /// An object reference, by qualified interface name.
    Interface(String),
}

/// Supported distributed-sequence element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DElem {
    Double,
    Long,
    Octet,
}

impl DElem {
    /// The Rust element type the mapping uses.
    pub fn rust_type(self) -> &'static str {
        match self {
            DElem::Double => "f64",
            DElem::Long => "i32",
            DElem::Octet => "u8",
        }
    }
}

impl RType {
    /// Whether values of this type are distributed arguments.
    pub fn is_distributed(&self) -> bool {
        matches!(self, RType::DSequence(..))
    }
}

/// The checked model handed to code generators.
#[derive(Debug, Clone)]
pub struct Model {
    /// The original AST (checked).
    pub spec: Spec,
    /// Qualified name → symbol.
    pub symbols: HashMap<String, Symbol>,
    /// File name for diagnostics.
    pub file: String,
}

/// Run semantic analysis.
pub fn check(spec: Spec, file: &str) -> Result<Model, Diagnostics> {
    let mut diags = Diagnostics::new();
    let mut symbols = HashMap::new();
    collect(&spec.defs, "", &mut symbols, &mut diags, file);
    let model = Model {
        spec,
        symbols,
        file: file.to_string(),
    };
    model.validate(&mut diags);
    if diags.has_errors() {
        Err(diags)
    } else {
        Ok(model)
    }
}

fn collect(
    defs: &[Def],
    prefix: &str,
    symbols: &mut HashMap<String, Symbol>,
    diags: &mut Diagnostics,
    file: &str,
) {
    for def in defs {
        let qname = if prefix.is_empty() {
            def.name().to_string()
        } else {
            format!("{prefix}::{}", def.name())
        };
        let sym = match def {
            Def::Module(m) => {
                collect(&m.defs, &qname, symbols, diags, file);
                Symbol::Module
            }
            Def::Typedef(t) => Symbol::Typedef(t.ty.clone()),
            Def::Struct(s) => Symbol::Struct(s.clone()),
            Def::Enum(e) => Symbol::Enum(e.clone()),
            Def::Interface(i) => Symbol::Interface(i.clone()),
            Def::Exception(e) => Symbol::Exception(e.clone()),
            Def::Const(c) => Symbol::Const(c.clone()),
        };
        // A forward interface declaration followed by the definition is
        // legal; the definition wins. Everything else may not collide.
        let collision = match (symbols.get(&qname), &sym) {
            (None, _) => false,
            (Some(Symbol::Interface(old)), Symbol::Interface(_)) => {
                !(old.ops.is_empty() && old.attrs.is_empty())
            }
            _ => true,
        };
        if collision {
            diags.push(Diagnostic::new(
                file,
                def.pos(),
                format!("duplicate definition of `{qname}`"),
            ));
        } else {
            symbols.insert(qname, sym);
        }
    }
}

impl Model {
    /// Look up `name` starting from scope `scope` (a `::`-joined path),
    /// walking outward, CORBA-style.
    pub fn lookup(&self, scope: &str, name: &str) -> Option<(&str, &Symbol)> {
        if let Some(s) = self.symbols.get(name) {
            // Absolute / already-qualified reference.
            if let Some((k, _)) = self.symbols.get_key_value(name) {
                return Some((k.as_str(), s));
            }
        }
        let mut parts: Vec<&str> = if scope.is_empty() {
            vec![]
        } else {
            scope.split("::").collect()
        };
        loop {
            let candidate = if parts.is_empty() {
                name.to_string()
            } else {
                format!("{}::{}", parts.join("::"), name)
            };
            if let Some((k, v)) = self.symbols.get_key_value(&candidate) {
                return Some((k.as_str(), v));
            }
            if parts.is_empty() {
                return None;
            }
            parts.pop();
        }
    }

    /// Resolve a syntactic type within `scope`, chasing typedefs.
    pub fn resolve_type(&self, ty: &Type, scope: &str) -> Result<RType, String> {
        self.resolve_type_depth(ty, scope, 0)
    }

    fn resolve_type_depth(&self, ty: &Type, scope: &str, depth: usize) -> Result<RType, String> {
        if depth > 64 {
            return Err("typedef cycle detected".into());
        }
        Ok(match ty {
            Type::Void => RType::Void,
            Type::Boolean => RType::Boolean,
            Type::Char => RType::Char,
            Type::Octet => RType::Octet,
            Type::Short => RType::Short,
            Type::UShort => RType::UShort,
            Type::Long => RType::Long,
            Type::ULong => RType::ULong,
            Type::LongLong => RType::LongLong,
            Type::ULongLong => RType::ULongLong,
            Type::Float => RType::Float,
            Type::Double => RType::Double,
            Type::String_ => RType::String_,
            Type::Sequence(elem, bound) => {
                let e = self.resolve_type_depth(elem, scope, depth + 1)?;
                if e.is_distributed() {
                    return Err("a sequence cannot contain a dsequence".into());
                }
                RType::Sequence(Box::new(e), *bound)
            }
            Type::DSequence(elem, bound, _dist) => {
                let e = self.resolve_type_depth(elem, scope, depth + 1)?;
                let de = match e {
                    RType::Double => DElem::Double,
                    RType::Long => DElem::Long,
                    RType::Octet => DElem::Octet,
                    other => {
                        return Err(format!(
                            "the current mapping supports dsequence elements `double`, `long` and `octet`, not {other:?}"
                        ))
                    }
                };
                RType::DSequence(de, *bound)
            }
            Type::Named(name) => match self.lookup(scope, name) {
                None => return Err(format!("unknown type `{name}`")),
                Some((qname, sym)) => match sym {
                    Symbol::Typedef(inner) => {
                        // Typedefs resolve in the scope they were
                        // declared in.
                        let tscope = parent_scope(qname);
                        self.resolve_type_depth(&inner.clone(), &tscope, depth + 1)?
                    }
                    Symbol::Struct(_) => RType::Struct(qname.to_string()),
                    Symbol::Enum(_) => RType::Enum(qname.to_string()),
                    Symbol::Interface(_) => RType::Interface(qname.to_string()),
                    Symbol::Exception(_) => {
                        return Err(format!("exception `{name}` used as a type"))
                    }
                    Symbol::Const(_) => return Err(format!("constant `{name}` used as a type")),
                    Symbol::Module => return Err(format!("module `{name}` used as a type")),
                },
            },
        })
    }

    /// All operations of an interface including inherited ones (base
    /// operations first, in declaration order).
    pub fn all_ops(&self, iface: &Interface, scope: &str) -> Result<Vec<OpDecl>, String> {
        let mut ops = Vec::new();
        for base in &iface.bases {
            match self.lookup(scope, base) {
                Some((qname, Symbol::Interface(b))) => {
                    let bscope = parent_scope(qname);
                    ops.extend(self.all_ops(&b.clone(), &bscope)?);
                }
                _ => return Err(format!("unknown base interface `{base}`")),
            }
        }
        ops.extend(iface.ops.iter().cloned());
        Ok(ops)
    }

    fn validate(&self, diags: &mut Diagnostics) {
        self.validate_defs(&self.spec.defs, "", diags);
    }

    fn validate_defs(&self, defs: &[Def], scope: &str, diags: &mut Diagnostics) {
        for def in defs {
            match def {
                Def::Module(m) => {
                    let inner = if scope.is_empty() {
                        m.name.clone()
                    } else {
                        format!("{scope}::{}", m.name)
                    };
                    self.validate_defs(&m.defs, &inner, diags);
                }
                Def::Typedef(t) => {
                    self.check_type(&t.ty, scope, t.pos, diags);
                }
                Def::Struct(s) => {
                    let mut seen = std::collections::HashSet::new();
                    for (mname, mty, mpos) in &s.members {
                        if !seen.insert(mname.clone()) {
                            diags.push(Diagnostic::new(
                                &self.file,
                                *mpos,
                                format!("duplicate member `{mname}` in struct `{}`", s.name),
                            ));
                        }
                        if let Some(rt) = self.check_type(mty, scope, *mpos, diags) {
                            if rt.is_distributed() {
                                diags.push(Diagnostic::new(
                                    &self.file,
                                    *mpos,
                                    "struct members cannot be distributed sequences",
                                ));
                            }
                        }
                    }
                }
                Def::Exception(e) => {
                    for (_, mty, mpos) in &e.members {
                        self.check_type(mty, scope, *mpos, diags);
                    }
                }
                Def::Enum(e) => {
                    let mut seen = std::collections::HashSet::new();
                    for v in &e.variants {
                        if !seen.insert(v.clone()) {
                            diags.push(Diagnostic::new(
                                &self.file,
                                e.pos,
                                format!("duplicate enum variant `{v}`"),
                            ));
                        }
                    }
                }
                Def::Const(c) => {
                    if let Some(rt) = self.check_type(&c.ty, scope, c.pos, diags) {
                        let ok = matches!(
                            (&rt, &c.value),
                            (RType::Boolean, Literal::Bool(_))
                                | (RType::String_, Literal::Str(_))
                                | (RType::Float | RType::Double, Literal::Float(_))
                                | (RType::Float | RType::Double, Literal::Int(_))
                                | (
                                    RType::Short
                                        | RType::UShort
                                        | RType::Long
                                        | RType::ULong
                                        | RType::LongLong
                                        | RType::ULongLong
                                        | RType::Octet,
                                    Literal::Int(_)
                                )
                        );
                        if !ok {
                            diags.push(Diagnostic::new(
                                &self.file,
                                c.pos,
                                format!("literal does not match const type for `{}`", c.name),
                            ));
                        }
                    }
                }
                Def::Interface(i) => self.validate_interface(i, scope, diags),
            }
        }
    }

    fn validate_interface(&self, i: &Interface, scope: &str, diags: &mut Diagnostics) {
        for base in &i.bases {
            match self.lookup(scope, base) {
                Some((_, Symbol::Interface(_))) => {}
                _ => diags.push(Diagnostic::new(
                    &self.file,
                    i.pos,
                    format!("unknown base interface `{base}`"),
                )),
            }
        }
        let mut op_names = std::collections::HashSet::new();
        for op in &i.ops {
            if !op_names.insert(op.name.clone()) {
                diags.push(Diagnostic::new(
                    &self.file,
                    op.pos,
                    format!("duplicate operation `{}` (IDL has no overloading)", op.name),
                ));
            }
            let ret = self.check_type(&op.ret, scope, op.pos, diags);
            if let Some(rt) = &ret {
                if rt.is_distributed() {
                    diags.push(Diagnostic::new(
                        &self.file,
                        op.pos,
                        "return values use the default blockwise distribution; declare the \
                         result as an `out dsequence` parameter instead",
                    ));
                }
            }
            if op.oneway {
                if op.ret != Type::Void {
                    diags.push(Diagnostic::new(
                        &self.file,
                        op.pos,
                        format!("oneway operation `{}` must return void", op.name),
                    ));
                }
                for p in &op.params {
                    if p.dir != ParamDir::In {
                        // A distributed argument in a returning
                        // direction is accepted here so the analyzer
                        // can flag the hazard precisely (lint PA205);
                        // non-distributed parameters keep the classic
                        // CORBA rejection.
                        let distributed = self
                            .check_type(&p.ty, scope, p.pos, &mut Diagnostics::new())
                            .map(|rt| rt.is_distributed())
                            .unwrap_or(false);
                        if !distributed {
                            diags.push(Diagnostic::new(
                                &self.file,
                                p.pos,
                                format!(
                                    "oneway operation `{}` can only have `in` parameters",
                                    op.name
                                ),
                            ));
                        }
                    }
                }
                if !op.raises.is_empty() {
                    diags.push(Diagnostic::new(
                        &self.file,
                        op.pos,
                        format!("oneway operation `{}` cannot raise exceptions", op.name),
                    ));
                }
            }
            let mut pnames = std::collections::HashSet::new();
            for p in &op.params {
                if !pnames.insert(p.name.clone()) {
                    diags.push(Diagnostic::new(
                        &self.file,
                        p.pos,
                        format!("duplicate parameter `{}`", p.name),
                    ));
                }
                self.check_type(&p.ty, scope, p.pos, diags);
            }
            for r in &op.raises {
                match self.lookup(scope, r) {
                    Some((_, Symbol::Exception(_))) => {}
                    _ => diags.push(Diagnostic::new(
                        &self.file,
                        op.pos,
                        format!("`raises({r})` does not name an exception"),
                    )),
                }
            }
        }
        for a in &i.attrs {
            if let Some(rt) = self.check_type(&a.ty, scope, a.pos, diags) {
                if rt.is_distributed() {
                    diags.push(Diagnostic::new(
                        &self.file,
                        a.pos,
                        "attributes cannot be distributed sequences",
                    ));
                }
            }
        }
    }

    /// Run the analyzer lint passes (`PA001`…) over this checked
    /// model. See [`crate::lint`] for the catalog.
    pub fn lint(&self, opts: &crate::lint::LintOptions) -> Diagnostics {
        crate::lint::run(self, opts)
    }

    fn check_type(
        &self,
        ty: &Type,
        scope: &str,
        pos: Pos,
        diags: &mut Diagnostics,
    ) -> Option<RType> {
        match self.resolve_type(ty, scope) {
            Ok(rt) => Some(rt),
            Err(msg) => {
                diags.push(Diagnostic::new(&self.file, pos, msg));
                None
            }
        }
    }
}

pub(crate) fn parent_scope(qname: &str) -> String {
    match qname.rfind("::") {
        Some(i) => qname[..i].to_string(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, parser};

    fn model(src: &str) -> Result<Model, Diagnostics> {
        let toks = lexer::lex(src, "t.idl").unwrap();
        let spec = parser::parse(toks, "t.idl").unwrap();
        check(spec, "t.idl")
    }

    #[test]
    fn paper_example_checks() {
        let m = model(
            "typedef dsequence<double, 1024> diff_array;
             interface diff_object { void diffusion(in long t, inout diff_array d); };",
        )
        .unwrap();
        let rt = m
            .resolve_type(&Type::Named("diff_array".into()), "")
            .unwrap();
        assert_eq!(rt, RType::DSequence(DElem::Double, Some(1024)));
    }

    #[test]
    fn typedef_chains_resolve() {
        let m = model("typedef long a; typedef a b; typedef b c;").unwrap();
        assert_eq!(
            m.resolve_type(&Type::Named("c".into()), "").unwrap(),
            RType::Long
        );
    }

    #[test]
    fn module_scoping() {
        let m = model(
            "module phys { typedef dsequence<double> field;
                           interface sim { void step(inout field f); }; };",
        )
        .unwrap();
        // Lookup from inside the module.
        let rt = m
            .resolve_type(&Type::Named("field".into()), "phys")
            .unwrap();
        assert_eq!(rt, RType::DSequence(DElem::Double, None));
        // Qualified lookup from outside.
        let rt = m
            .resolve_type(&Type::Named("phys::field".into()), "")
            .unwrap();
        assert_eq!(rt, RType::DSequence(DElem::Double, None));
    }

    #[test]
    fn unknown_type_rejected() {
        let err = model("interface i { void f(in nosuch x); };").unwrap_err();
        assert!(err.to_string().contains("unknown type"));
    }

    #[test]
    fn dsequence_of_struct_rejected() {
        let err = model("struct P { double x; }; typedef dsequence<P> bad;").unwrap_err();
        assert!(err.to_string().contains("dsequence elements"));
    }

    #[test]
    fn nested_dsequence_rejected() {
        let err = model("typedef sequence<dsequence<double>> bad;").unwrap_err();
        assert!(err.to_string().contains("cannot contain"));
    }

    #[test]
    fn duplicates_rejected() {
        assert!(model("typedef long x; typedef double x;").is_err());
        assert!(model("interface i { void f(); void f(in long a); };").is_err());
        assert!(model("enum e { A, A };").is_err());
        assert!(model("struct s { long a; double a; };").is_err());
    }

    #[test]
    fn forward_interface_declaration_ok() {
        let m = model("interface fwd; interface fwd { void f(); };").unwrap();
        match m.lookup("", "fwd") {
            Some((_, Symbol::Interface(i))) => assert_eq!(i.ops.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oneway_constraints() {
        assert!(model("interface i { oneway long f(); };").is_err());
        assert!(model("interface i { oneway void f(out long x); };").is_err());
        assert!(model("exception e {}; interface i { oneway void f() raises(e); };").is_err());
        assert!(model("interface i { oneway void f(in long x); };").is_ok());
        // A distributed argument may take a returning direction so the
        // analyzer can flag it (PA205) instead of sema rejecting it.
        assert!(model("interface i { oneway void f(inout dsequence<double> d); };").is_ok());
        assert!(
            model("typedef dsequence<double> arr; interface i { oneway void f(out arr d); };")
                .is_ok()
        );
    }

    #[test]
    fn raises_must_name_exception() {
        assert!(model("interface i { void f() raises(nothere); };").is_err());
        assert!(model("struct s { long a; }; interface i { void f() raises(s); };").is_err());
        assert!(model("exception e { long code; }; interface i { void f() raises(e); };").is_ok());
    }

    #[test]
    fn const_literal_types() {
        assert!(model("const long x = 5;").is_ok());
        assert!(model("const double y = 5;").is_ok());
        assert!(model("const string s = \"hi\";").is_ok());
        assert!(model("const boolean b = TRUE;").is_ok());
        assert!(model("const long bad = \"str\";").is_err());
        assert!(model("const string bad = 7;").is_err());
    }

    #[test]
    fn inherited_ops_flatten() {
        let m = model(
            "interface a { void f(); };
             interface b : a { void g(); };",
        )
        .unwrap();
        match m.lookup("", "b") {
            Some((_, Symbol::Interface(i))) => {
                let ops = m.all_ops(&i.clone(), "").unwrap();
                let names: Vec<&str> = ops.iter().map(|o| o.name.as_str()).collect();
                assert_eq!(names, vec!["f", "g"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn distributed_return_rejected_with_hint() {
        let err = model("interface i { dsequence<double> f(); };").unwrap_err();
        assert!(err.to_string().contains("out dsequence"));
    }

    #[test]
    fn struct_member_dsequence_rejected() {
        let err = model("struct s { dsequence<double> d; };").unwrap_err();
        assert!(err.to_string().contains("struct members"));
    }
}
