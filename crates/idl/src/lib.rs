//! # pardis-idl — the PARDIS IDL compiler
//!
//! "As in other CORBA implementations, the IDL compiler translates the
//! specifications of objects into 'stub' code containing calls to
//! communication libraries and generating requests to locating and
//! activating agents." (§2.3)
//!
//! This crate compiles a subset of CORBA IDL extended with the PARDIS
//! `dsequence` distributed-sequence type into Rust client stubs and
//! server skeletons over `pardis-core`. The paper's running example
//! compiles verbatim:
//!
//! ```text
//! typedef dsequence<double, 1024> diff_array;
//!
//! interface diff_object {
//!     void diffusion(in long timestep, inout diff_array darray);
//! };
//! ```
//!
//! For each interface the generator emits, exactly as §2.1 describes,
//! a proxy with `_bind` / `_spmd_bind` constructors and **four methods
//! per operation with distributed arguments**: the distributed mapping,
//! the non-distributed (`_nd`) mapping, and their non-blocking (`_nb`)
//! counterparts returning futures.
//!
//! ## Pipeline
//!
//! [`lexer`] → [`parser`] → [`sema`] → [`codegen::rust`]
//!
//! ```
//! let idl = r#"
//!     typedef dsequence<double, 1024> diff_array;
//!     interface diff_object {
//!         void diffusion(in long timestep, inout diff_array darray);
//!     };
//! "#;
//! let code = pardis_idl::compile_to_rust(idl, "diff.idl").unwrap();
//! assert!(code.contains("pub struct diff_objectProxy"));
//! assert!(code.contains("fn diffusion_nd"));
//! assert!(code.contains("fn diffusion_nb"));
//! ```

pub mod ast;
pub mod codegen;
pub mod diag;
pub mod lexer;
pub mod lint;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;

pub use diag::{Diagnostic, Diagnostics};

/// Compile IDL source text to Rust stub/skeleton code.
///
/// `filename` is used in diagnostics only. On error, returns the
/// accumulated diagnostics.
pub fn compile_to_rust(source: &str, filename: &str) -> Result<String, Diagnostics> {
    let spec = parse_and_check(source, filename)?;
    Ok(codegen::rust::generate(&spec))
}

/// Parse and semantically check IDL source, returning the checked model.
pub fn parse_and_check(source: &str, filename: &str) -> Result<sema::Model, Diagnostics> {
    let tokens = lexer::lex(source, filename)?;
    let spec = parser::parse(tokens, filename)?;
    sema::check(spec, filename)
}

#[cfg(test)]
mod tests {
    #[test]
    fn end_to_end_paper_example() {
        let idl = r#"
            typedef dsequence<double, 1024> diff_array;
            interface diff_object {
                void diffusion(in long timestep, inout diff_array darray);
            };
        "#;
        let code = super::compile_to_rust(idl, "diff.idl").unwrap();
        // The four methods of §2.1.
        assert!(code.contains("pub fn diffusion("));
        assert!(code.contains("pub fn diffusion_nd("));
        assert!(code.contains("pub fn diffusion_nb"));
        assert!(code.contains("pub fn diffusion_nd_nb"));
        assert!(code.contains("_bind"));
        assert!(code.contains("_spmd_bind"));
        assert!(code.contains("IDL:diff_object:1.0"));
    }

    #[test]
    fn syntax_error_has_location() {
        let err = super::compile_to_rust("interface x {", "broken.idl").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("broken.idl"), "{text}");
    }
}
