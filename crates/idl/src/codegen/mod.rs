//! Code generators: [`rust`] (stubs and skeletons over `pardis-core`)
//! and [`doc`] (Markdown interface reference).
//!
//! The paper's compiler targeted C++ packages (HPC++, and direct
//! run-time-system mappings); the architecture leaves room for more
//! backends, which is why generation is a separate stage over the
//! checked [`crate::sema::Model`].

pub mod doc;
pub mod rust;
