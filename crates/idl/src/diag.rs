//! Compiler diagnostics with source locations.
//!
//! A [`Diagnostic`] carries a file, a position, a message, a
//! [`Severity`], and (for analyzer findings) a lint code such as
//! `PA001`. Plain compiler errors keep the historical
//! `file:line:col: error: message` rendering; lint findings render as
//! `file:line:col: warning[PA001]: message`. The whole collection can
//! be serialized to a machine-readable JSON document for
//! `pardis-idlc --analyze`.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Pos {
    /// Construct a position.
    pub fn new(line: u32, col: u32) -> Pos {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not fatal; exit status stays 0 unless warnings
    /// are denied.
    Warning,
    /// The input is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One error or warning produced by the compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the diagnostic refers to.
    pub file: String,
    /// Where in the file.
    pub pos: Pos,
    /// Human-readable message.
    pub message: String,
    /// Error by default; lints may downgrade to warnings.
    pub severity: Severity,
    /// Lint code (`PA001`…) for analyzer findings, `None` for plain
    /// compiler errors.
    pub code: Option<String>,
}

impl Diagnostic {
    /// Construct an error diagnostic (no lint code).
    pub fn new(file: &str, pos: Pos, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            pos,
            message: message.into(),
            severity: Severity::Error,
            code: None,
        }
    }

    /// Construct a warning diagnostic (no lint code).
    pub fn warning(file: &str, pos: Pos, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::new(file, pos, message)
        }
    }

    /// Construct an analyzer finding with a lint code.
    pub fn lint(
        code: &str,
        severity: Severity,
        file: &str,
        pos: Pos,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity,
            code: Some(code.to_string()),
            ..Diagnostic::new(file, pos, message)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.code {
            Some(c) => write!(
                f,
                "{}:{}: {}[{c}]: {}",
                self.file, self.pos, self.severity, self.message
            ),
            None => write!(
                f,
                "{}:{}: {}: {}",
                self.file, self.pos, self.severity, self.message
            ),
        }
    }
}

/// An ordered collection of diagnostics (never empty when returned as an
/// `Err`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics {
    /// The individual diagnostics, in source order.
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Record a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Whether any error-severity diagnostics were recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether any warning-severity diagnostics were recorded.
    pub fn has_warnings(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Warning)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Wrap a single diagnostic.
    pub fn single(d: Diagnostic) -> Diagnostics {
        Diagnostics { items: vec![d] }
    }

    /// Sort into deterministic reporting order: file, then position,
    /// then lint code. Lints from independent passes interleave by
    /// source location instead of by pass.
    pub fn sort(&mut self) {
        self.items
            .sort_by(|a, b| (&a.file, a.pos, &a.code).cmp(&(&b.file, b.pos, &b.code)));
    }

    /// Keep only diagnostics at `min` severity or above.
    pub fn filter_severity(&self, min: Severity) -> Diagnostics {
        Diagnostics {
            items: self
                .items
                .iter()
                .filter(|d| d.severity >= min)
                .cloned()
                .collect(),
        }
    }

    /// Render as a machine-readable JSON document (the
    /// `pardis-idlc --analyze` output schema):
    ///
    /// ```json
    /// {"schema_version":2,"lint_catalog_version":3,"version":1,
    ///  "findings":[{"code":"PA001","severity":"warning","file":"x.idl",
    ///  "line":3,"col":7,"message":"..."}]}
    /// ```
    ///
    /// `schema_version` is the document's real version (bumped to 2
    /// when the PA2xx lints landed); `lint_catalog_version` names the
    /// lint registry the findings can draw from
    /// ([`crate::lint::CATALOG_VERSION`]); the legacy `version:1` key
    /// stays so v1 consumers that match on it keep parsing.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"schema_version\":2,\"lint_catalog_version\":{},\"version\":1,\"findings\":[",
            crate::lint::CATALOG_VERSION
        );
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"code\":");
            match &d.code {
                Some(c) => {
                    s.push('"');
                    s.push_str(&json_escape(c));
                    s.push('"');
                }
                None => s.push_str("null"),
            }
            s.push_str(&format!(
                ",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                d.severity,
                json_escape(&d.file),
                d.pos.line,
                d.pos.col,
                json_escape(&d.message)
            ));
        }
        s.push_str("]}");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_location() {
        let d = Diagnostic::new("f.idl", Pos::new(3, 7), "unexpected token");
        assert_eq!(d.to_string(), "f.idl:3:7: error: unexpected token");
    }

    #[test]
    fn lint_display_carries_code_and_severity() {
        let d = Diagnostic::lint(
            "PA001",
            Severity::Warning,
            "f.idl",
            Pos::new(2, 5),
            "ineffective template",
        );
        assert_eq!(
            d.to_string(),
            "f.idl:2:5: warning[PA001]: ineffective template"
        );
    }

    #[test]
    fn collection_accumulates() {
        let mut ds = Diagnostics::new();
        assert!(!ds.has_errors());
        ds.push(Diagnostic::new("f", Pos::new(1, 1), "a"));
        ds.push(Diagnostic::new("f", Pos::new(2, 1), "b"));
        assert_eq!(ds.len(), 2);
        let text = ds.to_string();
        assert!(text.contains("a") && text.contains("b"));
    }

    #[test]
    fn warnings_do_not_count_as_errors() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning("f", Pos::new(1, 1), "w"));
        assert!(!ds.has_errors());
        assert!(ds.has_warnings());
        assert_eq!(ds.warning_count(), 1);
        assert_eq!(ds.error_count(), 0);
    }

    #[test]
    fn sort_orders_by_file_then_position() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::new("b.idl", Pos::new(1, 1), "third"));
        ds.push(Diagnostic::new("a.idl", Pos::new(9, 1), "second"));
        ds.push(Diagnostic::new("a.idl", Pos::new(2, 4), "first"));
        ds.sort();
        let msgs: Vec<&str> = ds.items.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(msgs, vec!["first", "second", "third"]);
    }

    #[test]
    fn severity_filter() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning("f", Pos::new(1, 1), "w"));
        ds.push(Diagnostic::new("f", Pos::new(2, 1), "e"));
        let errs = ds.filter_severity(Severity::Error);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs.items[0].message, "e");
        assert_eq!(ds.filter_severity(Severity::Warning).len(), 2);
    }

    #[test]
    fn json_schema_round_trips_fields() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::lint(
            "PA002",
            Severity::Error,
            "x.idl",
            Pos::new(4, 11),
            "arity \"mismatch\"",
        ));
        let j = ds.to_json();
        assert!(
            j.starts_with("{\"schema_version\":2,\"lint_catalog_version\":3,\"version\":1,"),
            "{j}"
        );
        assert!(j.contains("\"code\":\"PA002\""), "{j}");
        assert!(j.contains("\"severity\":\"error\""), "{j}");
        assert!(j.contains("\"line\":4"), "{j}");
        assert!(j.contains("\"col\":11"), "{j}");
        assert!(j.contains("arity \\\"mismatch\\\""), "{j}");
        // Plain errors serialize with a null code.
        let ds2 = Diagnostics::single(Diagnostic::new("y.idl", Pos::new(1, 1), "parse"));
        assert!(ds2.to_json().contains("\"code\":null"));
    }
}
