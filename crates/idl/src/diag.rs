//! Compiler diagnostics with source locations.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Pos {
    /// Construct a position.
    pub fn new(line: u32, col: u32) -> Pos {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One error or warning produced by the compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the diagnostic refers to.
    pub file: String,
    /// Where in the file.
    pub pos: Pos,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(file: &str, pos: Pos, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: error: {}", self.file, self.pos, self.message)
    }
}

/// An ordered collection of diagnostics (never empty when returned as an
/// `Err`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics {
    /// The individual diagnostics, in source order.
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Record a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Whether any diagnostics were recorded.
    pub fn has_errors(&self) -> bool {
        !self.items.is_empty()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Wrap a single diagnostic.
    pub fn single(d: Diagnostic) -> Diagnostics {
        Diagnostics { items: vec![d] }
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_location() {
        let d = Diagnostic::new("f.idl", Pos::new(3, 7), "unexpected token");
        assert_eq!(d.to_string(), "f.idl:3:7: error: unexpected token");
    }

    #[test]
    fn collection_accumulates() {
        let mut ds = Diagnostics::new();
        assert!(!ds.has_errors());
        ds.push(Diagnostic::new("f", Pos::new(1, 1), "a"));
        ds.push(Diagnostic::new("f", Pos::new(2, 1), "b"));
        assert_eq!(ds.len(), 2);
        let text = ds.to_string();
        assert!(text.contains("a") && text.contains("b"));
    }
}
