//! Token definitions for the IDL lexer.

use crate::diag::Pos;
use std::fmt;

/// IDL keywords recognized by the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    Module,
    Interface,
    Typedef,
    Struct,
    Enum,
    Const,
    Exception,
    Sequence,
    DSequence,
    Void,
    Boolean,
    Char,
    Octet,
    Short,
    Long,
    Unsigned,
    Float,
    Double,
    String_,
    In,
    Out,
    InOut,
    Oneway,
    Raises,
    Readonly,
    Attribute,
    True_,
    False_,
    /// `block` — distribution annotation in `dsequence<T, N, block>`.
    Block,
    /// `proportions` — weighted distribution annotation in
    /// `dsequence<T, N, proportions<2, 1, 1>>`.
    Proportions,
    /// `idempotent` — operation qualifier: safe to re-invoke after a
    /// transport fault, so retry policies apply.
    Idempotent,
}

impl Kw {
    /// Keyword for an identifier-shaped lexeme, if it is one. CORBA IDL
    /// keywords are case-sensitive (lowercase), except the boolean
    /// literals which are conventionally spelled `TRUE`/`FALSE`.
    /// (Inherent and infallible-by-Option, hence not the `FromStr`
    /// trait.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Kw> {
        Some(match s {
            "module" => Kw::Module,
            "interface" => Kw::Interface,
            "typedef" => Kw::Typedef,
            "struct" => Kw::Struct,
            "enum" => Kw::Enum,
            "const" => Kw::Const,
            "exception" => Kw::Exception,
            "sequence" => Kw::Sequence,
            "dsequence" => Kw::DSequence,
            "void" => Kw::Void,
            "boolean" => Kw::Boolean,
            "char" => Kw::Char,
            "octet" => Kw::Octet,
            "short" => Kw::Short,
            "long" => Kw::Long,
            "unsigned" => Kw::Unsigned,
            "float" => Kw::Float,
            "double" => Kw::Double,
            "string" => Kw::String_,
            "in" => Kw::In,
            "out" => Kw::Out,
            "inout" => Kw::InOut,
            "oneway" => Kw::Oneway,
            "raises" => Kw::Raises,
            "readonly" => Kw::Readonly,
            "attribute" => Kw::Attribute,
            "TRUE" => Kw::True_,
            "FALSE" => Kw::False_,
            "block" => Kw::Block,
            "proportions" => Kw::Proportions,
            "idempotent" => Kw::Idempotent,
            _ => return None,
        })
    }
}

/// A lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Keyword(Kw),
    IntLit(u64),
    FloatLit(f64),
    StrLit(String),
    /// A `#pragma` line, with the text after `#pragma` (trimmed).
    /// Other preprocessor-style lines are skipped entirely.
    Pragma(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LAngle,
    RAngle,
    Semi,
    Comma,
    Colon,
    ColonColon,
    Eq,
    /// End of input (always the final token).
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Keyword(k) => write!(f, "keyword `{k:?}`"),
            Tok::IntLit(v) => write!(f, "integer literal {v}"),
            Tok::FloatLit(v) => write!(f, "float literal {v}"),
            Tok::StrLit(s) => write!(f, "string literal {s:?}"),
            Tok::Pragma(s) => write!(f, "`#pragma {s}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LAngle => write!(f, "`<`"),
            Tok::RAngle => write!(f, "`>`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::ColonColon => write!(f, "`::`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The lexeme.
    pub tok: Tok,
    /// Where it begins.
    pub pos: Pos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(Kw::from_str("interface"), Some(Kw::Interface));
        assert_eq!(Kw::from_str("dsequence"), Some(Kw::DSequence));
        assert_eq!(Kw::from_str("TRUE"), Some(Kw::True_));
        assert_eq!(
            Kw::from_str("Interface"),
            None,
            "keywords are case-sensitive"
        );
        assert_eq!(Kw::from_str("diffusion"), None);
    }

    #[test]
    fn token_display() {
        assert_eq!(Tok::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(Tok::LBrace.to_string(), "`{`");
    }
}
