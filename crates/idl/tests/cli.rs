//! Integration tests of the `pardis-idlc` command-line driver.

use std::io::Write;
use std::process::Command;

fn idlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pardis-idlc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pardis-idlc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const GOOD: &str = r#"
typedef dsequence<double, 1024> diff_array;
interface diff_object {
    void diffusion(in long timestep, inout diff_array darray);
};
"#;

#[test]
fn compiles_to_stdout() {
    let path = write_temp("good.idl", GOOD);
    let out = idlc().arg(&path).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let code = String::from_utf8(out.stdout).unwrap();
    assert!(code.contains("pub struct diff_objectProxy"));
    assert!(code.contains("pub fn diffusion_nd_nb"));
}

#[test]
fn writes_output_file() {
    let path = write_temp("good2.idl", GOOD);
    let out_path = std::env::temp_dir().join("pardis-idlc-tests/out.rs");
    let out = idlc().arg(&path).arg("-o").arg(&out_path).output().unwrap();
    assert!(out.status.success());
    let code = std::fs::read_to_string(&out_path).unwrap();
    assert!(code.contains("diff_objectSkeleton"));
}

#[test]
fn check_mode_reports_errors_with_location() {
    let path = write_temp("bad.idl", "interface x { void f(in nosuch t); };");
    let out = idlc().arg("--check").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown type"), "{err}");
    assert!(err.contains("bad.idl:1:"), "{err}");
}

#[test]
fn check_mode_accepts_valid_idl() {
    let path = write_temp("good3.idl", GOOD);
    let out = idlc().arg("--check").arg(&path).output().unwrap();
    assert!(out.status.success());
    assert!(out.stdout.is_empty());
}

#[test]
fn emit_idl_normalizes() {
    let path = write_temp(
        "messy.idl",
        "interface   x{void f(/*c*/in long    a);};  // comment",
    );
    let out = idlc().arg("--emit-idl").arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("interface x {"));
    assert!(text.contains("void f(in long a);"));
    // The normalized form still compiles.
    let norm = write_temp("normalized.idl", &text);
    assert!(idlc()
        .arg("--check")
        .arg(&norm)
        .output()
        .unwrap()
        .status
        .success());
}

#[test]
fn emit_doc_renders_markdown() {
    let path = write_temp("doc.idl", GOOD);
    let out = idlc().arg("--emit-doc").arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("# IDL reference"));
    assert!(text.contains("interface `diff_object`"));
    assert!(text.contains("**[distributed]**"));
}

#[test]
fn usage_errors() {
    // No input file.
    let out = idlc().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Unknown flag.
    let out = idlc().arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Missing file.
    let out = idlc().arg("/nonexistent/x.idl").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // --allow without a code.
    let out = idlc().arg("--analyze").arg("--allow").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Help succeeds.
    let out = idlc().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}

#[test]
fn exit_codes_follow_the_scheme() {
    // 0: clean file.
    let clean = write_temp("ec_clean.idl", GOOD);
    let out = idlc().arg("--analyze").arg(&clean).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    // 0: warning-severity finding without --deny-warnings...
    let warn = write_temp("ec_warn.idl", "typedef dsequence<double, 1024, block> b;");
    let out = idlc().arg("--analyze").arg(&warn).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stderr).contains("PA004"));
    // 1: ...but denied warnings fail.
    let out = idlc()
        .arg("--analyze")
        .arg("--deny-warnings")
        .arg(&warn)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    // 1: error-severity finding.
    let err = write_temp(
        "ec_err.idl",
        "typedef dsequence<double, 64, proportions<0, 0>> z;",
    );
    let out = idlc().arg("--analyze").arg(&err).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    // 2: file that does not parse.
    let broken = write_temp("ec_broken.idl", "interface x {");
    let out = idlc().arg("--analyze").arg(&broken).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Compile/check modes use 2 for rejected input as well.
    let out = idlc().arg("--check").arg(&broken).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = idlc().arg(&broken).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn analyze_emits_schema_json() {
    let warn = write_temp(
        "aj_warn.idl",
        "#pragma pardis threads 4\ntypedef dsequence<double, 64, proportions<1, 2>> p;",
    );
    let out = idlc().arg("--analyze").arg(&warn).output().unwrap();
    let json = String::from_utf8(out.stdout).unwrap();
    // The stable machine-readable schema: schema_version + findings
    // array with code/severity/file/line/col/message fields.
    assert!(
        json.starts_with(
            "{\"schema_version\":2,\"lint_catalog_version\":3,\"version\":1,\"findings\":["
        ),
        "{json}"
    );
    // v1 consumers keyed on the legacy `"version":1` field keep parsing.
    assert!(json.contains("\"version\":1"), "{json}");
    assert!(json.contains("\"code\":\"PA002\""), "{json}");
    assert!(json.contains("\"severity\":\"error\""), "{json}");
    assert!(json.contains("\"line\":2"), "{json}");
    assert!(json.contains("aj_warn.idl"), "{json}");
    // A clean file still emits the envelope.
    let clean = write_temp("aj_clean.idl", GOOD);
    let out = idlc().arg("--analyze").arg(&clean).output().unwrap();
    let json = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        json.trim(),
        "{\"schema_version\":2,\"lint_catalog_version\":3,\"version\":1,\"findings\":[]}"
    );
}

#[test]
fn analyze_allow_suppresses_codes() {
    let warn = write_temp("al_warn.idl", "typedef dsequence<double, 1024, block> b;");
    let out = idlc()
        .arg("--analyze")
        .arg("--allow")
        .arg("PA004")
        .arg(&warn)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        json.trim(),
        "{\"schema_version\":2,\"lint_catalog_version\":3,\"version\":1,\"findings\":[]}"
    );
}

#[test]
fn analyze_orders_multiple_findings_by_position() {
    let multi = write_temp(
        "multi.idl",
        "typedef dsequence<double, 64, proportions<0, 0>> z;\n\
         typedef dsequence<double, 1024, block> b;\n\
         typedef dsequence<double, 64, proportions<1, 0>> gap;\n",
    );
    let out = idlc().arg("--analyze").arg(&multi).output().unwrap();
    let json = String::from_utf8(out.stdout).unwrap();
    let order: Vec<usize> = ["PA001", "PA004", "PA003"]
        .iter()
        .map(|c| json.find(*c).unwrap_or_else(|| panic!("{c} in {json}")))
        .collect();
    assert!(order.windows(2).all(|w| w[0] < w[1]), "{json}");
}
