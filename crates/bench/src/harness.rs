//! A persistent real-runtime client/server pair for wall-clock
//! benchmarks.
//!
//! Standing a world up per measurement would swamp the numbers with
//! thread-spawn time, so the harness keeps one server machine (`n`
//! threads, the generated `diff_object` servant) and one client machine
//! (`c` threads) alive and feeds the client invocation commands over
//! channels. The measured operation matches the paper's experiment: an
//! invocation carrying **one `in` distributed-sequence argument**
//! (`total_heat`), averaged over a configurable number of repetitions.

use crossbeam::channel::{bounded, Receiver, Sender};
use pardis::apps::diffusion::DiffusionServant;
use pardis::prelude::*;
use pardis::stubs::diffusion::{diff_objectProxy, diff_objectSkeleton};
use pardis_core::MachineHandle;
use std::time::{Duration, Instant};

/// A command to the resident client machine.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// Run `iters` collective `total_heat` invocations on a sequence of
    /// `len` doubles with the given transfer mode.
    Invoke {
        len: usize,
        mode: TransferMode,
        iters: usize,
    },
    /// Shut the pair down.
    Stop,
}

/// A resident client/server pair for timed invocations.
pub struct RuntimeHarness {
    cmd_txs: Vec<Sender<Cmd>>,
    result_rx: Receiver<Duration>,
    client: Option<MachineHandle<()>>,
    server: Option<MachineHandle<()>>,
}

impl RuntimeHarness {
    /// Stand up a `c`-thread client and an `n`-thread server joined by
    /// `link`. `translate` forces data translation on both sides (the
    /// §3.3 heterogeneity ablation).
    pub fn new(c: usize, n: usize, link: LinkSpec, translate: bool) -> RuntimeHarness {
        let world = World::new(link);
        let opts = OrbOptions {
            translate,
            ..Default::default()
        };

        let server = world.spawn_machine_with("server", n, opts.clone(), |ctx| {
            diff_objectSkeleton::register(&ctx, "bench", DiffusionServant::new(), vec![])
                .expect("register");
            ctx.serve_forever().expect("serve");
        });

        let mut cmd_txs = Vec::with_capacity(c);
        let mut cmd_rxs = Vec::with_capacity(c);
        for _ in 0..c {
            let (tx, rx) = bounded::<Cmd>(4);
            cmd_txs.push(tx);
            cmd_rxs.push(rx);
        }
        let (result_tx, result_rx) = bounded::<Duration>(4);
        let cmd_rxs = std::sync::Mutex::new(cmd_rxs.into_iter().map(Some).collect::<Vec<_>>());

        let client = world.spawn_machine_with("client", c, opts, move |ctx| {
            let my_rx = cmd_rxs.lock().expect("lock")[ctx.rank()]
                .take()
                .expect("each rank takes its receiver once");
            let mut proxy = diff_objectProxy::_spmd_bind(&ctx, "bench", None).expect("bind");
            loop {
                match my_rx.recv().expect("command channel open") {
                    Cmd::Stop => {
                        if ctx.is_comm_thread() {
                            ctx.send_shutdown(proxy.proxy.objref()).expect("shutdown");
                        }
                        return;
                    }
                    Cmd::Invoke { len, mode, iters } => {
                        proxy._set_transfer_mode(mode).expect("mode");
                        let mut seq = DSequence::<f64>::new(ctx.rts(), len, None).expect("dseq");
                        for x in seq.local_data_mut() {
                            *x = 1.0;
                        }
                        // Warm the path once, then time.
                        proxy.total_heat(&ctx, &seq).expect("warmup");
                        ctx.rts().barrier();
                        let t0 = Instant::now();
                        for _ in 0..iters {
                            let h = proxy.total_heat(&ctx, &seq).expect("invoke");
                            debug_assert_eq!(h, len as f64);
                        }
                        ctx.rts().barrier();
                        if ctx.is_comm_thread() {
                            result_tx
                                .send(t0.elapsed() / iters as u32)
                                .expect("result channel open");
                        }
                    }
                }
            }
        });

        RuntimeHarness {
            cmd_txs,
            result_rx,
            client: Some(client),
            server: Some(server),
        }
    }

    /// Average wall-clock of one collective invocation carrying `len`
    /// doubles in, over `iters` repetitions.
    pub fn invoke_avg(&self, len: usize, mode: TransferMode, iters: usize) -> Duration {
        for tx in &self.cmd_txs {
            tx.send(Cmd::Invoke { len, mode, iters }).expect("send cmd");
        }
        self.result_rx.recv().expect("client alive")
    }
}

impl Drop for RuntimeHarness {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Stop);
        }
        if let Some(c) = self.client.take() {
            c.join();
        }
        if let Some(s) = self.server.take() {
            s.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_both_modes() {
        let h = RuntimeHarness::new(2, 3, LinkSpec::unlimited(), false);
        let d1 = h.invoke_avg(1 << 10, TransferMode::Centralized, 3);
        let d2 = h.invoke_avg(1 << 10, TransferMode::MultiPort, 3);
        assert!(d1 > Duration::ZERO);
        assert!(d2 > Duration::ZERO);
    }

    #[test]
    fn harness_with_translation() {
        let h = RuntimeHarness::new(1, 2, LinkSpec::unlimited(), true);
        let d = h.invoke_avg(512, TransferMode::MultiPort, 2);
        assert!(d > Duration::ZERO);
    }
}
