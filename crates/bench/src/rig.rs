//! A persistent SPMD thread rig for microbenchmarks.
//!
//! Criterion drives measurements from one thread, but collectives and
//! distributed sequences are collective operations. The rig keeps `n`
//! RTS ranks alive on their own threads and ships them a closure per
//! measurement, so iteration cost is two channel hops instead of a
//! thread spawn.

use crossbeam::channel::{bounded, Receiver, Sender};
use pardis_rts::{Domain, Endpoint};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Arc<dyn Fn(&Endpoint) + Send + Sync>;

/// A pool of live SPMD ranks awaiting closures.
pub struct SpmdRig {
    cmd_txs: Vec<Sender<Option<Job>>>,
    done_rx: Receiver<()>,
    handles: Vec<JoinHandle<()>>,
}

impl SpmdRig {
    /// Stand up `n` ranks.
    pub fn new(n: usize) -> SpmdRig {
        let mut cmd_txs = Vec::with_capacity(n);
        let mut cmd_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<Option<Job>>(1);
            cmd_txs.push(tx);
            cmd_rxs.push(rx);
        }
        let (done_tx, done_rx) = bounded::<()>(n);
        type RxSlots = Vec<Option<Receiver<Option<Job>>>>;
        let cmd_rxs: Arc<std::sync::Mutex<RxSlots>> = Arc::new(std::sync::Mutex::new(
            cmd_rxs.into_iter().map(Some).collect(),
        ));
        let handles = Domain::new(n)
            .into_iter()
            .map(|ep| {
                let cmd_rxs = cmd_rxs.clone();
                let done_tx = done_tx.clone();
                std::thread::spawn(move || {
                    let rx = cmd_rxs.lock().expect("lock")[ep.rank()]
                        .take()
                        .expect("one receiver per rank");
                    while let Ok(Some(job)) = rx.recv() {
                        job(&ep);
                        done_tx.send(()).expect("done channel open");
                    }
                })
            })
            .collect();
        SpmdRig {
            cmd_txs,
            done_rx,
            handles,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.cmd_txs.len()
    }

    /// Run `f` collectively on every rank and wait for all to finish.
    pub fn run(&self, f: impl Fn(&Endpoint) + Send + Sync + 'static) {
        let job: Job = Arc::new(f);
        for tx in &self.cmd_txs {
            tx.send(Some(job.clone())).expect("rig thread alive");
        }
        for _ in 0..self.cmd_txs.len() {
            self.done_rx.recv().expect("rig thread alive");
        }
    }
}

impl Drop for SpmdRig {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(None);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn rig_runs_collectives() {
        let rig = SpmdRig::new(4);
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        rig.run(move |ep| {
            let sum = ep
                .allreduce_f64(&[ep.rank() as f64], pardis_rts::ReduceOp::Sum)
                .unwrap()[0];
            assert_eq!(sum, 6.0);
            c2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
        // Reusable.
        rig.run(|ep| {
            ep.barrier();
        });
    }
}
