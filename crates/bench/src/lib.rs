//! Shared machinery for the PARDIS benchmark harness: table formatting
//! and a reusable real-runtime client/server pair for wall-clock
//! measurements.

pub mod harness;
pub mod rig;
pub mod tables;

pub use harness::RuntimeHarness;
pub use rig::SpmdRig;
