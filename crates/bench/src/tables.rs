//! Table formatting for the experiment binaries. Output mirrors the
//! rows/columns of the paper's tables so measured and published numbers
//! can be compared side by side.

use pardis_sim::experiments::Fig4Point;
use pardis_sim::scripts::{CentralizedTiming, MultiportTiming};

/// Table 1 of the paper, from simulated timings.
pub fn format_table1(rows: &[CentralizedTiming]) -> String {
    let mut s = String::new();
    s.push_str("Table 1 — Time of invocation using the CENTRALIZED method of argument transfer\n");
    s.push_str("(2^19 doubles; times in milliseconds; n = server threads, c = client threads)\n\n");
    s.push_str("   c   n |        T      t_ps       t_r   t_gather  t_scatter\n");
    s.push_str("  -------+---------------------------------------------------\n");
    for r in rows {
        s.push_str(&format!(
            "  {:>2}  {:>2} | {:>8.1}  {:>8.1}  {:>8.1}  {:>9.1}  {:>9.1}\n",
            r.c,
            r.n,
            r.total_ms(),
            r.pack_send_ms(),
            r.recv_unpack_ms(),
            r.gather_ms(),
            r.scatter_ms()
        ));
    }
    s
}

/// Table 2 of the paper, from simulated timings.
pub fn format_table2(rows: &[MultiportTiming]) -> String {
    let mut s = String::new();
    s.push_str("Table 2 — Time of invocation using the MULTI-PORT method of argument transfer\n");
    s.push_str("(2^19 doubles; times in milliseconds; per-thread maxima for pack/unpack;\n");
    s.push_str(" t_barrier is the communicating thread's exit-barrier wait)\n\n");
    s.push_str("   c   n |        T    t_pack  t_unpack  t_barrier\n");
    s.push_str("  -------+------------------------------------------\n");
    for r in rows {
        s.push_str(&format!(
            "  {:>2}  {:>2} | {:>8.1}  {:>8.1}  {:>8.1}  {:>9.1}\n",
            r.c,
            r.n,
            r.total_ms(),
            r.pack_ms(),
            r.unpack_recv_ms(),
            r.barrier_ms()
        ));
    }
    s
}

/// Figure 4 of the paper as a CSV-ish series plus an ASCII sketch.
pub fn format_fig4(points: &[Fig4Point]) -> String {
    let mut s = String::new();
    s.push_str("Figure 4 — centralized vs multi-port effective bandwidth (c=4, n=8)\n\n");
    s.push_str("  length_doubles, centralized_MBps, multiport_MBps\n");
    for p in points {
        s.push_str(&format!(
            "  {:>14}, {:>15.2}, {:>13.2}\n",
            p.doubles, p.centralized_mbps, p.multiport_mbps
        ));
    }
    let max = points
        .iter()
        .map(|p| p.multiport_mbps.max(p.centralized_mbps))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    s.push_str("\n  (M = multi-port, C = centralized; column height ∝ MB/s)\n");
    let height = 12usize;
    for row in (0..height).rev() {
        let threshold = max * (row as f64 + 0.5) / height as f64;
        s.push_str("  |");
        for p in points {
            let m = p.multiport_mbps >= threshold;
            let c = p.centralized_mbps >= threshold;
            s.push(match (m, c) {
                (true, true) => '#',
                (true, false) => 'M',
                (false, true) => 'C',
                (false, false) => ' ',
            });
        }
        s.push('\n');
    }
    s.push_str("  +");
    s.push_str(&"-".repeat(points.len()));
    s.push_str("\n   10^1  ->  length in doubles (log)  ->  10^7\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardis_sim::experiments::{figure4, table1, table2};
    use pardis_sim::testbed::paper_testbed;

    #[test]
    fn tables_render_all_rows() {
        let tb = paper_testbed();
        let t1 = format_table1(&table1(&tb));
        assert_eq!(t1.lines().filter(|l| l.contains('|')).count(), 8 + 1);
        let t2 = format_table2(&table2(&tb));
        assert_eq!(t2.lines().filter(|l| l.contains('|')).count(), 12 + 1);
    }

    #[test]
    fn fig4_renders_chart() {
        let tb = paper_testbed();
        let s = format_fig4(&figure4(&tb));
        assert!(s.contains("multiport_MBps"));
        assert!(s.contains('M'));
    }
}
