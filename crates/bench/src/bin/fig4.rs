//! Regenerate **Figure 4** of the paper: effective bandwidth of an `in`
//! argument transfer vs sequence length, centralized vs multi-port, at
//! the most powerful configuration (c = 4 client threads, n = 8 server
//! threads), on the simulated 1997 testbed.
//!
//! ```text
//! cargo run -p pardis-bench --bin fig4
//! ```

use pardis_bench::tables::format_fig4;
use pardis_sim::experiments::{figure4, peaks};
use pardis_sim::testbed::paper_testbed;

fn main() {
    let tb = paper_testbed();
    let pts = figure4(&tb);
    println!("{}", format_fig4(&pts));
    let ((cen_peak, cen_len), (mp_peak, mp_len)) = peaks(&pts);
    println!(
        "peaks: centralized {cen_peak:.2} MB/s @ {cen_len} doubles, multi-port {mp_peak:.2} MB/s @ {mp_len} doubles"
    );
    println!(
        "peak ratio multi-port/centralized = {:.2}  (paper: 26.7 / 12.27 = 2.18)",
        mp_peak / cen_peak
    );
    println!("Shape to check: the methods coincide for small sizes and separate by");
    println!("~2.2x for large ones; centralized saturates early, multi-port keeps");
    println!("climbing toward the wire rate.");
}
