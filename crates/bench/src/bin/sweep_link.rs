//! §5 future work, quantified: "investigating different strategies of
//! distributed argument transfer in different hardware configurations."
//!
//! Sweeps the link bandwidth of the simulated 1997 machines (leaving the
//! CPUs fixed) and reports the multi-port speedup at each point. The
//! multi-port method's advantage is a function of the *ratio* between
//! processing rate and wire rate: slow links hide marshaling costs
//! behind wire time, fast links expose them.
//!
//! ```text
//! cargo run -p pardis-bench --bin sweep_link
//! ```

use pardis_sim::experiments::TABLE_DOUBLES;
use pardis_sim::scripts::{centralized_invoke, multiport_invoke};
use pardis_sim::testbed::paper_testbed;

fn main() {
    let bytes = TABLE_DOUBLES * 8;
    println!("link-bandwidth sweep (1997 CPUs, c=4, n=8, 2^19 doubles)");
    println!();
    println!("  link_MBps |  centralized_ms | multiport_ms | speedup");
    println!("  ----------+-----------------+--------------+---------");
    for mult in [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0] {
        let mut tb = paper_testbed();
        tb.link.bandwidth *= mult;
        let cen = centralized_invoke(&tb, 4, 8, bytes);
        let mp = multiport_invoke(&tb, 4, 8, bytes);
        println!(
            "  {:>9.1} | {:>15.1} | {:>12.1} | {:>6.2}x",
            tb.link.bandwidth / 1e6,
            cen.total_ms(),
            mp.total_ms(),
            cen.total_ns as f64 / mp.total_ns as f64
        );
    }
    println!();
    println!("Shape to check: the speedup GROWS as the link gets faster relative to");
    println!("the era's CPUs — once wire time stops dominating, the centralized");
    println!("method is limited by its serial gather+pack while the multi-port");
    println!("method marshals on every thread. (At very slow links both methods are");
    println!("wire-bound and the ratio approaches 1.)");
}
