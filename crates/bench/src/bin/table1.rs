//! Regenerate **Table 1** of the paper: time of invocation using the
//! centralized method of argument transfer on the simulated 1997
//! testbed.
//!
//! ```text
//! cargo run -p pardis-bench --bin table1
//! ```

use pardis_bench::tables::format_table1;
use pardis_sim::experiments::table1;
use pardis_sim::testbed::paper_testbed;

fn main() {
    let tb = paper_testbed();
    let rows = table1(&tb);
    println!("{}", format_table1(&rows));
    println!("Paper (HPDC'97) reference values for T, same layout:");
    println!("   c=2: 417, 442, 451, 461 ms      c=4: 571, 634, 685, 697 ms");
    println!("Shape to check: T grows with n at fixed c, and grows with c at fixed n;");
    println!("gather/scatter cost grows with thread count on either side.");
}
