//! Ablation for §3.3's data-translation remark: "We expect that this
//! effect will be amplified in cases which require data translation (not
//! present in our experiments) or more sophisticated marshaling."
//!
//! Runs the **real runtime** with data translation (per-word byte
//! swapping on pack and unpack) toggled, both transfer methods, and
//! reports how much the multi-port advantage grows when marshaling gets
//! expensive — because translation work parallelizes over the computing
//! threads in the multi-port method but serializes at the communicating
//! threads in the centralized one.
//!
//! ```text
//! cargo run --release -p pardis-bench --bin ablation_translation [log2_len]
//! ```

use pardis::prelude::*;
use pardis_bench::RuntimeHarness;

fn main() {
    let log2_len: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let len = 1usize << log2_len;
    let iters = 5;
    // A moderate link so marshaling is a visible fraction of the total.
    let link = LinkSpec::atm_155().scaled(64.0);

    println!(
        "translation ablation (runtime): c=4, n=8, 2^{log2_len} doubles, link ≈ {:.0} MB/s",
        link.bandwidth.unwrap_or(f64::INFINITY) / 1e6
    );
    println!();
    println!("  translation | centralized_ms | multiport_ms | centralized/multiport");
    println!("  ------------+----------------+--------------+----------------------");

    let mut ratios = Vec::new();
    for translate in [false, true] {
        let harness = RuntimeHarness::new(4, 8, link, translate);
        let cen = harness.invoke_avg(len, TransferMode::Centralized, iters);
        let mp = harness.invoke_avg(len, TransferMode::MultiPort, iters);
        let ratio = cen.as_secs_f64() / mp.as_secs_f64();
        ratios.push(ratio);
        println!(
            "  {:<11} | {:>14.2} | {:>12.2} | {:>8.3}",
            if translate { "on" } else { "off" },
            cen.as_secs_f64() * 1e3,
            mp.as_secs_f64() * 1e3,
            ratio
        );
    }
    println!();
    println!(
        "advantage growth: {:.3} -> {:.3} ({:+.1}%)",
        ratios[0],
        ratios[1],
        (ratios[1] / ratios[0] - 1.0) * 100.0
    );
    println!("Shape to check: the centralized/multi-port ratio grows when data");
    println!("translation is required, as §3.3 predicts.");
}
