//! Counterfactual ablation: replay the paper's experiments on a
//! **modern** simulated testbed (many cores, fast memory, 10 GbE-class
//! link) and compare with the 1997 configuration.
//!
//! This answers "would PARDIS's multi-port method still matter today?":
//! the effects the paper measures are driven by slow CPUs relative to
//! the link, MPICH busy-polling on small SMPs, and expensive syscalls —
//! quantifying how much of the multi-port advantage each era's hardware
//! produces.
//!
//! ```text
//! cargo run -p pardis-bench --bin ablation_testbed
//! ```

use pardis_sim::experiments::{figure4_at, peaks, TABLE_DOUBLES};
use pardis_sim::scripts::{centralized_invoke, multiport_invoke};
use pardis_sim::testbed::{modern_testbed, paper_testbed, Testbed};

fn report(label: &str, tb: &Testbed) -> f64 {
    let bytes = TABLE_DOUBLES * 8;
    println!("{label}:");
    println!("  2^19-double invocation, c=4, n=8:");
    let cen = centralized_invoke(tb, 4, 8, bytes);
    let mp = multiport_invoke(tb, 4, 8, bytes);
    println!(
        "    centralized {:>9.3} ms    multi-port {:>9.3} ms    speedup {:.2}x",
        cen.total_ms(),
        mp.total_ms(),
        cen.total_ns as f64 / mp.total_ns as f64
    );
    let pts = figure4_at(tb, 4, 8);
    let ((cp, _), (mpk, _)) = peaks(&pts);
    println!(
        "    peak bandwidth: centralized {:>8.1} MB/s, multi-port {:>8.1} MB/s, ratio {:.2}",
        cp,
        mpk,
        mpk / cp
    );
    // Scheduler interference: how much a c=2 -> c=4 change inflates the
    // centralized send.
    let c2 = centralized_invoke(tb, 2, 1, bytes);
    let c4 = centralized_invoke(tb, 4, 1, bytes);
    let interference = (c4.pack_send_ns as f64 / c2.pack_send_ns as f64 - 1.0) * 100.0;
    println!("    scheduler interference (t_ps, c=2 -> c=4): {interference:+.1}%");
    println!();
    mpk / cp
}

fn main() {
    println!("testbed ablation: the paper's experiments on 1997 vs modern hardware\n");
    let r97 = report(
        "1997 testbed (SGI Onyx / Power Challenge / ATM)",
        &paper_testbed(),
    );
    let rnow = report("modern testbed (many-core / 10 GbE)", &modern_testbed());
    println!("multi-port peak advantage: {r97:.2}x in 1997, {rnow:.2}x today");
    println!();
    println!("Interpretation: the multi-port method's large 1997 advantage came from");
    println!("marshaling/gather costs comparable to wire time plus oversubscription");
    println!("descheduling; on modern hardware both shrink, and the advantage with");
    println!("them. The SPMD-object programming model is unaffected — only the");
    println!("transfer-method gap narrows.");
}
