//! Figure 4 on the **real threaded runtime**: wall-clock effective
//! bandwidth of an `in`-argument transfer vs sequence length, both
//! transfer methods, c = 4 client threads and n = 8 server threads over
//! a rate-limited shared link.
//!
//! Unlike the `fig4` binary (which replays the 1997 testbed in a
//! simulator), this drives the actual ORB — generated stubs, CDR
//! marshaling, RTS gather/scatter, per-thread ports — so it shows which
//! of the paper's effects survive on modern hardware: parallel
//! marshaling and gather/scatter elimination do; scheduler interference
//! does not (we have plenty of cores).
//!
//! ```text
//! cargo run --release -p pardis-bench --bin fig4_runtime [max_log2] [link_scale]
//! ```

use pardis::prelude::*;
use pardis_bench::RuntimeHarness;

fn main() {
    let max_log2: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(19);
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8.0);
    let link = LinkSpec::atm_155().scaled(scale);
    println!(
        "fig4 (runtime): c=4, n=8, link ≈ {:.1} MB/s (ATM x{scale}), lengths 2^8..2^{max_log2} doubles",
        link.bandwidth.unwrap_or(f64::INFINITY) / 1e6
    );
    println!();
    println!("  length_doubles, centralized_MBps, multiport_MBps, ratio");

    let harness = RuntimeHarness::new(4, 8, link, false);
    let mut log2 = 8u32;
    while log2 <= max_log2 {
        let len = 1usize << log2;
        let bytes = (len * 8) as f64;
        // Fewer repetitions for the big sizes to bound wall-clock.
        let iters = if log2 >= 17 { 3 } else { 8 };
        let cen = harness.invoke_avg(len, TransferMode::Centralized, iters);
        let mp = harness.invoke_avg(len, TransferMode::MultiPort, iters);
        let cen_bw = bytes / cen.as_secs_f64() / 1e6;
        let mp_bw = bytes / mp.as_secs_f64() / 1e6;
        println!(
            "  {:>14}, {:>15.2}, {:>13.2}, {:>5.2}",
            len,
            cen_bw,
            mp_bw,
            mp_bw / cen_bw
        );
        log2 += 1;
    }
    println!();
    println!("Shape to check: ~equal at small sizes; multi-port ahead at large ones");
    println!("(the margin is set by marshaling/gather costs relative to wire time,");
    println!(" so it is smaller here than on the 1997 testbed's slow CPUs).");
}
