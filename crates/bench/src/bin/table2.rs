//! Regenerate **Table 2** of the paper: time of invocation using the
//! multi-port method of argument transfer on the simulated 1997
//! testbed.
//!
//! ```text
//! cargo run -p pardis-bench --bin table2
//! ```

use pardis_bench::tables::format_table2;
use pardis_sim::experiments::table2;
use pardis_sim::testbed::paper_testbed;

fn main() {
    let tb = paper_testbed();
    let rows = table2(&tb);
    println!("{}", format_table2(&rows));
    println!("Paper (HPDC'97) reference values for T, same layout (c=1/2/4 groups):");
    println!("   c=1: 431, 425, 412, 393 ms     c=2: 367, 376, 368, 336 ms");
    println!("   c=4: best configuration ≈ 261–356 ms");
    println!("Shape to check: T decreases as resources grow; pack and unpack");
    println!("parallelize (divide by c and n); the exit-barrier wait is ~half the");
    println!("send when two clients feed one server thread (sequentialized sends)");
    println!("and collapses once destinations are independent (interleaved sends).");
}
