//! Ablation for §3.3's uneven-split remark: "Experiments show that cases
//! when the sequence is split unevenly are of comparable efficiency (for
//! example … the timing of the invocation was 370 milliseconds)."
//!
//! Sweeps several proportional server-side distributions against the
//! uniform blockwise baseline at c = 4, n = 8, 2^19 doubles, on the
//! simulated testbed.
//!
//! ```text
//! cargo run -p pardis-bench --bin ablation_proportions
//! ```

use pardis_sim::block::Layout;
use pardis_sim::experiments::TABLE_DOUBLES;
use pardis_sim::scripts::{multiport_invoke, multiport_invoke_layouts};
use pardis_sim::testbed::paper_testbed;

fn main() {
    let tb = paper_testbed();
    let bytes = TABLE_DOUBLES * 8;
    let c = 4usize;
    let n = 8usize;
    let base = multiport_invoke(&tb, c, n, bytes);
    println!("proportions ablation (multi-port, c={c}, n={n}, 2^19 doubles)");
    println!();
    println!("  server distribution                 |     T (ms)   vs block");
    println!("  ------------------------------------+----------------------");
    println!(
        "  {:<35} | {:>9.1}      1.00x",
        "block (uniform)",
        base.total_ms()
    );
    let cases: Vec<(&str, Vec<u32>)> = vec![
        ("proportions 2:4:2:4:2:4:2:4", vec![2, 4, 2, 4, 2, 4, 2, 4]),
        ("proportions 1:1:1:1:1:1:1:9", vec![1, 1, 1, 1, 1, 1, 1, 9]),
        ("proportions 8:4:2:1:1:2:4:8", vec![8, 4, 2, 1, 1, 2, 4, 8]),
        ("proportions 1:2:3:4:5:6:7:8", vec![1, 2, 3, 4, 5, 6, 7, 8]),
    ];
    for (name, weights) in cases {
        let t = multiport_invoke_layouts(
            &tb,
            &Layout::block(bytes, c),
            &Layout::proportional(bytes, &weights),
        );
        println!(
            "  {:<35} | {:>9.1}      {:.2}x",
            name,
            t.total_ms(),
            t.total_ns as f64 / base.total_ns as f64
        );
    }
    println!();
    println!("Shape to check: moderately uneven splits stay within a few percent of");
    println!("the even split — \"of comparable efficiency\" (§3.3) — because the single");
    println!("shared link, not the per-thread fragment sizes, dominates transfer time.");
    println!("Heavily skewed splits (one thread owning most of the data) do pay: the");
    println!("overloaded receiver serializes its incoming fragments, an effect the");
    println!("paper's mildly uneven test case did not reach.");
}
