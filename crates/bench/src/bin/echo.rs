//! Echo round-trip latency, with and without the `analyze` feature.
//!
//! One collective invocation carrying an `in` distributed-sequence
//! argument, timed over an unlimited link so the wire contributes
//! nothing and every microsecond is CPU: stubs, CDR, gather/scatter —
//! and, when compiled with `--features analyze`, the happens-before
//! instrumentation (vector-clock ticks, access-interval recording).
//! Running the binary under both configurations measures the
//! instrumentation overhead reported in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p pardis-bench --bin echo [iters]
//! cargo run --release -p pardis-bench --bin echo --features analyze [iters]
//! ```

use pardis::prelude::*;
use pardis_bench::RuntimeHarness;

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let analyze = cfg!(feature = "analyze");
    println!(
        "echo: c=4, n=8, unlimited link, {iters} iters/point, analyze instrumentation: {}",
        if analyze { "ON" } else { "OFF" }
    );
    println!();
    println!("  length_doubles, centralized_us, multiport_us");

    let harness = RuntimeHarness::new(4, 8, LinkSpec::unlimited(), false);
    for log2 in [8u32, 10, 12, 14] {
        let len = 1usize << log2;
        let cen = harness.invoke_avg(len, TransferMode::Centralized, iters);
        let mp = harness.invoke_avg(len, TransferMode::MultiPort, iters);
        println!(
            "  {:>14}, {:>14.1}, {:>12.1}",
            len,
            cen.as_secs_f64() * 1e6,
            mp.as_secs_f64() * 1e6
        );
    }
}
