//! Echo round-trip latency, with and without instrumentation.
//!
//! One collective invocation carrying an `in` distributed-sequence
//! argument, timed over an unlimited link so the wire contributes
//! nothing and every microsecond is CPU: stubs, CDR, gather/scatter —
//! plus, depending on features, the happens-before instrumentation
//! (`analyze`: vector-clock ticks, access-interval recording) or the
//! observability instrumentation (`obs`: span recording, per-rank
//! metrics, service-context propagation). Running the binary under
//! each configuration against the featureless baseline measures the
//! instrumentation overheads reported in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p pardis-bench --bin echo [iters]
//! cargo run --release -p pardis-bench --bin echo --features analyze [iters]
//! cargo run --release -p pardis-bench --bin echo --features obs [iters]
//! ```

use pardis::prelude::*;
use pardis_bench::RuntimeHarness;

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let analyze = cfg!(feature = "analyze");
    let obs = cfg!(feature = "obs");
    println!(
        "echo: c=4, n=8, unlimited link, {iters} iters/point, \
         analyze instrumentation: {}, obs instrumentation: {}",
        if analyze { "ON" } else { "OFF" },
        if obs { "ON" } else { "OFF" }
    );
    println!();
    println!("  length_doubles, centralized_us, multiport_us");

    let harness = RuntimeHarness::new(4, 8, LinkSpec::unlimited(), false);
    for log2 in [8u32, 10, 12, 14] {
        let len = 1usize << log2;
        let cen = harness.invoke_avg(len, TransferMode::Centralized, iters);
        let mp = harness.invoke_avg(len, TransferMode::MultiPort, iters);
        println!(
            "  {:>14}, {:>14.1}, {:>12.1}",
            len,
            cen.as_secs_f64() * 1e6,
            mp.as_secs_f64() * 1e6
        );
    }
}
