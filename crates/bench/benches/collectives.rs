//! Criterion benchmarks of the RTS collectives that carry the
//! centralized method: linear gather and scatter through a root, plus
//! barrier and allreduce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pardis_bench::SpmdRig;
use std::sync::Arc;

fn bench_gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("rts/gather_f64");
    for threads in [2usize, 4, 8] {
        let rig = Arc::new(SpmdRig::new(threads));
        let per_thread = 1usize << 14;
        g.throughput(Throughput::Bytes((threads * per_thread * 8) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(threads), &rig, |b, rig| {
            b.iter(|| {
                rig.run(move |ep| {
                    let local = vec![ep.rank() as f64; per_thread];
                    let gathered = ep.gather_f64(0, &local).unwrap();
                    std::hint::black_box(gathered);
                });
            });
        });
    }
    g.finish();
}

fn bench_gather_scatter_roundtrip(c: &mut Criterion) {
    // The full centralized-argument pattern.
    let mut g = c.benchmark_group("rts/gather_scatter");
    for threads in [2usize, 4, 8] {
        let rig = Arc::new(SpmdRig::new(threads));
        let per_thread = 1usize << 14;
        g.throughput(Throughput::Bytes((threads * per_thread * 8 * 2) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(threads), &rig, |b, rig| {
            b.iter(|| {
                rig.run(move |ep| {
                    let counts = vec![per_thread; ep.size()];
                    let local = vec![1.0f64; per_thread];
                    let gathered = ep.gather_f64(0, &local).unwrap();
                    let back = ep.scatterv_f64(0, gathered.as_deref(), &counts).unwrap();
                    std::hint::black_box(back);
                });
            });
        });
    }
    g.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("rts/barrier");
    for threads in [2usize, 8] {
        let rig = Arc::new(SpmdRig::new(threads));
        g.bench_with_input(BenchmarkId::from_parameter(threads), &rig, |b, rig| {
            b.iter(|| {
                rig.run(|ep| {
                    for _ in 0..16 {
                        ep.barrier();
                    }
                });
            });
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("rts/allreduce_f64");
    for threads in [2usize, 8] {
        let rig = Arc::new(SpmdRig::new(threads));
        g.bench_with_input(BenchmarkId::from_parameter(threads), &rig, |b, rig| {
            b.iter(|| {
                rig.run(|ep| {
                    let v = [ep.rank() as f64; 16];
                    let r = ep.allreduce_f64(&v, pardis_rts::ReduceOp::Sum).unwrap();
                    std::hint::black_box(r);
                });
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gather,
    bench_gather_scatter_roundtrip,
    bench_barrier,
    bench_allreduce
);
criterion_main!(benches);
