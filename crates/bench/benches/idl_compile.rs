//! Criterion benchmarks of the IDL compiler pipeline: lexing, parsing,
//! semantic analysis, code generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Synthesize an IDL module with `n` interfaces of mixed operations.
fn synth_idl(n: usize) -> String {
    let mut s = String::new();
    s.push_str("typedef dsequence<double> vec;\n");
    s.push_str("struct Pt { double x; double y; };\n");
    s.push_str("exception boom { long code; };\n");
    for i in 0..n {
        s.push_str(&format!(
            "interface svc{i} {{\n\
             \x20   double dot(in vec a, in vec b);\n\
             \x20   void step(in long t, inout vec v) raises(boom);\n\
             \x20   oneway void log(in string msg);\n\
             \x20   Pt centroid(in vec v, out long n);\n\
             \x20   readonly attribute long calls;\n\
             }};\n"
        ));
    }
    s
}

fn bench_full_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("idl/compile");
    for n in [1usize, 8, 64] {
        let src = synth_idl(n);
        g.throughput(Throughput::Bytes(src.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, src| {
            b.iter(|| pardis_idl::compile_to_rust(src, "bench.idl").unwrap());
        });
    }
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let src = synth_idl(16);
    c.bench_function("idl/lex", |b| {
        b.iter(|| pardis_idl::lexer::lex(&src, "bench.idl").unwrap());
    });
    let toks = pardis_idl::lexer::lex(&src, "bench.idl").unwrap();
    c.bench_function("idl/parse", |b| {
        b.iter(|| pardis_idl::parser::parse(toks.clone(), "bench.idl").unwrap());
    });
    let spec = pardis_idl::parser::parse(toks, "bench.idl").unwrap();
    c.bench_function("idl/sema", |b| {
        b.iter(|| pardis_idl::sema::check(spec.clone(), "bench.idl").unwrap());
    });
    let model = pardis_idl::sema::check(spec, "bench.idl").unwrap();
    c.bench_function("idl/codegen", |b| {
        b.iter(|| pardis_idl::codegen::rust::generate(&model));
    });
}

criterion_group!(benches, bench_full_compile, bench_stages);
criterion_main!(benches);
