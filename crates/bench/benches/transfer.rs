//! Criterion benchmarks of complete ORB invocations on the real runtime
//! (unthrottled link, so the numbers expose ORB overhead rather than
//! wire time): centralized vs multi-port, small control-path and bulk
//! data-path sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pardis::prelude::*;
use pardis_bench::RuntimeHarness;

fn bench_invoke_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("orb/invoke_c2_n4");
    g.sample_size(20);
    let harness = RuntimeHarness::new(2, 4, LinkSpec::unlimited(), false);
    for (label, len) in [("1K", 1usize << 10), ("64K", 1 << 16)] {
        g.throughput(Throughput::Bytes((len * 8) as u64));
        for mode in [TransferMode::Centralized, TransferMode::MultiPort] {
            g.bench_function(BenchmarkId::new(format!("{mode:?}"), label), |b| {
                b.iter_custom(|iters| harness.invoke_avg(len, mode, iters as usize) * iters as u32);
            });
        }
    }
    g.finish();
}

fn bench_control_path(c: &mut Criterion) {
    // Minimal invocation: one in-arg of 8 doubles — dominated by
    // request/reply handling, relay broadcasts and barriers.
    let mut g = c.benchmark_group("orb/control_path");
    g.sample_size(30);
    for (cth, nth) in [(1usize, 1usize), (2, 2), (4, 4)] {
        let harness = RuntimeHarness::new(cth, nth, LinkSpec::unlimited(), false);
        g.bench_function(BenchmarkId::from_parameter(format!("c{cth}_n{nth}")), |b| {
            b.iter_custom(|iters| {
                harness.invoke_avg(8, TransferMode::Centralized, iters as usize) * iters as u32
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_invoke_modes, bench_control_path);
criterion_main!(benches);
