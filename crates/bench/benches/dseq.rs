//! Criterion benchmarks of distributed-sequence operations:
//! redistribution (the all-to-all exchange), collective element access,
//! and the conversion constructor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pardis_bench::SpmdRig;
use pardis_core::{DSequence, DistTempl, Proportions};
use std::sync::Arc;

fn bench_redistribute(c: &mut Criterion) {
    let mut g = c.benchmark_group("dseq/redistribute");
    g.sample_size(20);
    for threads in [2usize, 4, 8] {
        let rig = Arc::new(SpmdRig::new(threads));
        let len = 1usize << 16;
        g.throughput(Throughput::Bytes((len * 8) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(threads), &rig, |b, rig| {
            b.iter(|| {
                rig.run(move |ep| {
                    let mut s = DSequence::<f64>::new(ep, len, None).unwrap();
                    let weights: Vec<u32> = (0..ep.size() as u32).map(|i| 1 + (i % 4)).collect();
                    let t = DistTempl::proportional(len, &Proportions::new(weights));
                    s.redistribute(ep, t).unwrap();
                    std::hint::black_box(s.local_len());
                });
            });
        });
    }
    g.finish();
}

fn bench_element_access(c: &mut Criterion) {
    // Collective operator[]: the owner broadcasts.
    let mut g = c.benchmark_group("dseq/get");
    for threads in [2usize, 4] {
        let rig = Arc::new(SpmdRig::new(threads));
        g.bench_with_input(BenchmarkId::from_parameter(threads), &rig, |b, rig| {
            b.iter(|| {
                rig.run(|ep| {
                    let s = DSequence::<f64>::new(ep, 1024, None).unwrap();
                    let mut acc = 0.0;
                    for idx in (0..1024).step_by(97) {
                        acc += s.get(ep, idx).unwrap();
                    }
                    std::hint::black_box(acc);
                });
            });
        });
    }
    g.finish();
}

fn bench_from_local(c: &mut Criterion) {
    // The conversion constructor: allgather of the local lengths.
    let rig = Arc::new(SpmdRig::new(4));
    c.bench_function("dseq/from_local", |b| {
        b.iter(|| {
            rig.run(|ep| {
                let local = vec![0.0f64; 1 << 12];
                let s = DSequence::from_local(ep, local).unwrap();
                std::hint::black_box(s.len());
            });
        });
    });
}

criterion_group!(
    benches,
    bench_redistribute,
    bench_element_access,
    bench_from_local
);
criterion_main!(benches);
