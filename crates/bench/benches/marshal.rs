//! Criterion microbenchmarks of the CDR marshaling layer: the "pack"
//! cost the paper's tables decompose, with and without data translation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pardis_cdr::{CdrReader, CdrWriter, Endian};

fn bench_pack_doubles(c: &mut Criterion) {
    let mut g = c.benchmark_group("marshal/pack_f64");
    for log2 in [10usize, 14, 17] {
        let n = 1usize << log2;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut w = CdrWriter::with_capacity(Endian::native(), data.len() * 8);
                w.put_f64_slice(data);
                std::hint::black_box(w.into_bytes())
            });
        });
    }
    g.finish();
}

fn bench_unpack_doubles(c: &mut Criterion) {
    let mut g = c.benchmark_group("marshal/unpack_f64");
    for log2 in [10usize, 14, 17] {
        let n = 1usize << log2;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut w = CdrWriter::new(Endian::native());
        w.put_f64_slice(&data);
        let buf = w.into_bytes();
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &buf, |b, buf| {
            b.iter(|| {
                let mut r = CdrReader::new(buf, Endian::native());
                let mut out = Vec::new();
                r.get_f64_slice(n, &mut out).unwrap();
                std::hint::black_box(out)
            });
        });
    }
    g.finish();
}

fn bench_translation(c: &mut Criterion) {
    // The §3.3 "data translation" cost: per-word byte swapping.
    let mut g = c.benchmark_group("marshal/translate_f64");
    for log2 in [14usize, 17] {
        let n = 1usize << log2;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let bytes = pardis_cdr::byteswap::f64_slice_as_bytes(&data).to_vec();
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &bytes, |b, bytes| {
            b.iter(|| {
                let mut buf = bytes.clone();
                pardis_cdr::byteswap::swap_f64_bytes_in_place(&mut buf);
                std::hint::black_box(buf)
            });
        });
    }
    g.finish();
}

fn bench_mixed_header(c: &mut Criterion) {
    // Request-header-sized mixed encoding (the multi-port per-fragment
    // overhead).
    c.bench_function("marshal/request_header", |b| {
        b.iter(|| {
            let mut w = CdrWriter::with_capacity(Endian::native(), 128);
            w.put_u64(12345);
            w.put_string("example");
            w.put_string("diffusion");
            w.put_bool(true);
            w.put_u32(3);
            w.put_u32(17);
            for p in [21u32, 22, 23, 24] {
                w.put_u32(p);
            }
            std::hint::black_box(w.into_bytes())
        });
    });
}

criterion_group!(
    benches,
    bench_pack_doubles,
    bench_unpack_doubles,
    bench_translation,
    bench_mixed_header
);
criterion_main!(benches);
