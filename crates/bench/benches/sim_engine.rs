//! Criterion benchmarks of the discrete-event simulator itself: cost of
//! regenerating each published artifact, and of the frame-level link
//! arbitration at scale.

use criterion::{criterion_group, criterion_main, Criterion};
use pardis_sim::engine::{Flow, Sim};
use pardis_sim::experiments::{figure4, table1, table2};
use pardis_sim::testbed::paper_testbed;

fn bench_artifacts(c: &mut Criterion) {
    let tb = paper_testbed();
    c.bench_function("sim/table1", |b| {
        b.iter(|| std::hint::black_box(table1(&tb)));
    });
    c.bench_function("sim/table2", |b| {
        b.iter(|| std::hint::black_box(table2(&tb)));
    });
    let mut g = c.benchmark_group("sim/figure4");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| std::hint::black_box(figure4(&tb)));
    });
    g.finish();
}

fn bench_flow_set(c: &mut Criterion) {
    // 32 concurrent flows of 1 MB each: ~3700 frames through the
    // arbitration loop.
    let tb = paper_testbed().with_threads(4, 8);
    c.bench_function("sim/flow_set_32x1MB", |b| {
        b.iter(|| {
            let mut sim = Sim::new(vec![tb.client.clone(), tb.server.clone()], tb.link);
            let flows: Vec<Flow> = (0..4)
                .flat_map(|s| {
                    (0..8).map(move |d| Flow {
                        src: (0, s),
                        dst: (1, d),
                        bytes: 1 << 20,
                    })
                })
                .collect();
            std::hint::black_box(sim.flow_set(&flows))
        });
    });
}

criterion_group!(benches, bench_artifacts, bench_flow_set);
criterion_main!(benches);
