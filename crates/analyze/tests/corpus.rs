//! The seeded defect corpus is flagged exactly, and the known-good IDL
//! set produces zero findings (false-positive guard).

use pardis_analyze::idl;
use std::path::PathBuf;

fn root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn corpus_defects_are_flagged_exactly() {
    let results = idl::check_corpus(&root().join("tests/analyze_corpus")).unwrap();
    assert!(
        results.len() >= 6,
        "corpus shrank below its seeded minimum: {} files",
        results.len()
    );
    for r in &results {
        assert!(
            r.matches(),
            "{}: expected {:?}, got {:?}",
            r.path.display(),
            r.expected,
            r.actual
        );
        assert!(
            !r.expected.is_empty(),
            "{}: corpus files must seed at least one defect",
            r.path.display()
        );
    }
    // Every lint in the catalog is exercised by at least one seed.
    let seen: Vec<&str> = results
        .iter()
        .flat_map(|r| r.actual.iter().map(|(c, _)| c.as_str()))
        .collect();
    for code in [
        "PA001", "PA002", "PA003", "PA004", "PA005", "PA006", "PA007", "PA104", "PA205", "PA206",
    ] {
        assert!(seen.contains(&code), "no corpus seed exercises {code}");
    }
}

#[test]
fn example_idl_is_clean() {
    let dir = root().join("examples/idl");
    let files = idl::idl_files(&dir).unwrap();
    assert!(
        !files.is_empty(),
        "no example IDL found in {}",
        dir.display()
    );
    for f in files {
        let findings = idl::lint_file(&f, &[]).unwrap();
        assert!(
            findings.is_empty(),
            "{}: false positives: {findings:?}",
            f.display()
        );
    }
}

#[test]
fn allow_list_suppresses_corpus_findings() {
    let f = root().join("tests/analyze_corpus/identity_redistribution.idl");
    let suppressed = idl::lint_file(&f, &["PA004".to_string()]).unwrap();
    assert!(suppressed.is_empty(), "{suppressed:?}");
}
