//! The divergent SPMD scenarios fail with a typed `CollectiveMismatch`
//! naming the divergent thread and both call sites — instead of the
//! silent deadlock the paper's collective-invocation contract would
//! otherwise produce — and the uniform control run stays clean.

use pardis_analyze::{lockcheck, scenarios};
use pardis_core::PardisError;
use scenarios::Scenario;

#[test]
fn mismatched_order_is_rejected_with_both_sites() {
    let outcomes = scenarios::run(Scenario::MismatchedOrder);
    assert_eq!(outcomes.len(), 2);
    for o in &outcomes {
        match &o.result {
            Err(PardisError::CollectiveMismatch {
                thread,
                mine,
                theirs,
            }) => {
                // Rank 1 issued `reset` while rank 0 (the reference)
                // issued `step` — every thread names the same culprit
                // and both call sites.
                assert_eq!(*thread, 1, "rank {}: wrong culprit", o.rank);
                assert!(mine.contains("`step`"), "rank {}: mine = {mine}", o.rank);
                assert!(
                    theirs.contains("`reset`"),
                    "rank {}: theirs = {theirs}",
                    o.rank
                );
            }
            other => panic!(
                "rank {}: expected CollectiveMismatch, got {other:?}",
                o.rank
            ),
        }
    }
}

#[test]
fn divergent_template_is_rejected() {
    let outcomes = scenarios::run(Scenario::DivergentTemplate);
    for o in &outcomes {
        assert!(
            matches!(
                o.result,
                Err(PardisError::CollectiveMismatch { thread: 1, .. })
            ),
            "rank {}: {:?}",
            o.rank,
            o.result
        );
    }
}

#[test]
fn divergent_length_class_is_rejected() {
    let outcomes = scenarios::run(Scenario::DivergentLength);
    for o in &outcomes {
        assert!(
            matches!(
                o.result,
                Err(PardisError::CollectiveMismatch { thread: 1, .. })
            ),
            "rank {}: {:?}",
            o.rank,
            o.result
        );
    }
}

#[test]
fn uniform_control_has_no_false_positives() {
    let outcomes = scenarios::run(Scenario::Uniform);
    assert_eq!(outcomes.len(), 2);
    for o in &outcomes {
        assert!(o.result.is_ok(), "rank {}: {:?}", o.rank, o.result);
    }
}

#[test]
fn scenario_checker_agrees_with_the_assertions() {
    for s in Scenario::all() {
        let outcomes = scenarios::run(s);
        let problems = scenarios::check(s, &outcomes);
        assert!(problems.is_empty(), "{}: {problems:?}", s.name());
    }
}

#[test]
fn lockcheck_rts_workload_is_cycle_free_and_inversion_is_caught() {
    let report = lockcheck::check_rts_locks().unwrap();
    assert!(
        report.cycles.is_empty(),
        "RTS lock-order cycles: {:?}",
        report.cycles
    );
    // The workload really exercised the instrumented classes.
    for class in ["rma::registry", "rma::window_part"] {
        assert!(
            report.classes.contains(&class),
            "{class} never acquired: {:?}",
            report.classes
        );
    }
    let seeded = lockcheck::seeded_inversion();
    assert_eq!(seeded.len(), 1, "{seeded:?}");
    assert!(seeded[0].contains(&"analyze::demo_a"));
    assert!(seeded[0].contains(&"analyze::demo_b"));
}
