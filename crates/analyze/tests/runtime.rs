//! The divergent SPMD scenarios fail with a typed `CollectiveMismatch`
//! naming the divergent thread and both call sites — instead of the
//! silent deadlock the paper's collective-invocation contract would
//! otherwise produce — and the uniform control run stays clean.

use pardis_analyze::{lockcheck, scenarios};
use pardis_core::PardisError;
use scenarios::Scenario;

#[test]
fn mismatched_order_is_rejected_with_both_sites() {
    let outcomes = scenarios::run(Scenario::MismatchedOrder).unwrap();
    assert_eq!(outcomes.len(), 2);
    for o in &outcomes {
        match &o.result {
            Err(PardisError::CollectiveMismatch {
                thread,
                mine,
                theirs,
            }) => {
                // Rank 1 issued `reset` while rank 0 (the reference)
                // issued `step` — every thread names the same culprit
                // and both call sites.
                assert_eq!(*thread, 1, "rank {}: wrong culprit", o.rank);
                assert!(mine.contains("`step`"), "rank {}: mine = {mine}", o.rank);
                assert!(
                    theirs.contains("`reset`"),
                    "rank {}: theirs = {theirs}",
                    o.rank
                );
            }
            other => panic!(
                "rank {}: expected CollectiveMismatch, got {other:?}",
                o.rank
            ),
        }
    }
}

#[test]
fn divergent_template_is_rejected() {
    let outcomes = scenarios::run(Scenario::DivergentTemplate).unwrap();
    for o in &outcomes {
        assert!(
            matches!(
                o.result,
                Err(PardisError::CollectiveMismatch { thread: 1, .. })
            ),
            "rank {}: {:?}",
            o.rank,
            o.result
        );
    }
}

#[test]
fn divergent_length_class_is_rejected() {
    let outcomes = scenarios::run(Scenario::DivergentLength).unwrap();
    for o in &outcomes {
        assert!(
            matches!(
                o.result,
                Err(PardisError::CollectiveMismatch { thread: 1, .. })
            ),
            "rank {}: {:?}",
            o.rank,
            o.result
        );
    }
}

#[test]
fn uniform_control_has_no_false_positives() {
    let outcomes = scenarios::run(Scenario::Uniform).unwrap();
    assert_eq!(outcomes.len(), 2);
    for o in &outcomes {
        assert!(o.result.is_ok(), "rank {}: {:?}", o.rank, o.result);
    }
}

#[test]
fn scenario_checker_agrees_with_the_assertions() {
    for s in Scenario::all() {
        let outcomes = scenarios::run(s).unwrap();
        let problems = scenarios::check(s, &outcomes);
        assert!(problems.is_empty(), "{}: {problems:?}", s.name());
    }
}

#[test]
fn lockcheck_rts_workload_is_cycle_free_and_inversion_is_caught() {
    use lockcheck::Node;
    let report = lockcheck::check_rts_locks().unwrap();
    assert!(
        report.cycles.is_empty(),
        "RTS wait-for cycles: {:?}",
        report.cycles
    );
    // The workload really exercised the instrumented classes.
    for class in ["rma::registry", "rma::window_part"] {
        assert!(
            report.classes.contains(&Node::Lock(class)),
            "{class} never acquired: {:?}",
            report.classes
        );
    }
    let seeded = lockcheck::seeded_inversion();
    assert_eq!(seeded.len(), 1, "{seeded:?}");
    assert!(seeded[0].contains(&Node::Lock("analyze::demo_a")));
    assert!(seeded[0].contains(&Node::Lock("analyze::demo_b")));
    assert_eq!(lockcheck::cycle_code(&seeded[0]), "PA102");
}

#[test]
fn lock_vs_collective_inversion_is_pa203_and_invisible_to_the_old_graph() {
    use lockcheck::Node;
    let mixed = lockcheck::seeded_collective_inversion();
    assert_eq!(mixed.cycles.len(), 1, "{:?}", mixed.cycles);
    assert!(mixed.cycles[0].contains(&Node::Lock("analyze::demo_state")));
    assert!(mixed.cycles[0].contains(&Node::Collective("analyze::demo_barrier")));
    assert_eq!(lockcheck::cycle_code(&mixed.cycles[0]), "PA203");
    // The pre-generalization lock-only detector reported nothing on
    // this schedule: only one lock class is involved.
    assert!(mixed.lock_only.is_empty(), "{:?}", mixed.lock_only);
}

#[test]
fn seeded_race_scenarios_replay_and_classify() {
    let report = pardis_analyze::racecheck::check(0xACE_5EED).unwrap();
    assert!(report.ok(), "{report:#?}");
    // The racy run flags PA201 with the transfer as one side.
    let r = &report.racy[0];
    assert_eq!(r.code, "PA201");
    assert!(report.racy == report.replay, "replay diverged");
    // The window run flags PA202 on the shared element.
    assert!(report.window.iter().all(|w| w.code == "PA202"));
}
