//! # pardis-analyze — collective-consistency analysis for PARDIS
//!
//! PARDIS's core contract — a request is satisfied only when delivered
//! to *all* computing threads, and after `_spmd_bind` every invocation
//! is collective (§2.1, §3.2) — makes divergent control flow across
//! SPMD threads the dominant silent-deadlock class. This crate bundles
//! the three cooperating passes that check the contract:
//!
//! 1. **IDL static lints** ([`idl`]) — [`pardis_idl::lint`] findings
//!    (`PA001`…`PA007`) over `.idl` sources, with a seeded defect
//!    corpus and exact expected-findings matching.
//! 2. **Collective-consistency runtime verification** ([`scenarios`])
//!    — known-divergent SPMD programs run on the
//!    [`pardis_core::World`] testbed with the `analyze` feature, each
//!    of which must fail with a typed
//!    [`pardis_core::PardisError::CollectiveMismatch`] (finding PA101)
//!    instead of deadlocking.
//! 3. **Wait-for-graph deadlock detection** ([`lockcheck`]) — the
//!    [`pardis_rts::lockgraph`] cycle detector over lock *and*
//!    pending-collective nodes (findings PA102 and PA203).
//! 4. **Happens-before race replay** ([`racecheck`]) — seeded SPMD
//!    programs whose mid-flight buffer accesses and unfenced one-sided
//!    writes must be reported by [`pardis_core::race`] (findings PA201
//!    and PA202), bit-for-bit identically across replays of one seed.
//!
//! The `pardis-analyze` binary drives all four; see `--help`.

pub mod idl;
pub mod lockcheck;
pub mod racecheck;
pub mod scenarios;
