//! # pardis-analyze — collective-consistency analysis for PARDIS
//!
//! PARDIS's core contract — a request is satisfied only when delivered
//! to *all* computing threads, and after `_spmd_bind` every invocation
//! is collective (§2.1, §3.2) — makes divergent control flow across
//! SPMD threads the dominant silent-deadlock class. This crate bundles
//! the three cooperating passes that check the contract:
//!
//! 1. **IDL static lints** ([`idl`]) — [`pardis_idl::lint`] findings
//!    (`PA001`…`PA007`) over `.idl` sources, with a seeded defect
//!    corpus and exact expected-findings matching.
//! 2. **Collective-consistency runtime verification** ([`scenarios`])
//!    — known-divergent SPMD programs run on the
//!    [`pardis_core::World`] testbed with the `analyze` feature, each
//!    of which must fail with a typed
//!    [`pardis_core::PardisError::CollectiveMismatch`] (finding PA101)
//!    instead of deadlocking.
//! 3. **Lock-order deadlock graph** ([`lockcheck`]) — the
//!    [`pardis_rts::lockgraph`] acquisition-order cycle detector
//!    (finding PA102).
//!
//! The `pardis-analyze` binary drives all three; see `--help`.

pub mod idl;
pub mod lockcheck;
pub mod scenarios;
