//! Pass 3: wait-for-graph deadlock detection (findings PA102, PA203).
//!
//! [`pardis_rts::lockgraph`] records, behind the `analyze` feature, a
//! wait-for order graph whose nodes are both **locks** (by class) and
//! **pending collectives** (barrier, broadcast, …). A cycle is a
//! potential deadlock even if no run has hit it: pure-lock cycles
//! classify as PA102, cycles mixing a lock with a pending collective
//! as PA203 — the class the old lock-only graph could not see.

use pardis_rts::lockgraph;

pub use pardis_rts::lockgraph::{cycle_code, Node};

/// Report from one wait-for-graph check.
#[derive(Debug)]
pub struct LockReport {
    /// Every instrumented node the workload entered (locks and
    /// collectives).
    pub classes: Vec<Node>,
    /// Wait-for-order edges observed (held/entered node → entered
    /// node). The RTS takes its locks one at a time, so a clean run
    /// records nodes but few or no edges.
    pub edges: Vec<(Node, Node)>,
    /// Cycles found; each is a node path whose last element repeats
    /// the first. Classify with [`cycle_code`].
    pub cycles: Vec<Vec<Node>>,
}

/// Exercise the instrumented RTS lock classes (the RMA registry and
/// window-part locks) and collective brackets with a real one-sided
/// workload, then report the observed wait-for graph. A correct
/// runtime produces no cycles.
pub fn check_rts_locks() -> Result<LockReport, String> {
    lockgraph::reset();
    let eps = pardis_rts::Domain::new(2);
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            std::thread::spawn(move || -> Result<(), pardis_rts::RtsError> {
                let win = pardis_rts::Window::create(&ep, vec![ep.rank() as f64; 8])?;
                let peer = 1 - ep.rank();
                let _ = win.get(peer, 0, 4)?;
                win.accumulate(peer, 0, &[1.0])?;
                win.fence(&ep);
                win.free(&ep);
                Ok(())
            })
        })
        .collect();
    for h in handles {
        h.join()
            .map_err(|_| "lockcheck worker panicked".to_string())?
            .map_err(|e| format!("lockcheck RMA workload failed: {e}"))?;
    }
    Ok(LockReport {
        classes: lockgraph::classes(),
        edges: lockgraph::edges(),
        cycles: lockgraph::cycles(),
    })
}

/// Demonstrate detection on a seeded lock-order inversion: two lock
/// classes taken in opposite orders. Returns the cycles found (must be
/// non-empty and classify as PA102 — the detector's positive control).
pub fn seeded_inversion() -> Vec<Vec<Node>> {
    lockgraph::reset();
    {
        let _outer = lockgraph::track("analyze::demo_a");
        let _inner = lockgraph::track("analyze::demo_b");
    }
    {
        let _outer = lockgraph::track("analyze::demo_b");
        let _inner = lockgraph::track("analyze::demo_a");
    }
    lockgraph::cycles()
}

/// Evidence from the seeded lock-vs-collective inversion.
#[derive(Debug)]
pub struct SeededCollective {
    /// Cycles in the full wait-for graph; must contain the
    /// lock/collective cycle (PA203).
    pub cycles: Vec<Vec<Node>>,
    /// The same graph restricted to lock nodes — what the
    /// pre-generalization detector saw. Must be empty: the old
    /// lock-only graph reported nothing on this schedule.
    pub lock_only: Vec<Vec<Node>>,
}

/// Demonstrate the PA203 class: thread 1 holds a lock and waits in a
/// collective; thread 2, inside the same collective region, blocks on
/// the lock. Only one lock class is involved, so the lock-only view
/// has no edges at all — the deadlock is invisible without collective
/// nodes in the graph.
pub fn seeded_collective_inversion() -> SeededCollective {
    lockgraph::reset();
    {
        let _l = lockgraph::track("analyze::demo_state");
        let _c = lockgraph::collective_enter("analyze::demo_barrier");
    }
    {
        let _c = lockgraph::collective_enter("analyze::demo_barrier");
        let _l = lockgraph::track("analyze::demo_state");
    }
    SeededCollective {
        cycles: lockgraph::cycles(),
        lock_only: lockgraph::lock_only_cycles(),
    }
}

/// Render a cycle as `a -> b -> a`.
pub fn cycle_path(cycle: &[Node]) -> String {
    cycle
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(" -> ")
}
