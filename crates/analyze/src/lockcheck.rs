//! Pass 3: lock-order deadlock graph (finding PA102).
//!
//! [`pardis_rts::lockgraph`] records, behind the `analyze` feature, the
//! order in which instrumented RTS locks are acquired while other
//! instrumented locks are held. A cycle in that acquisition-order graph
//! is a potential deadlock even if no run has hit it yet.

use pardis_rts::lockgraph;

/// Report from one lock-order check.
#[derive(Debug)]
pub struct LockReport {
    /// Every instrumented lock class the workload acquired.
    pub classes: Vec<&'static str>,
    /// Acquisition-order edges observed (held class → acquired class).
    /// The RTS takes its locks one at a time, so a clean run records
    /// classes but few or no edges.
    pub edges: Vec<(&'static str, &'static str)>,
    /// Cycles found; each is a class path whose last element repeats
    /// the first.
    pub cycles: Vec<Vec<&'static str>>,
}

/// Exercise the instrumented RTS lock classes (the RMA registry and
/// window-part locks) with a real one-sided workload, then report the
/// observed acquisition graph. A correct runtime produces no cycles.
pub fn check_rts_locks() -> Result<LockReport, String> {
    lockgraph::reset();
    let eps = pardis_rts::Domain::new(2);
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            std::thread::spawn(move || -> Result<(), pardis_rts::RtsError> {
                let win = pardis_rts::Window::create(&ep, vec![ep.rank() as f64; 8])?;
                let peer = 1 - ep.rank();
                let _ = win.get(peer, 0, 4)?;
                win.accumulate(peer, 0, &[1.0])?;
                win.fence(&ep);
                win.free(&ep);
                Ok(())
            })
        })
        .collect();
    for h in handles {
        h.join()
            .map_err(|_| "lockcheck worker panicked".to_string())?
            .map_err(|e| format!("lockcheck RMA workload failed: {e}"))?;
    }
    Ok(LockReport {
        classes: lockgraph::classes(),
        edges: lockgraph::edges(),
        cycles: lockgraph::cycles(),
    })
}

/// Demonstrate detection on a seeded inversion: two lock classes taken
/// in opposite orders. Returns the cycles found (must be non-empty —
/// this is the detector's positive control).
pub fn seeded_inversion() -> Vec<Vec<&'static str>> {
    lockgraph::reset();
    {
        let _outer = lockgraph::track("analyze::demo_a");
        let _inner = lockgraph::track("analyze::demo_b");
    }
    {
        let _outer = lockgraph::track("analyze::demo_b");
        let _inner = lockgraph::track("analyze::demo_a");
    }
    lockgraph::cycles()
}
