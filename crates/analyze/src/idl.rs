//! Pass 1: IDL static lints over files, directories, and the seeded
//! defect corpus.
//!
//! Corpus layout: each `<name>.idl` sits next to a `<name>.expect`
//! listing the findings the analyzer must produce, one per line as
//! `CODE LINE` (e.g. `PA003 4`), `#`-comments and blank lines ignored.
//! Matching is exact — a missed defect and a false positive both fail.

use pardis_idl::lint::LintOptions;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding, reduced to what corpus matching and reports need.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Line in the source file (1-based).
    pub line: u32,
    /// Stable lint code (`PA001`…).
    pub code: String,
    /// `error` or `warning`.
    pub severity: String,
    /// Human-readable description.
    pub message: String,
}

/// Lint one `.idl` file. `Err` carries a description of why the file
/// could not be analyzed at all (unreadable, parse or sema failure).
pub fn lint_file(path: &Path, allow: &[String]) -> Result<Vec<Finding>, String> {
    let source =
        fs::read_to_string(path).map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let name = path.display().to_string();
    let model = pardis_idl::parse_and_check(&source, &name)
        .map_err(|d| format!("{name}: does not parse/check:\n{d}"))?;
    let diags = model.lint(&LintOptions {
        allow: allow.to_vec(),
    });
    Ok(diags
        .items
        .iter()
        .map(|d| Finding {
            line: d.pos.line,
            code: d.code.clone().unwrap_or_default(),
            severity: d.severity.to_string(),
            message: d.message.clone(),
        })
        .collect())
}

/// All `.idl` files directly under `dir`, sorted for stable output.
pub fn idl_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: cannot list: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "idl"))
        .collect();
    files.sort();
    Ok(files)
}

/// Outcome of checking one corpus file against its `.expect`.
#[derive(Debug)]
pub struct CorpusResult {
    /// The `.idl` file checked.
    pub path: PathBuf,
    /// `(code, line)` pairs the `.expect` file demands, sorted.
    pub expected: Vec<(String, u32)>,
    /// `(code, line)` pairs the analyzer produced, sorted.
    pub actual: Vec<(String, u32)>,
}

impl CorpusResult {
    /// Exact match between expectation and findings.
    pub fn matches(&self) -> bool {
        self.expected == self.actual
    }
}

fn parse_expect(path: &Path) -> Result<Vec<(String, u32)>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let (Some(code), Some(lno)) = (words.next(), words.next()) else {
            return Err(format!(
                "{}:{}: expected `CODE LINE`, got `{line}`",
                path.display(),
                i + 1
            ));
        };
        let lno: u32 = lno
            .parse()
            .map_err(|_| format!("{}:{}: bad line number `{lno}`", path.display(), i + 1))?;
        out.push((code.to_string(), lno));
    }
    out.sort();
    Ok(out)
}

/// Check every `.idl` in `dir` against its sibling `.expect` file.
pub fn check_corpus(dir: &Path) -> Result<Vec<CorpusResult>, String> {
    let files = idl_files(dir)?;
    if files.is_empty() {
        return Err(format!("{}: no .idl files found", dir.display()));
    }
    let mut results = Vec::new();
    for f in files {
        let expect = f.with_extension("expect");
        let expected = parse_expect(&expect)?;
        let mut actual: Vec<(String, u32)> = lint_file(&f, &[])?
            .into_iter()
            .map(|x| (x.code, x.line))
            .collect();
        actual.sort();
        results.push(CorpusResult {
            path: f,
            expected,
            actual,
        });
    }
    Ok(results)
}
