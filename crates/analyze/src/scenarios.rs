//! Pass 2: known-divergent SPMD programs.
//!
//! Each scenario stands up a parallel server and a parallel client on
//! the [`World`] testbed and makes the client's computing threads
//! violate the SPMD contract in a specific way. Without the `analyze`
//! feature every one of these deadlocks (the divergent threads wait on
//! collectives with mismatched participants); with it, the
//! collective-consistency verifier turns the divergence into a typed
//! [`PardisError::CollectiveMismatch`] on *every* thread, naming the
//! divergent thread and both call sites (finding PA101).

use bytes::Bytes;
use pardis_core::prelude::*;
use pardis_core::{DistArgSend, DistTempl};

const VICTIM_TYPE: &str = "IDL:analyze_victim:1.0";

/// A servant whose operations all succeed trivially — the divergence is
/// caught client-side, before any request reaches it.
struct Victim;

impl Servant for Victim {
    fn type_id(&self) -> &str {
        VICTIM_TYPE
    }
    fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()> {
        req.set_result(|_| Ok(()))
    }
}

/// The per-thread outcome of one divergent invocation.
#[derive(Debug, Clone)]
pub struct ThreadOutcome {
    /// The client thread's rank.
    pub rank: usize,
    /// What `invoke` returned on that thread.
    pub result: Result<(), PardisError>,
}

/// A runnable divergence scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Thread 0 invokes `step` while thread 1 invokes `reset` —
    /// mismatched operation order.
    MismatchedOrder,
    /// Both threads invoke `step`, but with different distribution
    /// templates for the same argument.
    DivergentTemplate,
    /// Both threads invoke `step`, but with payload lengths in
    /// different length classes (16 vs 4096 elements).
    DivergentLength,
    /// Control: all threads invoke identically; must succeed — the
    /// verifier's zero-false-positive check.
    Uniform,
}

impl Scenario {
    /// All scenarios, divergent ones first.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::MismatchedOrder,
            Scenario::DivergentTemplate,
            Scenario::DivergentLength,
            Scenario::Uniform,
        ]
    }

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::MismatchedOrder => "mismatched-order",
            Scenario::DivergentTemplate => "divergent-template",
            Scenario::DivergentLength => "divergent-length",
            Scenario::Uniform => "uniform-control",
        }
    }

    /// Whether the verifier is supposed to reject this scenario.
    pub fn is_divergent(self) -> bool {
        self != Scenario::Uniform
    }

    /// Build the request a given client rank issues under this
    /// scenario. The divergence lives entirely in here.
    fn spec_for(self, rank: usize) -> RequestSpec {
        let dist_arg = |counts: Vec<usize>| {
            let templ = DistTempl::from_counts(counts);
            DistArgSend {
                dir: ArgDir::In,
                elem_size: 8,
                local: Bytes::new(),
                client_templ: templ.clone(),
                server_templ: templ,
                buf_id: 0,
            }
        };
        match self {
            Scenario::MismatchedOrder => {
                RequestSpec::simple(if rank == 0 { "step" } else { "reset" })
            }
            Scenario::DivergentTemplate => {
                // Same op, same total length, different split.
                let counts = if rank == 0 { vec![8, 8] } else { vec![12, 4] };
                let mut spec = RequestSpec::simple("step");
                spec.dist_args.push(dist_arg(counts));
                spec
            }
            Scenario::DivergentLength => {
                // Same split shape, totals in different length classes.
                let counts = if rank == 0 {
                    vec![8, 8]
                } else {
                    vec![2048, 2048]
                };
                let mut spec = RequestSpec::simple("step");
                spec.dist_args.push(dist_arg(counts));
                spec
            }
            Scenario::Uniform => RequestSpec::simple("step"),
        }
    }
}

/// Run `scenario` with a 2-thread SPMD client and return what each
/// client thread observed. Divergent scenarios return promptly — the
/// whole point is that they *don't* deadlock. `Err` means the testbed
/// itself failed (bind, serve loop, shutdown), not the scenario.
pub fn run(scenario: Scenario) -> Result<Vec<ThreadOutcome>, String> {
    let world = World::new(LinkSpec::unlimited());
    let server = world.spawn_machine("server", 2, |ctx| -> Result<(), String> {
        ctx.register("victim", Box::new(Victim), vec![])
            .map_err(|e| format!("register victim servant: {e}"))?;
        ctx.serve_forever()
            .map_err(|e| format!("victim serve loop: {e}"))
    });
    let client = world.spawn_machine("client", 2, move |ctx| {
        let rank = ctx.rank();
        let proxy = match ctx.spmd_bind("victim", None, Some(VICTIM_TYPE)) {
            Ok(p) => p,
            Err(e) => {
                return Err(format!("rank {rank}: spmd_bind victim: {e}"));
            }
        };
        let result = proxy.invoke(&ctx, scenario.spec_for(rank)).map(|_| ());
        // Divergent-order threads disagree again on any further
        // collective, so re-synchronize over the raw RTS before
        // shutting the server down.
        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            ctx.send_shutdown(proxy.objref())
                .map_err(|e| format!("rank {rank}: shutdown victim: {e}"))?;
        }
        Ok(ThreadOutcome { rank, result })
    });
    // Join the client first: if its threads failed before the shutdown
    // was sent, surface that error instead of waiting on the server.
    let mut outcomes = client.join().into_iter().collect::<Result<Vec<_>, _>>()?;
    for r in server.join() {
        r?;
    }
    outcomes.sort_by_key(|o| o.rank);
    Ok(outcomes)
}

/// Check one scenario's outcomes against the contract: divergent runs
/// fail with `CollectiveMismatch` (naming a thread and both sites) on
/// every thread, the uniform control succeeds on every thread. Returns
/// a list of violations (empty = pass).
pub fn check(scenario: Scenario, outcomes: &[ThreadOutcome]) -> Vec<String> {
    let mut problems = Vec::new();
    for o in outcomes {
        match (&o.result, scenario.is_divergent()) {
            (Ok(()), false) => {}
            (Ok(()), true) => {
                problems.push(format!(
                    "{}: thread {} succeeded; expected CollectiveMismatch",
                    scenario.name(),
                    o.rank
                ));
            }
            (
                Err(PardisError::CollectiveMismatch {
                    thread,
                    mine,
                    theirs,
                }),
                true,
            ) => {
                if *thread == 0 {
                    problems.push(format!(
                        "{}: thread {} blames rank 0, the reference rank",
                        scenario.name(),
                        o.rank
                    ));
                }
                if mine.is_empty() || theirs.is_empty() {
                    problems.push(format!(
                        "{}: thread {} got a mismatch without both call sites",
                        scenario.name(),
                        o.rank
                    ));
                }
            }
            (Err(e), true) => {
                problems.push(format!(
                    "{}: thread {} failed with {e} instead of CollectiveMismatch",
                    scenario.name(),
                    o.rank
                ));
            }
            (Err(e), false) => {
                problems.push(format!(
                    "{}: control run failed on thread {}: {e}",
                    scenario.name(),
                    o.rank
                ));
            }
        }
    }
    problems
}
