//! The `pardis-analyze` driver: runs the static lint pass over an IDL
//! corpus and drives the runtime verification passes on the testbed.

use pardis_analyze::{idl, lockcheck, racecheck, scenarios};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
pardis-analyze — collective-consistency analysis for PARDIS

USAGE:
    pardis-analyze [COMMAND] [ARGS]

COMMANDS:
    all                 run every pass (default): corpus, clean, runtime,
                        lockcheck, race
    lint <paths...>     lint .idl files or directories, print findings
    corpus [DIR]        check the seeded defect corpus against .expect files
                        (default: tests/analyze_corpus)
    clean [DIR...]      assert zero findings on known-good IDL
                        (default: examples/idl)
    runtime             run the divergent SPMD scenarios on the testbed
    lockcheck           build the wait-for graph (locks + pending
                        collectives), report PA102/PA203 cycles
    race [SEED]         replay the seeded race scenarios (PA201/PA202),
                        print JSON findings (default seed: 0x5EED)

EXIT CODES:
    0  everything as expected
    1  findings deviate from expectations / a pass failed
    2  usage or I/O error
";

/// The workspace root: the binary is run from it via `cargo run -p
/// pardis-analyze`, but fall back to the build-time manifest location
/// so it also works from elsewhere.
fn repo_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("tests/analyze_corpus").is_dir() {
        cwd
    } else {
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
    }
}

fn print_findings(path: &Path, findings: &[idl::Finding]) {
    for f in findings {
        println!(
            "{}:{}: {} [{}]: {}",
            path.display(),
            f.line,
            f.severity,
            f.code,
            f.message
        );
    }
}

/// `lint`: print findings; exit 1 if any.
fn cmd_lint(paths: &[String]) -> Result<bool, String> {
    if paths.is_empty() {
        return Err("lint: no paths given".into());
    }
    let mut files = Vec::new();
    for p in paths {
        let p = PathBuf::from(p);
        if p.is_dir() {
            files.extend(idl::idl_files(&p)?);
        } else {
            files.push(p);
        }
    }
    let mut any = false;
    for f in &files {
        let findings = idl::lint_file(f, &[])?;
        any |= !findings.is_empty();
        print_findings(f, &findings);
    }
    println!("lint: {} file(s) checked", files.len());
    Ok(!any)
}

/// `corpus`: every seeded defect must be flagged, exactly.
fn cmd_corpus(dir: &Path) -> Result<bool, String> {
    let results = idl::check_corpus(dir)?;
    let mut ok = true;
    for r in &results {
        if r.matches() {
            println!(
                "corpus: {}: ok ({} finding(s))",
                r.path.display(),
                r.actual.len()
            );
        } else {
            ok = false;
            println!(
                "corpus: {}: MISMATCH\n  expected: {:?}\n  actual:   {:?}",
                r.path.display(),
                r.expected,
                r.actual
            );
        }
    }
    println!("corpus: {} file(s) checked", results.len());
    Ok(ok)
}

/// `clean`: zero findings on the known-good set (false-positive guard).
fn cmd_clean(dirs: &[PathBuf]) -> Result<bool, String> {
    let mut ok = true;
    let mut n = 0usize;
    for dir in dirs {
        for f in idl::idl_files(dir)? {
            n += 1;
            let findings = idl::lint_file(&f, &[])?;
            if findings.is_empty() {
                println!("clean: {}: ok", f.display());
            } else {
                ok = false;
                println!("clean: {}: FALSE POSITIVES", f.display());
                print_findings(&f, &findings);
            }
        }
    }
    println!("clean: {n} file(s) checked");
    Ok(ok)
}

/// `runtime`: divergent scenarios must fail with CollectiveMismatch,
/// the uniform control must pass.
fn cmd_runtime() -> Result<bool, String> {
    let mut ok = true;
    for s in scenarios::Scenario::all() {
        let outcomes = scenarios::run(s)?;
        let problems = scenarios::check(s, &outcomes);
        if problems.is_empty() {
            let verdict = if s.is_divergent() {
                "rejected with CollectiveMismatch on every thread"
            } else {
                "accepted on every thread"
            };
            println!("runtime: {}: ok — {verdict}", s.name());
            if let Some(Err(e)) = outcomes.iter().map(|o| &o.result).find(|r| r.is_err()) {
                println!("  e.g. {e}");
            }
        } else {
            ok = false;
            for p in problems {
                println!("runtime: FAIL: {p}");
            }
        }
    }
    Ok(ok)
}

/// `lockcheck`: the real RTS workload must be cycle-free, both seeded
/// inversions (lock/lock and lock/collective) must be caught and
/// classified.
fn cmd_lockcheck() -> Result<bool, String> {
    let mut ok = true;
    let report = lockcheck::check_rts_locks()?;
    println!(
        "lockcheck: RTS RMA workload: {} node(s), {} wait-for edge(s) observed",
        report.classes.len(),
        report.edges.len()
    );
    for c in &report.classes {
        println!("  node {c}");
    }
    for (a, b) in &report.edges {
        println!("  edge {a} -> {b}");
    }
    if report.cycles.is_empty() {
        println!("lockcheck: RTS wait-for order: ok — no cycles");
    } else {
        ok = false;
        for c in &report.cycles {
            println!(
                "lockcheck: {}: wait-for cycle: {}",
                lockcheck::cycle_code(c),
                lockcheck::cycle_path(c)
            );
        }
    }
    let seeded = lockcheck::seeded_inversion();
    match seeded.first() {
        Some(c) if lockcheck::cycle_code(c) == "PA102" => {
            println!(
                "lockcheck: seeded lock inversion detected as expected (PA102): {}",
                lockcheck::cycle_path(c)
            );
        }
        _ => {
            ok = false;
            println!("lockcheck: FAIL: seeded lock inversion was not detected as PA102");
        }
    }
    let mixed = lockcheck::seeded_collective_inversion();
    match mixed.cycles.first() {
        Some(c) if lockcheck::cycle_code(c) == "PA203" && mixed.lock_only.is_empty() => {
            println!(
                "lockcheck: seeded lock/collective inversion detected as expected \
                 (PA203): {} — invisible to the lock-only graph ({} cycle(s))",
                lockcheck::cycle_path(c),
                mixed.lock_only.len()
            );
        }
        _ => {
            ok = false;
            println!(
                "lockcheck: FAIL: seeded lock/collective inversion was not detected \
                 as PA203 (cycles: {:?}, lock-only: {:?})",
                mixed.cycles, mixed.lock_only
            );
        }
    }
    Ok(ok)
}

/// `race`: the seeded racy run must be flagged (PA201) and replay
/// bit-for-bit, the clean run must be silent, the unfenced window
/// program must be flagged (PA202). Findings print as JSON.
fn cmd_race(seed: u64) -> Result<bool, String> {
    let report = racecheck::check(seed)?;
    println!(
        "race: seed {:#x}: racy run produced {} finding(s), replay {}",
        report.seed,
        report.racy.len(),
        if report.racy == report.replay {
            "identical (bit-for-bit)".to_string()
        } else {
            format!("DIVERGED ({} finding(s))", report.replay.len())
        }
    );
    println!(
        "race: clean run produced {} finding(s); window run produced {}",
        report.clean.len(),
        report.window.len()
    );
    let mut findings = report.racy.clone();
    findings.extend(report.clean.iter().cloned());
    findings.extend(report.window.iter().cloned());
    println!("{}", racecheck::to_json(&findings));
    Ok(report.ok())
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = repo_root();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "-h" | "--help" => {
            print!("{USAGE}");
            Ok(true)
        }
        "lint" => cmd_lint(&args[1..]),
        "corpus" => {
            let dir = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(|| root.join("tests/analyze_corpus"));
            cmd_corpus(&dir)
        }
        "clean" => {
            let dirs: Vec<PathBuf> = if args.len() > 1 {
                args[1..].iter().map(PathBuf::from).collect()
            } else {
                vec![root.join("examples/idl")]
            };
            cmd_clean(&dirs)
        }
        "runtime" => cmd_runtime(),
        "lockcheck" => cmd_lockcheck(),
        "race" => {
            let seed = match args.get(1) {
                Some(s) => {
                    let digits = s.trim_start_matches("0x");
                    u64::from_str_radix(digits, if digits == s { 10 } else { 16 })
                        .map_err(|_| format!("race: bad seed `{s}`"))?
                }
                None => 0x5EED,
            };
            cmd_race(seed)
        }
        "all" => {
            let corpus = cmd_corpus(&root.join("tests/analyze_corpus"))?;
            let clean = cmd_clean(&[root.join("examples/idl")])?;
            let runtime = cmd_runtime()?;
            let locks = cmd_lockcheck()?;
            let race = cmd_race(0x5EED)?;
            Ok(corpus && clean && runtime && locks && race)
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("pardis-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
