//! Pass 4: happens-before race replay (findings PA201 and PA202).
//!
//! [`pardis_core::race`] records, behind the `analyze` feature, every
//! application access to a distributed sequence's local buffer and
//! every one-sided window access, each stamped with the per-rank
//! vector clock of [`pardis_rts::clock`]. This pass replays seeded
//! SPMD programs on the [`World`] testbed:
//!
//! * a **racy** client that writes `local_data_mut` while a multi-port
//!   transfer interval on the same buffer is still open (the future
//!   from `invoke_nb` has not been waited on) — every touched
//!   invocation must yield a PA201 report, and a second replay of the
//!   same seed must drain a bit-for-bit identical report list;
//! * a **clean** client that only touches buffers after `wait` — zero
//!   findings, the false-positive guard;
//! * a **window** program whose threads issue overlapping one-sided
//!   writes with no fence between them — a PA202 report at the next
//!   exposure-epoch boundary.

use pardis_core::prelude::*;
use pardis_core::race::{self, RaceReport};

const VICTIM_TYPE: &str = "IDL:race_victim:1.0";
const THREADS: usize = 2;
const INVOCATIONS: usize = 6;
const SEQ_LEN: usize = 64;

/// A servant that consumes one distributed `in` argument and replies
/// with an empty result — the races under test are all client-side.
struct Sink;

impl Servant for Sink {
    fn type_id(&self) -> &str {
        VICTIM_TYPE
    }
    fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()> {
        let _arr: pardis_core::DSequence<f64> = req.dist_seq(0)?;
        req.set_result(|_| Ok(()))
    }
}

/// Everything one `check` run produced.
#[derive(Debug)]
pub struct RaceCheckReport {
    /// The seed the racy schedule was derived from.
    pub seed: u64,
    /// Reports drained from the first racy run, sorted.
    pub racy: Vec<RaceReport>,
    /// Reports drained from the second run of the same seed; must
    /// equal `racy` bit-for-bit (clocks, buffer ids, details).
    pub replay: Vec<RaceReport>,
    /// Reports from the clean run; must be empty.
    pub clean: Vec<RaceReport>,
    /// Reports from the unfenced-window program; PA202 expected.
    pub window: Vec<RaceReport>,
}

impl RaceCheckReport {
    /// Whether every expectation holds: races found and replayed
    /// identically, no false positives, window misuse flagged.
    pub fn ok(&self) -> bool {
        !self.racy.is_empty()
            && self.racy.iter().all(|r| r.code == "PA201")
            && self.racy == self.replay
            && self.clean.is_empty()
            && !self.window.is_empty()
            && self.window.iter().all(|r| r.code == "PA202")
    }
}

/// Splitmix-style step: the racy-touch schedule is a pure function of
/// the seed, so a replay touches the same invocations.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run the transfer scenario once under `client` as the machine name
/// and drain its reports. `racy` selects whether the seed-scheduled
/// mid-flight `local_data_mut` touches happen at all.
pub fn run_transfers(seed: u64, racy: bool, client: &str) -> Result<Vec<RaceReport>, String> {
    let world = World::new(LinkSpec::unlimited());
    let server_name = format!("{client}-server");
    let server = world.spawn_machine(&server_name, THREADS, |ctx| -> Result<(), String> {
        ctx.register("victim", Box::new(Sink), vec![])
            .map_err(|e| format!("register: {e}"))?;
        ctx.serve_forever().map_err(|e| format!("serve: {e}"))
    });
    let client_name = client.to_string();
    let srv = server_name.clone();
    let handle = world.spawn_machine(&client_name, THREADS, move |ctx| -> Result<(), String> {
        let proxy = ctx
            .spmd_bind("victim", Some(&srv), Some(VICTIM_TYPE))
            .map_err(|e| format!("bind: {e}"))?;
        let mut proxy = proxy;
        proxy
            .set_mode(TransferMode::MultiPort)
            .map_err(|e| format!("set_mode: {e}"))?;
        let mut rng = seed;
        for i in 0..INVOCATIONS {
            let mut seq = DSequence::<f64>::new(ctx.rts(), SEQ_LEN, None)
                .map_err(|e| format!("dseq: {e}"))?;
            for x in seq.local_data_mut() {
                *x = i as f64;
            }
            let mut spec = RequestSpec::simple("consume").idempotent();
            spec.dist_args = vec![proxy
                .dist_arg("consume", 0, ArgDir::In, &seq)
                .map_err(|e| format!("dist_arg: {e}"))?];
            let fut = proxy
                .invoke_nb(&ctx, spec)
                .map_err(|e| format!("invoke_nb: {e}"))?;
            // The hazard under test: the transfer interval opened by
            // the send phase is still open until `wait`. The schedule
            // is SPMD-uniform (same seed, same arithmetic on every
            // thread), so no thread diverges. Invocation 0 always
            // touches, guaranteeing at least one race per racy run.
            if racy && (i == 0 || next_rand(&mut rng) & 1 == 1) {
                seq.local_data_mut()[0] = -1.0;
            }
            fut.wait().map_err(|e| format!("wait: {e}"))?;
            // Ordered access: the invocation completed, the interval
            // is closed — never a finding.
            let _ = seq.local_data();
        }
        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            ctx.send_shutdown(proxy.objref())
                .map_err(|e| format!("shutdown: {e}"))?;
        }
        Ok(())
    });
    for r in handle.join() {
        r?;
    }
    for r in server.join() {
        r?;
    }
    Ok(race::take_reports(&format!("{client}/")))
}

/// Run the unfenced-window program: both threads write the same
/// element of rank 0's part with no fence between the writes, then
/// fence. The two writes carry concurrent clocks — PA202.
pub fn run_window(client: &str) -> Result<Vec<RaceReport>, String> {
    let world = World::new(LinkSpec::unlimited());
    let handle = world.spawn_machine(client, THREADS, |ctx| -> Result<(), String> {
        let seq = DSequence::<f64>::from_local(ctx.rts(), vec![ctx.rank() as f64; 4])
            .map_err(|e| format!("dseq: {e}"))?;
        let ex = seq.expose(ctx.rts()).map_err(|e| format!("expose: {e}"))?;
        // Every thread writes global element 1 (rank 0's part) in the
        // same exposure epoch; nothing orders the writes.
        ex.put(1, ctx.rank() as f64 + 10.0)
            .map_err(|e| format!("put: {e}"))?;
        ex.fence(ctx.rts());
        // Post-fence accesses are ordered by the fence — clean.
        let _ = ex.get(1).map_err(|e| format!("get: {e}"))?;
        let _ = ex
            .into_seq(ctx.rts())
            .map_err(|e| format!("into_seq: {e}"))?;
        Ok(())
    });
    for r in handle.join() {
        r?;
    }
    Ok(race::take_reports(&format!("{client}/")))
}

/// Run every race scenario for `seed` and collect the evidence.
pub fn check(seed: u64) -> Result<RaceCheckReport, String> {
    let racy = run_transfers(seed, true, "racecheck-racy")?;
    let replay = run_transfers(seed, true, "racecheck-racy")?;
    let clean = run_transfers(seed, false, "racecheck-clean")?;
    let window = run_window("racecheck-window")?;
    Ok(RaceCheckReport {
        seed,
        racy,
        replay,
        clean,
        window,
    })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render reports as the analyzer's JSON findings document (same
/// envelope as `pardis-idlc --analyze`, schema version 2).
pub fn to_json(reports: &[RaceReport]) -> String {
    let mut s = String::from("{\"schema_version\":2,\"version\":1,\"findings\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"code\":\"{}\",\"actor\":\"{}\",\"rank\":{},\"buffer\":{},\
             \"first\":\"{}\",\"second\":\"{}\",\"message\":\"{}\"}}",
            r.code,
            json_escape(&r.actor),
            r.rank,
            r.buffer,
            r.first.name(),
            r.second.name(),
            json_escape(&r.detail)
        ));
    }
    s.push_str("]}");
    s
}
