//! Deterministic fault injection for the fabric.
//!
//! The paper's testbed is a dedicated, loss-free ATM circuit; a
//! production ORB is not so lucky. A [`FaultPlan`] describes a
//! repeatable pattern of network misbehavior — dropped frames,
//! corrupted frames, latency spikes, per-flow connection resets, and
//! dead ports — all derived from one `u64` seed.
//!
//! **Determinism.** Every decision is a pure function of
//! `(seed, flow, per-flow counter)`, where a *flow* is the 4-tuple
//! `(src_host, src_port, dst_host, dst_port)`. Messages on one flow are
//! sent in program order, so per-flow counters — and therefore every
//! drop/corrupt/spike/reset decision — replay bit-for-bit from the same
//! seed regardless of how threads interleave *across* flows. This is
//! the wall-clock analogue of the simulator's no-wall-clock DES
//! discipline: the chaos is scheduled, not sampled.
//!
//! The plan is installed on a [`crate::Fabric`] and observed by
//! everything layered above it: [`crate::Link`] traffic is charged
//! normally for dropped frames (the wire was occupied), and
//! [`crate::conn::Connection`] sends/receives see the induced
//! `ConnectionReset`/silent-loss behavior.

use crate::fabric::{HostId, PortId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Probability scale: decisions are expressed per million events.
pub const PER_MILLION: u32 = 1_000_000;

/// A scheduled, *permanent* computing-thread death: rank `rank` of the
/// machine observing the plan dies immediately before serving its
/// `at_step`-th request (0-based). Distinct from the transient
/// dead-port fault: a dead port loses datagrams while the thread keeps
/// running, whereas a thread death removes the rank from the SPMD
/// membership for good — the ORB layer promotes it to confirmed-dead,
/// bumps the membership epoch, and (policy permitting) keeps serving
/// over the survivors.
///
/// Scheduling deaths by logical serve step rather than wall clock is
/// what makes chaos runs replay bit-for-bit: every rank of the victim
/// machine reads the same plan and applies the death at the same
/// logical point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadDeath {
    /// Rank of the computing thread that dies. Rank 0 (the
    /// communicating thread) must not be scheduled — its death is
    /// machine death, not degraded operation.
    pub rank: u32,
    /// 0-based index of the served request immediately before which the
    /// death takes effect.
    pub at_step: u64,
}

const SALT_DROP: u64 = 0xD509;
const SALT_CORRUPT: u64 = 0xC0DE;
const SALT_SPIKE: u64 = 0x5111;

/// A seeded, replayable description of network misbehavior.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Per-frame probability (in events per million) that a frame — and
    /// with it the whole message — is silently lost.
    drop_per_million: u32,
    /// Per-frame probability that one byte of the frame is flipped.
    corrupt_per_million: u32,
    /// Per-message probability of an added latency spike.
    spike_per_million: u32,
    /// Extra one-way latency charged on a spiked message.
    spike: Duration,
    /// Per-flow frame budget: a flow that has carried this many frames
    /// gets `ConnectionReset` on every further send.
    reset_after_frames: Option<u64>,
    /// Ports killed the moment the plan is installed.
    dead_ports: Vec<(HostId, PortId)>,
    /// Scheduled permanent thread deaths, applied by the serving ORB at
    /// the given logical steps.
    thread_deaths: Vec<ThreadDeath>,
}

impl FaultPlan {
    /// A plan that injects nothing (yet); chain `with_*` calls.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_per_million: 0,
            corrupt_per_million: 0,
            spike_per_million: 0,
            spike: Duration::ZERO,
            reset_after_frames: None,
            dead_ports: Vec::new(),
            thread_deaths: Vec::new(),
        }
    }

    /// The seed this plan derives every decision from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop individual frames with probability `per_million` / 10^6.
    /// A dropped frame loses its whole message (no partial delivery).
    pub fn with_frame_drop(mut self, per_million: u32) -> FaultPlan {
        self.drop_per_million = per_million.min(PER_MILLION);
        self
    }

    /// Flip one byte per affected frame with probability
    /// `per_million` / 10^6.
    pub fn with_frame_corruption(mut self, per_million: u32) -> FaultPlan {
        self.corrupt_per_million = per_million.min(PER_MILLION);
        self
    }

    /// Add `extra` one-way latency to a message with probability
    /// `per_million` / 10^6.
    pub fn with_latency_spikes(mut self, per_million: u32, extra: Duration) -> FaultPlan {
        self.spike_per_million = per_million.min(PER_MILLION);
        self.spike = extra;
        self
    }

    /// After a flow has carried `frames` frames, reset it: every
    /// further send on that flow fails with
    /// [`crate::NetError::ConnectionReset`].
    pub fn with_reset_after(mut self, frames: u64) -> FaultPlan {
        self.reset_after_frames = Some(frames);
        self
    }

    /// Kill `(host, port)` when the plan is installed: queued and
    /// future datagrams are lost and senders get `PortClosed`.
    pub fn with_dead_port(mut self, host: HostId, port: PortId) -> FaultPlan {
        self.dead_ports.push((host, port));
        self
    }

    pub(crate) fn dead_ports(&self) -> &[(HostId, PortId)] {
        &self.dead_ports
    }

    /// Schedule a permanent thread death: `rank` dies immediately
    /// before the machine serves its `at_step`-th request (0-based).
    /// Rank 0 schedules are ignored by the ORB (communicating-thread
    /// death is machine death).
    pub fn with_thread_death(mut self, rank: u32, at_step: u64) -> FaultPlan {
        self.thread_deaths.push(ThreadDeath { rank, at_step });
        self
    }

    /// The scheduled thread deaths, in insertion order.
    pub fn thread_deaths(&self) -> &[ThreadDeath] {
        &self.thread_deaths
    }
}

/// Counters of injected faults, for assertions and replay checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames the drop decision hit.
    pub frames_dropped: u64,
    /// Messages silently lost (one or more of their frames dropped).
    pub messages_dropped: u64,
    /// Frames that had a byte flipped.
    pub frames_corrupted: u64,
    /// Messages delivered with at least one corrupted frame.
    pub messages_corrupted: u64,
    /// Messages delayed by a latency spike.
    pub latency_spikes: u64,
    /// Sends refused with `ConnectionReset`.
    pub connection_resets: u64,
    /// Sends that hit a killed port.
    pub dead_port_hits: u64,
}

#[derive(Default)]
struct StatCells {
    frames_dropped: AtomicU64,
    messages_dropped: AtomicU64,
    frames_corrupted: AtomicU64,
    messages_corrupted: AtomicU64,
    latency_spikes: AtomicU64,
    connection_resets: AtomicU64,
    dead_port_hits: AtomicU64,
}

#[derive(Default)]
struct FlowState {
    messages: u64,
    frames: u64,
}

/// The outcome the fabric must apply to one message.
pub(crate) struct MessageFate {
    /// Silently lose the message (after charging wire time).
    pub drop: bool,
    /// Byte offsets to flip, relative to the payload start.
    pub corrupt_at: Vec<usize>,
    /// Extra propagation latency.
    pub extra_latency: Duration,
    /// Fail the send outright: the flow is past its reset budget.
    pub reset: bool,
}

/// Installed plan plus its mutable bookkeeping. Lives on the fabric.
pub(crate) struct FaultState {
    plan: FaultPlan,
    flows: Mutex<HashMap<(HostId, PortId, HostId, PortId), FlowState>>,
    stats: StatCells,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            plan,
            flows: Mutex::new(HashMap::new()),
            stats: StatCells::default(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn stats(&self) -> FaultStats {
        let s = &self.stats;
        FaultStats {
            frames_dropped: s.frames_dropped.load(Ordering::Relaxed),
            messages_dropped: s.messages_dropped.load(Ordering::Relaxed),
            frames_corrupted: s.frames_corrupted.load(Ordering::Relaxed),
            messages_corrupted: s.messages_corrupted.load(Ordering::Relaxed),
            latency_spikes: s.latency_spikes.load(Ordering::Relaxed),
            connection_resets: s.connection_resets.load(Ordering::Relaxed),
            dead_port_hits: s.dead_port_hits.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn count_dead_port_hit(&self) {
        self.stats.dead_port_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Decide the fate of one message of `len` bytes on `flow`, carved
    /// into `mtu`-sized frames. Advances the flow's counters.
    pub(crate) fn judge(
        &self,
        flow: (HostId, PortId, HostId, PortId),
        len: usize,
        mtu: usize,
    ) -> MessageFate {
        let nframes = len.div_ceil(mtu).max(1) as u64;
        let (msg_idx, frame_base) = {
            let mut flows = self.flows.lock();
            let st = flows.entry(flow).or_default();
            let snap = (st.messages, st.frames);
            st.messages += 1;
            st.frames += nframes;
            snap
        };

        let plan = &self.plan;
        if let Some(budget) = plan.reset_after_frames {
            if frame_base >= budget {
                self.stats.connection_resets.fetch_add(1, Ordering::Relaxed);
                return MessageFate {
                    drop: false,
                    corrupt_at: Vec::new(),
                    extra_latency: Duration::ZERO,
                    reset: true,
                };
            }
        }

        let fh = flow_hash(flow);
        let mut drop = false;
        let mut corrupt_at = Vec::new();
        for i in 0..nframes {
            let frame_no = frame_base + i;
            if plan.drop_per_million > 0
                && decide(plan.seed, fh, SALT_DROP, frame_no, plan.drop_per_million)
            {
                drop = true;
                self.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
            }
            if plan.corrupt_per_million > 0
                && decide(
                    plan.seed,
                    fh,
                    SALT_CORRUPT,
                    frame_no,
                    plan.corrupt_per_million,
                )
            {
                // Flip a deterministic byte inside this frame's range.
                let frame_start = (i as usize) * mtu;
                let frame_len = (len - frame_start.min(len)).min(mtu).max(1);
                let off =
                    frame_start + (mix(plan.seed ^ fh ^ frame_no) % frame_len as u64) as usize;
                corrupt_at.push(off.min(len.saturating_sub(1)));
                self.stats.frames_corrupted.fetch_add(1, Ordering::Relaxed);
            }
        }
        if drop {
            self.stats.messages_dropped.fetch_add(1, Ordering::Relaxed);
        } else if !corrupt_at.is_empty() {
            self.stats
                .messages_corrupted
                .fetch_add(1, Ordering::Relaxed);
        }

        let mut extra_latency = Duration::ZERO;
        if plan.spike_per_million > 0
            && decide(plan.seed, fh, SALT_SPIKE, msg_idx, plan.spike_per_million)
        {
            extra_latency = plan.spike;
            self.stats.latency_spikes.fetch_add(1, Ordering::Relaxed);
        }

        MessageFate {
            drop,
            corrupt_at,
            extra_latency,
            reset: false,
        }
    }
}

fn flow_hash((sh, sp, dh, dp): (HostId, PortId, HostId, PortId)) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in [sh.0, sp, dh.0, dp] {
        h ^= w as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: one well-mixed word from one input word.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn decide(seed: u64, flow: u64, salt: u64, event: u64, per_million: u32) -> bool {
    let h = mix(seed ^ flow.rotate_left(17) ^ salt.wrapping_mul(0x9e37_79b9) ^ event);
    (h % PER_MILLION as u64) < per_million as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> (HostId, PortId, HostId, PortId) {
        (HostId(0), 1, HostId(1), 2)
    }

    #[test]
    fn decisions_replay_from_seed() {
        let plan = FaultPlan::new(42)
            .with_frame_drop(100_000)
            .with_frame_corruption(50_000)
            .with_latency_spikes(30_000, Duration::from_millis(1));
        let run = || {
            let st = FaultState::new(plan.clone());
            let fates: Vec<_> = (0..500)
                .map(|i| {
                    let f = st.judge(flow(), 1000 + i * 37, 9180);
                    (f.drop, f.corrupt_at.clone(), f.extra_latency)
                })
                .collect();
            (fates, st.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let fates = |seed| {
            let st = FaultState::new(FaultPlan::new(seed).with_frame_drop(200_000));
            (0..200)
                .map(|_| st.judge(flow(), 9180, 9180).drop)
                .collect::<Vec<_>>()
        };
        assert_ne!(fates(1), fates(2));
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let st = FaultState::new(FaultPlan::new(7).with_frame_drop(100_000)); // 10%
        let n = 10_000;
        for _ in 0..n {
            st.judge(flow(), 100, 9180);
        }
        let dropped = st.stats().frames_dropped;
        assert!(
            (500..2_000).contains(&dropped),
            "10% of {n} single-frame messages should drop ~1000, got {dropped}"
        );
    }

    #[test]
    fn reset_trips_after_frame_budget() {
        let st = FaultState::new(FaultPlan::new(3).with_reset_after(10));
        // 10 single-frame messages pass, the 11th resets.
        for _ in 0..10 {
            assert!(!st.judge(flow(), 100, 9180).reset);
        }
        assert!(st.judge(flow(), 100, 9180).reset);
        // Other flows are unaffected.
        assert!(!st.judge((HostId(5), 1, HostId(6), 2), 100, 9180).reset);
        assert_eq!(st.stats().connection_resets, 1);
    }

    #[test]
    fn multi_frame_messages_consume_frame_budget() {
        let st = FaultState::new(FaultPlan::new(3).with_reset_after(10));
        // One 8-frame message passes; the next 8-frame message starts at
        // frame 8 < 10 and passes; the third starts at 16 >= 10: reset.
        assert!(!st.judge(flow(), 8 * 9180, 9180).reset);
        assert!(!st.judge(flow(), 8 * 9180, 9180).reset);
        assert!(st.judge(flow(), 8 * 9180, 9180).reset);
    }

    #[test]
    fn corruption_offsets_stay_in_payload() {
        let st = FaultState::new(FaultPlan::new(9).with_frame_corruption(PER_MILLION));
        for len in [1usize, 10, 9180, 9181, 40_000] {
            let fate = st.judge(flow(), len, 9180);
            assert!(!fate.corrupt_at.is_empty());
            for &off in &fate.corrupt_at {
                assert!(off < len, "offset {off} outside payload {len}");
            }
        }
    }
}
