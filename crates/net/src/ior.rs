//! Object references.
//!
//! A PARDIS object reference plays the role of a CORBA IOR. Beyond the
//! classic contents (name, interface, host, request port) it carries the
//! two pieces of information that make SPMD interaction possible:
//!
//! * **the data port of every computing thread** — "these connections
//!   become a part of object reference for this particular object and
//!   are accessible to clients wanting to connect" (§3.3), and
//! * **registered distribution templates** for distributed `in`/`inout`
//!   arguments — "the server can set the distribution of a distributed
//!   sequence which is an 'in' parameter to any of its operations before
//!   registering" (§2.2); clients use this to compute, locally, which
//!   server thread owns which elements.

use crate::fabric::{HostId, PortId};
use pardis_cdr::{CdrError, CdrReader, CdrResult, CdrWriter, Decode, Encode};

/// A distribution template as carried in object references and request
/// headers. The full ownership-map machinery lives in `pardis-core`;
/// this is the wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistSpec {
    /// Uniform blockwise distribution (the default everywhere in the
    /// paper: unset templates "default to uniform blockwise").
    Block,
    /// Proportional distribution, e.g. `Proportions(2,4,2,4)` gives
    /// thread 1 and 3 twice the elements of threads 0 and 2.
    Proportions(Vec<u32>),
}

impl DistSpec {
    /// Whether this is the default blockwise distribution.
    pub fn is_block(&self) -> bool {
        matches!(self, DistSpec::Block)
    }
}

impl Encode for DistSpec {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        match self {
            DistSpec::Block => w.put_u32(0),
            DistSpec::Proportions(p) => {
                w.put_u32(1);
                w.put_u32(p.len() as u32);
                for &x in p {
                    w.put_u32(x);
                }
            }
        }
        Ok(())
    }
}

impl Decode for DistSpec {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        match r.get_u32()? {
            0 => Ok(DistSpec::Block),
            1 => {
                let n = r.get_u32()? as usize;
                if n > r.remaining() {
                    return Err(CdrError::LengthOverflow(n as u64));
                }
                let mut p = Vec::with_capacity(n);
                for _ in 0..n {
                    p.push(r.get_u32()?);
                }
                Ok(DistSpec::Proportions(p))
            }
            other => Err(CdrError::BadDiscriminant {
                type_name: "DistSpec",
                value: other,
            }),
        }
    }
}

/// Distribution registered for one distributed argument of one
/// operation, e.g. `_diff_object_sk::diffusion_myarray = new
/// DistTempl(Proportions(2,4,2,4))` in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpArgDist {
    /// Operation name.
    pub op: String,
    /// Zero-based index of the argument within the operation.
    pub arg_index: u32,
    /// The registered template.
    pub dist: DistSpec,
}

impl Encode for OpArgDist {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        w.put_string(&self.op);
        w.put_u32(self.arg_index);
        self.dist.encode(w)
    }
}

impl Decode for OpArgDist {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        Ok(OpArgDist {
            op: r.get_string()?,
            arg_index: r.get_u32()?,
            dist: DistSpec::decode(r)?,
        })
    }
}

/// A reference to a (possibly SPMD) PARDIS object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectRef {
    /// Name in the PARDIS naming domain (chosen at registration).
    pub name: String,
    /// Interface repository id, e.g. `IDL:diff_object:1.0`.
    pub type_id: String,
    /// Host the object lives on.
    pub host: HostId,
    /// Port of the communicating thread: invocation headers always go
    /// here (both methods deliver the *invocation* centrally, §3.3).
    pub request_port: PortId,
    /// One data port per computing thread, in thread order. Length 1 for
    /// sequential objects. Present only when the object enables
    /// multi-port transfer.
    pub data_ports: Vec<PortId>,
    /// Number of computing threads of the SPMD object.
    pub nthreads: u32,
    /// Distribution templates registered before the object was
    /// registered with the naming service.
    pub distributions: Vec<OpArgDist>,
    /// Membership epoch of the server domain when this reference was
    /// published. A reference re-registered after a rank death carries a
    /// higher epoch; clients rebind only to a strictly newer epoch
    /// (epoch fencing — a stale re-resolve can never roll a binding
    /// back onto dead data ports).
    pub epoch: u64,
}

impl ObjectRef {
    /// Distribution registered for `(op, arg_index)`, defaulting to
    /// blockwise as the paper specifies.
    pub fn dist_for(&self, op: &str, arg_index: u32) -> DistSpec {
        self.distributions
            .iter()
            .find(|d| d.op == op && d.arg_index == arg_index)
            .map(|d| d.dist.clone())
            .unwrap_or(DistSpec::Block)
    }

    /// Whether the object advertises per-thread data ports (multi-port
    /// transfer available).
    pub fn supports_multiport(&self) -> bool {
        self.data_ports.len() == self.nthreads as usize && self.nthreads > 0
    }
}

impl Encode for ObjectRef {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        w.put_string(&self.name);
        w.put_string(&self.type_id);
        w.put_u32(self.host.0);
        w.put_u32(self.request_port);
        w.put_u32(self.data_ports.len() as u32);
        for &p in &self.data_ports {
            w.put_u32(p);
        }
        w.put_u32(self.nthreads);
        self.distributions.encode(w)?;
        w.put_u64(self.epoch);
        Ok(())
    }
}

impl Decode for ObjectRef {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        let name = r.get_string()?;
        let type_id = r.get_string()?;
        let host = HostId(r.get_u32()?);
        let request_port = r.get_u32()?;
        let nports = r.get_u32()? as usize;
        if nports > r.remaining() {
            return Err(CdrError::LengthOverflow(nports as u64));
        }
        let mut data_ports = Vec::with_capacity(nports);
        for _ in 0..nports {
            data_ports.push(r.get_u32()?);
        }
        let nthreads = r.get_u32()?;
        let distributions = Vec::<OpArgDist>::decode(r)?;
        let epoch = r.get_u64()?;
        Ok(ObjectRef {
            name,
            type_id,
            host,
            request_port,
            data_ports,
            nthreads,
            distributions,
            epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardis_cdr::Endian;

    fn sample_ref() -> ObjectRef {
        ObjectRef {
            name: "example".into(),
            type_id: "IDL:diff_object:1.0".into(),
            host: HostId(1),
            request_port: 5,
            data_ports: vec![6, 7, 8, 9],
            nthreads: 4,
            distributions: vec![OpArgDist {
                op: "diffusion".into(),
                arg_index: 1,
                dist: DistSpec::Proportions(vec![2, 4, 2, 4]),
            }],
            epoch: 2,
        }
    }

    #[test]
    fn objectref_roundtrip() {
        let obj = sample_ref();
        for endian in [Endian::Big, Endian::Little] {
            let mut w = CdrWriter::new(endian);
            obj.encode(&mut w).unwrap();
            let buf = w.into_bytes();
            let mut r = CdrReader::new(&buf, endian);
            assert_eq!(ObjectRef::decode(&mut r).unwrap(), obj);
        }
    }

    #[test]
    fn dist_lookup_defaults_to_block() {
        let obj = sample_ref();
        assert_eq!(
            obj.dist_for("diffusion", 1),
            DistSpec::Proportions(vec![2, 4, 2, 4])
        );
        assert_eq!(obj.dist_for("diffusion", 0), DistSpec::Block);
        assert_eq!(obj.dist_for("other_op", 1), DistSpec::Block);
    }

    #[test]
    fn multiport_support_detection() {
        let mut obj = sample_ref();
        assert!(obj.supports_multiport());
        obj.data_ports.truncate(2);
        assert!(!obj.supports_multiport());
        obj.data_ports.clear();
        assert!(!obj.supports_multiport());
    }

    #[test]
    fn distspec_roundtrip() {
        for spec in [
            DistSpec::Block,
            DistSpec::Proportions(vec![1]),
            DistSpec::Proportions(vec![2, 4, 2, 4]),
        ] {
            let bytes = pardis_cdr::traits::to_bytes(&spec).unwrap();
            let back: DistSpec = pardis_cdr::traits::from_bytes(&bytes).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn distspec_bad_tag() {
        let mut w = CdrWriter::new(Endian::native());
        w.put_u32(42);
        let buf = w.into_bytes();
        let mut r = CdrReader::new(&buf, Endian::native());
        assert!(DistSpec::decode(&mut r).is_err());
    }
}
