//! The shared, rate-limited link.
//!
//! The paper's experiments ran over one dedicated 155 Mb/s ATM link with
//! LAN Emulation. Three properties of that link shape the results and
//! are modeled here:
//!
//! 1. **Serialization** — one physical medium: bytes from concurrent
//!    senders cannot overlap. We model the medium as a mutex acquired
//!    per frame.
//! 2. **Framing** — traffic is carried in AAL5-style frames of
//!    [`LinkSpec::mtu`] payload bytes plus [`LinkSpec::per_frame_overhead`]
//!    wire overhead (cell headers, LANE encapsulation).
//! 3. **Frame-level interleaving** — when several senders are active,
//!    their frames interleave; the paper observed exactly this ("data
//!    transfer from two separate computing threads of the client did not
//!    happen sequentially, but was interleaved", §3.3). Interleaving is
//!    what lets multi-port transfer keep the single link busy.
//!
//! Senders *block* for the wire time of each frame, which reproduces
//! NexusLite's effectively-synchronous large sends (§3.1).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Static description of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Usable bandwidth in bytes/second of wire time, or `None` for an
    /// unthrottled link (unit tests).
    pub bandwidth: Option<f64>,
    /// One-way per-message latency (propagation + protocol processing).
    pub latency: Duration,
    /// Frame payload size in bytes. ATM AAL5 with LAN emulation carries
    /// up to 9180 bytes of payload per frame.
    pub mtu: usize,
    /// Wire overhead bytes charged per frame (cell headers + LANE).
    pub per_frame_overhead: usize,
}

impl LinkSpec {
    /// An unthrottled, zero-latency link for functional tests.
    pub fn unlimited() -> LinkSpec {
        LinkSpec {
            bandwidth: None,
            latency: Duration::ZERO,
            mtu: 9180,
            per_frame_overhead: 0,
        }
    }

    /// A link resembling the paper's dedicated ATM circuit: 155 Mb/s raw,
    /// of which roughly 17 MB/s is usable after SONET + cell-header
    /// overhead; 9180-byte LANE MTU; ~1 ms end-to-end message latency.
    pub fn atm_155() -> LinkSpec {
        LinkSpec {
            bandwidth: Some(17.0e6),
            latency: Duration::from_micros(900),
            mtu: 9180,
            per_frame_overhead: 432, // 5-byte header per 48-byte cell ≈ 432 B per 9180-B frame
        }
    }

    /// Scale the bandwidth (used by benches to keep wall-clock bounded
    /// while preserving ratios).
    pub fn scaled(mut self, factor: f64) -> LinkSpec {
        if let Some(b) = self.bandwidth.as_mut() {
            *b *= factor;
        }
        self
    }

    /// Wire time of a frame carrying `payload` bytes.
    fn frame_time(&self, payload: usize) -> Duration {
        match self.bandwidth {
            None => Duration::ZERO,
            Some(b) => Duration::from_secs_f64((payload + self.per_frame_overhead) as f64 / b),
        }
    }
}

impl Default for LinkSpec {
    fn default() -> LinkSpec {
        LinkSpec::unlimited()
    }
}

/// Counters accumulated by a link over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Total payload bytes carried.
    pub payload_bytes: u64,
    /// Total frames transmitted.
    pub frames: u64,
    /// Total messages transmitted.
    pub messages: u64,
}

/// A shared transmission medium between hosts.
#[derive(Debug)]
pub struct Link {
    spec: LinkSpec,
    /// The physical medium: held while a frame is on the wire.
    medium: Mutex<()>,
    payload_bytes: AtomicU64,
    frames: AtomicU64,
    messages: AtomicU64,
}

impl Link {
    /// Create a link with the given characteristics.
    pub fn new(spec: LinkSpec) -> Link {
        Link {
            spec,
            medium: Mutex::new(()),
            payload_bytes: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            messages: AtomicU64::new(0),
        }
    }

    /// The link's static description.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            payload_bytes: self.payload_bytes.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
        }
    }

    /// Transmit `len` payload bytes, blocking the calling thread for the
    /// wire time. Concurrent callers interleave at frame granularity.
    /// Returns the total time spent on the wire (excluding queueing).
    pub fn transmit(&self, len: usize) -> Duration {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.payload_bytes.fetch_add(len as u64, Ordering::Relaxed);

        if self.spec.bandwidth.is_none() {
            // Still count frames for stats.
            let nframes = len.div_ceil(self.spec.mtu).max(1) as u64;
            self.frames.fetch_add(nframes, Ordering::Relaxed);
            return Duration::ZERO;
        }

        let mut remaining = len;
        let mut wire = Duration::ZERO;
        loop {
            let chunk = remaining.min(self.spec.mtu);
            let t = self.spec.frame_time(chunk);
            {
                // Hold the medium for exactly one frame, then release so
                // other senders can slot their frames in between ours.
                let _guard = self.medium.lock();
                precise_sleep(t);
            }
            wire += t;
            self.frames.fetch_add(1, Ordering::Relaxed);
            if remaining <= self.spec.mtu {
                break;
            }
            remaining -= self.spec.mtu;
        }
        wire
    }
}

/// Sleep with sub-millisecond accuracy: OS sleep for the bulk, spin for
/// the tail. Frame times at ATM rates are ~0.5 ms, which ordinary
/// `thread::sleep` would overshoot by a large fraction.
pub(crate) fn precise_sleep(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    if d > Duration::from_micros(300) {
        std::thread::sleep(d - Duration::from_micros(200));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unlimited_link_is_instant() {
        let link = Link::new(LinkSpec::unlimited());
        let t = Instant::now();
        link.transmit(10_000_000);
        assert!(t.elapsed() < Duration::from_millis(50));
        let s = link.stats();
        assert_eq!(s.payload_bytes, 10_000_000);
        assert_eq!(s.messages, 1);
        assert!(s.frames >= 1);
    }

    #[test]
    fn rate_limit_is_respected() {
        // 10 MB/s, 100 KB message -> ~10 ms.
        let link = Link::new(LinkSpec {
            bandwidth: Some(10.0e6),
            latency: Duration::ZERO,
            mtu: 9180,
            per_frame_overhead: 0,
        });
        let t = Instant::now();
        link.transmit(100_000);
        let e = t.elapsed();
        assert!(e >= Duration::from_millis(9), "too fast: {e:?}");
        assert!(e < Duration::from_millis(40), "too slow: {e:?}");
    }

    #[test]
    fn frame_overhead_slows_transfer() {
        let fast = Link::new(LinkSpec {
            bandwidth: Some(50.0e6),
            latency: Duration::ZERO,
            mtu: 1000,
            per_frame_overhead: 0,
        });
        let slow = Link::new(LinkSpec {
            bandwidth: Some(50.0e6),
            latency: Duration::ZERO,
            mtu: 1000,
            per_frame_overhead: 1000, // 100% overhead
        });
        let t0 = Instant::now();
        fast.transmit(200_000);
        let t_fast = t0.elapsed();
        let t1 = Instant::now();
        slow.transmit(200_000);
        let t_slow = t1.elapsed();
        assert!(
            t_slow > t_fast + t_fast / 2,
            "overhead not charged: fast={t_fast:?} slow={t_slow:?}"
        );
    }

    #[test]
    fn concurrent_senders_share_the_medium() {
        // Two senders of N bytes each on a shared link should take about
        // the time of one sender of 2N bytes — not complete in parallel.
        let spec = LinkSpec {
            bandwidth: Some(20.0e6),
            latency: Duration::ZERO,
            mtu: 9180,
            per_frame_overhead: 0,
        };
        let link = Arc::new(Link::new(spec));
        let n = 400_000usize; // 20 ms each at 20 MB/s

        let t = Instant::now();
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let l = link.clone();
                std::thread::spawn(move || l.transmit(n))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let e = t.elapsed();
        // Serial time would be 40 ms; parallel-overlap would be 20 ms.
        assert!(e >= Duration::from_millis(36), "medium overlapped: {e:?}");
    }

    #[test]
    fn latency_does_not_block_the_sender() {
        // Propagation delay is paid by the receiver (see the fabric),
        // not by the transmitter: senders pipeline messages.
        let link = Link::new(LinkSpec {
            bandwidth: None,
            latency: Duration::from_millis(50),
            mtu: 9180,
            per_frame_overhead: 0,
        });
        let t = Instant::now();
        link.transmit(10);
        assert!(t.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn atm_spec_sane() {
        let s = LinkSpec::atm_155();
        assert!(s.bandwidth.unwrap() > 10.0e6);
        assert_eq!(s.mtu, 9180);
        let half = s.scaled(0.5);
        assert_eq!(half.bandwidth.unwrap(), s.bandwidth.unwrap() * 0.5);
    }
}
