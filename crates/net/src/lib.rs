//! # pardis-net — network transport for PARDIS
//!
//! The paper ran PARDIS over NexusLite on a dedicated 155 Mb/s ATM link
//! (LAN Emulation) between two SGI machines. This crate supplies the
//! equivalent substrate for a reproduction that runs in one process:
//!
//! * a [`Fabric`] of named [`Host`]s — one per simulated machine — with
//!   numbered **ports** ([`Host::open_port`]); every computing thread of
//!   an SPMD object can open its own port, which is what enables the
//!   paper's *multi-port* argument transfer (§3.3),
//! * a shared, **rate-limited [`link::Link`]** joining the hosts: traffic
//!   is chopped into ATM-style frames, concurrent senders interleave at
//!   frame granularity, and the sender blocks for the wire time of each
//!   frame — NexusLite's effectively-synchronous large sends (§3.1),
//! * [`giop`] — a GIOP-like message layer (request, reply, data-transfer
//!   fragment, locate) encoded with `pardis-cdr`,
//! * [`ior`] — interoperable-object-reference-style [`ior::ObjectRef`]s
//!   that carry the object's request port **and the data port of every
//!   computing thread** plus registered distribution templates, so a
//!   client can compute data routing locally.
//!
//! Bandwidth limiting is optional: tests run with an infinite-rate link,
//! the figure-4 runtime benchmark configures the ATM-like rate.

pub mod conn;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod giop;
pub mod ior;
pub mod link;

pub use error::{NetError, NetResult};
pub use fabric::{Fabric, Host, HostId, PortId, PortRecv};
pub use fault::{FaultPlan, FaultStats, ThreadDeath};
pub use ior::{DistSpec, ObjectRef};
pub use link::{Link, LinkSpec, LinkStats};

/// A datagram delivered to a port: source addressing plus payload.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Sending host.
    pub src_host: HostId,
    /// Port on the sending host that identifies the conversation (0 if
    /// the sender does not expect a reply).
    pub src_port: PortId,
    /// Message payload.
    pub payload: bytes::Bytes,
    /// Earliest wall-clock instant the datagram may be handed to the
    /// receiver (models one-way propagation latency without blocking
    /// the sender).
    pub deliver_at: std::time::Instant,
}
