//! Connections: a small request/reply convenience over ports.
//!
//! A [`Connection`] pairs a local port (for replies) with a remote
//! `(host, port)` destination and speaks [`crate::giop::GiopMessage`]s.
//! Clients open one connection per binding; in multi-port mode each
//! client computing thread additionally opens direct data connections to
//! the server threads' advertised ports.

use crate::fabric::{Host, HostId, PortId, PortRecv};
use crate::giop::GiopMessage;
use crate::{NetError, NetResult};
use pardis_cdr::Endian;
use std::time::Duration;

/// A bidirectional message channel from a local port to a fixed peer.
#[derive(Debug)]
pub struct Connection {
    host: Host,
    local: PortRecv,
    peer_host: HostId,
    peer_port: PortId,
}

impl Connection {
    /// Open a connection from `host` to `(peer_host, peer_port)`. The
    /// peer learns our port from the datagrams we send.
    pub fn open(host: &Host, peer_host: HostId, peer_port: PortId) -> Connection {
        Connection {
            host: host.clone(),
            local: host.open_port(),
            peer_host,
            peer_port,
        }
    }

    /// Our local (reply) port.
    pub fn local_port(&self) -> PortId {
        self.local.port()
    }

    /// Local host id.
    pub fn local_host(&self) -> HostId {
        self.host.id()
    }

    /// Destination host id.
    pub fn peer_host(&self) -> HostId {
        self.peer_host
    }

    /// Destination port.
    pub fn peer_port(&self) -> PortId {
        self.peer_port
    }

    /// Send a message to the peer; returns wire occupancy time.
    pub fn send(&self, msg: &GiopMessage, endian: Endian) -> NetResult<Duration> {
        self.host.send_from(
            self.local.port(),
            self.peer_host,
            self.peer_port,
            msg.encode(endian)?,
        )
    }

    /// Block for the next message on our local port.
    pub fn recv(&self) -> NetResult<GiopMessage> {
        let dg = self.local.recv()?;
        GiopMessage::decode(&dg.payload)
    }

    /// Receive with an optional absolute deadline; `None` blocks like
    /// [`Connection::recv`], `Some` fails with [`NetError::Timeout`]
    /// once the deadline passes.
    pub fn recv_deadline(&self, deadline: Option<std::time::Instant>) -> NetResult<GiopMessage> {
        let dg = self.local.recv_deadline(deadline)?;
        GiopMessage::decode(&dg.payload)
    }

    /// Receive with a timeout; `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> NetResult<Option<GiopMessage>> {
        match self.local.recv_timeout(timeout) {
            None => Ok(None),
            Some(dg) => GiopMessage::decode(&dg.payload).map(Some),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> NetResult<Option<GiopMessage>> {
        match self.local.try_recv() {
            None => Ok(None),
            Some(dg) => GiopMessage::decode(&dg.payload).map(Some),
        }
    }

    /// Tell the peer we are going away.
    pub fn close(&self, endian: Endian) -> NetResult<()> {
        self.send(&GiopMessage::CloseConnection, endian)?;
        Ok(())
    }
}

/// Reply to a datagram's source with a message. Servers use this to
/// answer a request at the address it came from.
pub fn reply_to(
    host: &Host,
    src_host: HostId,
    src_port: PortId,
    msg: &GiopMessage,
    endian: Endian,
) -> NetResult<Duration> {
    if src_port == 0 {
        return Err(NetError::BadMessage(
            "peer did not advertise a reply port".into(),
        ));
    }
    host.send_to(src_host, src_port, msg.encode(endian)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::giop::{ReplyHeader, ReplyStatus, RequestHeader, TransferMode};
    use crate::link::LinkSpec;
    use crate::Fabric;
    use bytes::Bytes;

    fn request(id: u64) -> GiopMessage {
        GiopMessage::Request(
            RequestHeader {
                request_id: id,
                object_name: "obj".into(),
                operation: "op".into(),
                response_expected: true,
                reply_host: HostId(0),
                reply_port: 0,
                mode: TransferMode::Centralized,
                client_threads: 1,
                client_data_ports: vec![],
                service_context: vec![],
            },
            Bytes::new(),
        )
    }

    #[test]
    fn request_reply_over_connection() {
        let fabric = Fabric::shared_link(LinkSpec::unlimited());
        let client_host = fabric.add_host("client");
        let server_host = fabric.add_host("server");
        let server_port = server_host.open_port();

        let server = {
            let server_host = server_host.clone();
            std::thread::spawn(move || {
                let dg = server_port.recv().unwrap();
                let msg = GiopMessage::decode(&dg.payload).unwrap();
                let id = match msg {
                    GiopMessage::Request(h, _) => h.request_id,
                    other => panic!("unexpected {other:?}"),
                };
                reply_to(
                    &server_host,
                    dg.src_host,
                    dg.src_port,
                    &GiopMessage::Reply(
                        ReplyHeader {
                            request_id: id,
                            status: ReplyStatus::NoException,
                        },
                        Bytes::from_static(b"result"),
                    ),
                    Endian::native(),
                )
                .unwrap();
            })
        };

        let conn = Connection::open(&client_host, server_host.id(), 1);
        conn.send(&request(77), Endian::native()).unwrap();
        match conn.recv().unwrap() {
            GiopMessage::Reply(h, body) => {
                assert_eq!(h.request_id, 77);
                assert_eq!(&body[..], b"result");
            }
            other => panic!("unexpected {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn reply_requires_source_port() {
        let fabric = Fabric::shared_link(LinkSpec::unlimited());
        let h = fabric.add_host("h");
        assert!(matches!(
            reply_to(
                &h,
                h.id(),
                0,
                &GiopMessage::CloseConnection,
                Endian::native()
            ),
            Err(NetError::BadMessage(_))
        ));
    }

    #[test]
    fn try_and_timeout_paths() {
        let fabric = Fabric::shared_link(LinkSpec::unlimited());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let pb = b.open_port();
        let conn = Connection::open(&a, b.id(), pb.port());
        assert!(conn.try_recv().unwrap().is_none());
        assert!(conn
            .recv_timeout(Duration::from_millis(5))
            .unwrap()
            .is_none());
        conn.close(Endian::native()).unwrap();
        let dg = pb.recv().unwrap();
        assert_eq!(
            GiopMessage::decode(&dg.payload).unwrap(),
            GiopMessage::CloseConnection
        );
        assert_eq!(dg.src_port, conn.local_port());
    }
}
