//! GIOP-like message layer.
//!
//! CORBA's General Inter-ORB Protocol frames every ORB-to-ORB exchange
//! as a typed message with a small magic+version header that also records
//! the sender's byte order. PARDIS messages follow the same scheme with
//! one addition: a **DataTransfer** message kind carrying a fragment of a
//! distributed argument from one computing thread to another — the unit
//! of the multi-port method, whose "transfer header" tells the receiver
//! where the fragment lands ("unmarshal them according to information
//! contained in the transfer header", §3.3).

use crate::fabric::{HostId, PortId};
use crate::{NetError, NetResult};
use bytes::Bytes;
use pardis_cdr::{CdrReader, CdrResult, CdrWriter, Decode, Encode, Endian};

/// Protocol magic, "PARD".
pub const MAGIC: [u8; 4] = *b"PARD";
/// Protocol version understood by this implementation.
pub const VERSION: u8 = 1;

/// Argument transfer method requested by a client invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMode {
    /// Arguments travel inside the request message via gather/scatter at
    /// the communicating threads (§3.2).
    Centralized,
    /// Argument data flows thread-to-thread on separate ports; the
    /// request message carries only the header and non-distributed
    /// arguments (§3.3).
    MultiPort,
}

impl Encode for TransferMode {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        w.put_u32(match self {
            TransferMode::Centralized => 0,
            TransferMode::MultiPort => 1,
        });
        Ok(())
    }
}

impl Decode for TransferMode {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        match r.get_u32()? {
            0 => Ok(TransferMode::Centralized),
            1 => Ok(TransferMode::MultiPort),
            other => Err(pardis_cdr::CdrError::BadDiscriminant {
                type_name: "TransferMode",
                value: other,
            }),
        }
    }
}

/// Header of a Request message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHeader {
    /// Client-assigned id, echoed in the reply.
    pub request_id: u64,
    /// Name of the target object in the naming domain.
    pub object_name: String,
    /// Operation to invoke.
    pub operation: String,
    /// False for `oneway` operations: no reply will be sent.
    pub response_expected: bool,
    /// Where to send the reply.
    pub reply_host: HostId,
    /// Port on `reply_host` awaiting the reply.
    pub reply_port: PortId,
    /// How distributed arguments travel.
    pub mode: TransferMode,
    /// Number of computing threads of the *client* (needed by the server
    /// in multi-port mode to know how many fragments to expect, and for
    /// reply routing of distributed out/inout arguments).
    pub client_threads: u32,
    /// Data ports of the client's computing threads (multi-port replies
    /// flow directly back to these); empty in centralized mode.
    pub client_data_ports: Vec<PortId>,
    /// CORBA-style service context: `(slot id, opaque blob)` pairs the
    /// ORB layers use to piggyback out-of-band state (e.g. the tracing
    /// span context) on a request. Unknown slots are preserved and
    /// ignored; empty for plain requests.
    pub service_context: Vec<(u32, Bytes)>,
}

impl Encode for RequestHeader {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        w.put_u64(self.request_id);
        w.put_string(&self.object_name);
        w.put_string(&self.operation);
        w.put_bool(self.response_expected);
        w.put_u32(self.reply_host.0);
        w.put_u32(self.reply_port);
        self.mode.encode(w)?;
        w.put_u32(self.client_threads);
        w.put_u32(self.client_data_ports.len() as u32);
        for &p in &self.client_data_ports {
            w.put_u32(p);
        }
        w.put_u32(self.service_context.len() as u32);
        for (id, blob) in &self.service_context {
            w.put_u32(*id);
            w.put_u32(blob.len() as u32);
            w.put_bytes(blob);
        }
        Ok(())
    }
}

impl Decode for RequestHeader {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        let request_id = r.get_u64()?;
        let object_name = r.get_string()?;
        let operation = r.get_string()?;
        let response_expected = r.get_bool()?;
        let reply_host = HostId(r.get_u32()?);
        let reply_port = r.get_u32()?;
        let mode = TransferMode::decode(r)?;
        let client_threads = r.get_u32()?;
        let n = r.get_u32()? as usize;
        if n > r.remaining() {
            return Err(pardis_cdr::CdrError::LengthOverflow(n as u64));
        }
        let mut client_data_ports = Vec::with_capacity(n);
        for _ in 0..n {
            client_data_ports.push(r.get_u32()?);
        }
        let nsc = r.get_u32()? as usize;
        if nsc > r.remaining() {
            return Err(pardis_cdr::CdrError::LengthOverflow(nsc as u64));
        }
        let mut service_context = Vec::with_capacity(nsc);
        for _ in 0..nsc {
            let id = r.get_u32()?;
            let len = r.get_u32()? as usize;
            // `take` bounds-checks against the remaining payload, so a
            // lying length becomes a typed error, not a panic.
            service_context.push((id, Bytes::copy_from_slice(r.take(len)?)));
        }
        Ok(RequestHeader {
            request_id,
            object_name,
            operation,
            response_expected,
            reply_host,
            reply_port,
            mode,
            client_threads,
            client_data_ports,
            service_context,
        })
    }
}

/// Completion status carried in a Reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyStatus {
    /// Operation completed; body holds out/inout/return values.
    NoException,
    /// The servant raised an IDL-declared exception named here.
    UserException(String),
    /// The ORB or servant failed; human-readable reason.
    SystemException(String),
    /// The server's SPMD membership changed while the request was in
    /// flight and its degradation policy refused to complete it. Carries
    /// the new membership epoch plus the dead and surviving server
    /// ranks so the client can rebind (or give up) with full knowledge.
    MembershipChange {
        /// Membership epoch after the change.
        epoch: u64,
        /// Server ranks confirmed dead, ascending.
        dead: Vec<u32>,
        /// Server ranks still alive, ascending.
        survivors: Vec<u32>,
    },
}

impl Encode for ReplyStatus {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        match self {
            ReplyStatus::NoException => w.put_u32(0),
            ReplyStatus::UserException(name) => {
                w.put_u32(1);
                w.put_string(name);
            }
            ReplyStatus::SystemException(msg) => {
                w.put_u32(2);
                w.put_string(msg);
            }
            ReplyStatus::MembershipChange {
                epoch,
                dead,
                survivors,
            } => {
                w.put_u32(3);
                w.put_u64(*epoch);
                w.put_u32(dead.len() as u32);
                for &r in dead {
                    w.put_u32(r);
                }
                w.put_u32(survivors.len() as u32);
                for &r in survivors {
                    w.put_u32(r);
                }
            }
        }
        Ok(())
    }
}

impl Decode for ReplyStatus {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        match r.get_u32()? {
            0 => Ok(ReplyStatus::NoException),
            1 => Ok(ReplyStatus::UserException(r.get_string()?)),
            2 => Ok(ReplyStatus::SystemException(r.get_string()?)),
            3 => {
                let epoch = r.get_u64()?;
                let take_ranks = |r: &mut CdrReader<'_>| -> CdrResult<Vec<u32>> {
                    let n = r.get_u32()? as usize;
                    if n > r.remaining() {
                        return Err(pardis_cdr::CdrError::LengthOverflow(n as u64));
                    }
                    (0..n).map(|_| r.get_u32()).collect()
                };
                let dead = take_ranks(r)?;
                let survivors = take_ranks(r)?;
                Ok(ReplyStatus::MembershipChange {
                    epoch,
                    dead,
                    survivors,
                })
            }
            other => Err(pardis_cdr::CdrError::BadDiscriminant {
                type_name: "ReplyStatus",
                value: other,
            }),
        }
    }
}

/// Header of a Reply message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyHeader {
    /// Echo of the request id.
    pub request_id: u64,
    /// Completion status.
    pub status: ReplyStatus,
}

impl Encode for ReplyHeader {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        w.put_u64(self.request_id);
        self.status.encode(w)
    }
}

impl Decode for ReplyHeader {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        Ok(ReplyHeader {
            request_id: r.get_u64()?,
            status: ReplyStatus::decode(r)?,
        })
    }
}

/// Header of a DataTransfer message: one fragment of one distributed
/// argument, flowing from a source computing thread to a destination
/// computing thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferHeader {
    /// Request this fragment belongs to.
    pub request_id: u64,
    /// Which distributed argument of the operation (zero-based among the
    /// distributed arguments).
    pub arg_index: u32,
    /// Sending computing thread (client thread for requests, server
    /// thread for replies).
    pub src_thread: u32,
    /// Receiving computing thread.
    pub dst_thread: u32,
    /// Element offset of this fragment within the *global* sequence.
    pub offset: u64,
    /// Number of elements in this fragment.
    pub count: u64,
    /// Global length of the sequence (lets the receiver size its local
    /// part before all fragments arrive).
    pub total_len: u64,
    /// Sender's SPMD membership epoch when the fragment was cut. A
    /// receiver whose epoch has moved on knows the fragment was sliced
    /// against a stale distribution template; the race analyzer uses
    /// the same stamp to scope transfer intervals to an epoch.
    pub epoch: u64,
}

impl Encode for TransferHeader {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        w.put_u64(self.request_id);
        w.put_u32(self.arg_index);
        w.put_u32(self.src_thread);
        w.put_u32(self.dst_thread);
        w.put_u64(self.offset);
        w.put_u64(self.count);
        w.put_u64(self.total_len);
        w.put_u64(self.epoch);
        Ok(())
    }
}

impl Decode for TransferHeader {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        Ok(TransferHeader {
            request_id: r.get_u64()?,
            arg_index: r.get_u32()?,
            src_thread: r.get_u32()?,
            dst_thread: r.get_u32()?,
            offset: r.get_u64()?,
            count: r.get_u64()?,
            total_len: r.get_u64()?,
            epoch: r.get_u64()?,
        })
    }
}

/// A complete PARDIS protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum GiopMessage {
    /// Invocation: header plus marshaled argument body.
    Request(RequestHeader, Bytes),
    /// Completion: header plus marshaled result body.
    Reply(ReplyHeader, Bytes),
    /// A distributed-argument fragment plus its raw element bytes.
    DataTransfer(TransferHeader, Bytes),
    /// Orderly connection shutdown.
    CloseConnection,
}

impl GiopMessage {
    fn kind(&self) -> u8 {
        match self {
            GiopMessage::Request(..) => 0,
            GiopMessage::Reply(..) => 1,
            GiopMessage::DataTransfer(..) => 2,
            GiopMessage::CloseConnection => 3,
        }
    }

    /// Encode the message (header in `endian`, body appended verbatim —
    /// bodies are themselves CDR streams in the same byte order).
    /// Header encoding is infallible today; the `Result` keeps the
    /// library path panic-free if a fallible header field is ever added.
    pub fn encode(&self, endian: Endian) -> NetResult<Bytes> {
        let mut w = CdrWriter::with_capacity(endian, 64);
        w.put_bytes(&MAGIC);
        w.put_u8(VERSION);
        w.put_u8(endian.flag());
        w.put_u8(self.kind());
        w.put_u8(0); // reserved
        match self {
            GiopMessage::Request(h, body) => {
                h.encode(&mut w)?;
                w.put_u32(body.len() as u32);
                w.align(8); // bodies start 8-aligned so f64 slices copy cleanly
                w.put_bytes(body);
            }
            GiopMessage::Reply(h, body) => {
                h.encode(&mut w)?;
                w.put_u32(body.len() as u32);
                w.align(8);
                w.put_bytes(body);
            }
            GiopMessage::DataTransfer(h, body) => {
                h.encode(&mut w)?;
                w.put_u32(body.len() as u32);
                w.align(8);
                w.put_bytes(body);
            }
            GiopMessage::CloseConnection => {}
        }
        Ok(w.into_shared())
    }

    /// Decode a message from the wire.
    pub fn decode(buf: &Bytes) -> NetResult<GiopMessage> {
        if buf.len() < 8 {
            return Err(NetError::BadMessage("short header".into()));
        }
        if buf[0..4] != MAGIC {
            return Err(NetError::BadMessage("bad magic".into()));
        }
        if buf[4] != VERSION {
            return Err(NetError::BadMessage(format!("bad version {}", buf[4])));
        }
        let endian = Endian::from_flag(buf[5]).map_err(NetError::from)?;
        let kind = buf[6];
        let mut r = CdrReader::at_offset(&buf[8..], endian, 8);
        let take_body = |r: &mut CdrReader<'_>| -> NetResult<Bytes> {
            let len = r.get_u32()? as usize;
            r.align(8)?;
            let start = 8 + r.position();
            if start + len > buf.len() {
                return Err(NetError::BadMessage("body truncated".into()));
            }
            Ok(buf.slice(start..start + len))
        };
        match kind {
            0 => {
                let h = RequestHeader::decode(&mut r)?;
                let body = take_body(&mut r)?;
                Ok(GiopMessage::Request(h, body))
            }
            1 => {
                let h = ReplyHeader::decode(&mut r)?;
                let body = take_body(&mut r)?;
                Ok(GiopMessage::Reply(h, body))
            }
            2 => {
                let h = TransferHeader::decode(&mut r)?;
                let body = take_body(&mut r)?;
                Ok(GiopMessage::DataTransfer(h, body))
            }
            3 => Ok(GiopMessage::CloseConnection),
            other => Err(NetError::BadMessage(format!("unknown kind {other}"))),
        }
    }

    /// The byte order the message body was encoded in.
    pub fn body_endian(buf: &Bytes) -> NetResult<Endian> {
        if buf.len() < 8 || buf[0..4] != MAGIC {
            return Err(NetError::BadMessage("short or bad header".into()));
        }
        Endian::from_flag(buf[5]).map_err(NetError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestHeader {
        RequestHeader {
            request_id: 42,
            object_name: "example".into(),
            operation: "diffusion".into(),
            response_expected: true,
            reply_host: HostId(0),
            reply_port: 11,
            mode: TransferMode::MultiPort,
            client_threads: 4,
            client_data_ports: vec![21, 22, 23, 24],
            service_context: vec![(1, Bytes::from_static(b"span-ctx")), (7, Bytes::new())],
        }
    }

    #[test]
    fn request_roundtrip_both_endians() {
        for endian in [Endian::Big, Endian::Little] {
            let msg = GiopMessage::Request(sample_request(), Bytes::from_static(b"body-bytes"));
            let wire = msg.encode(endian).unwrap();
            assert_eq!(&wire[0..4], b"PARD");
            let back = GiopMessage::decode(&wire).unwrap();
            assert_eq!(back, msg);
            assert_eq!(GiopMessage::body_endian(&wire).unwrap(), endian);
        }
    }

    #[test]
    fn reply_roundtrip() {
        for status in [
            ReplyStatus::NoException,
            ReplyStatus::UserException("overflow".into()),
            ReplyStatus::SystemException("object not found".into()),
            ReplyStatus::MembershipChange {
                epoch: 3,
                dead: vec![1, 4],
                survivors: vec![0, 2, 3],
            },
            ReplyStatus::MembershipChange {
                epoch: 1,
                dead: vec![],
                survivors: vec![],
            },
        ] {
            let msg = GiopMessage::Reply(
                ReplyHeader {
                    request_id: 7,
                    status,
                },
                Bytes::from_static(&[1, 2, 3]),
            );
            let wire = msg.encode(Endian::native()).unwrap();
            assert_eq!(GiopMessage::decode(&wire).unwrap(), msg);
        }
    }

    #[test]
    fn data_transfer_roundtrip() {
        let msg = GiopMessage::DataTransfer(
            TransferHeader {
                request_id: 9,
                arg_index: 1,
                src_thread: 2,
                dst_thread: 5,
                offset: 1024,
                count: 512,
                total_len: 4096,
                epoch: 2,
            },
            Bytes::from(vec![0u8; 4096]),
        );
        let wire = msg.encode(Endian::native()).unwrap();
        let back = GiopMessage::decode(&wire).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn close_connection_roundtrip() {
        let wire = GiopMessage::CloseConnection
            .encode(Endian::native())
            .unwrap();
        assert_eq!(
            GiopMessage::decode(&wire).unwrap(),
            GiopMessage::CloseConnection
        );
    }

    #[test]
    fn body_is_eight_aligned() {
        // The body slice must begin at an 8-aligned stream offset so that
        // f64 payloads decode without copying regardless of header size.
        let msg = GiopMessage::Request(sample_request(), Bytes::from_static(b"x"));
        let wire = msg.encode(Endian::native()).unwrap();
        // Find the body: it is the final 1 byte.
        let body_off = wire.len() - 1;
        assert_eq!(body_off % 8, 0);
    }

    #[test]
    fn garbage_rejected() {
        assert!(GiopMessage::decode(&Bytes::from_static(b"????????")).is_err());
        assert!(GiopMessage::decode(&Bytes::from_static(b"PAR")).is_err());
        let mut wire = GiopMessage::CloseConnection
            .encode(Endian::native())
            .unwrap()
            .to_vec();
        wire[4] = 99; // bad version
        assert!(GiopMessage::decode(&Bytes::from(wire)).is_err());
    }

    #[test]
    fn lying_service_context_length_rejected() {
        // A service-context entry claiming more bytes than the stream
        // holds must fail with a typed CDR error, not panic or over-read.
        let mut w = CdrWriter::new(Endian::native());
        let h = RequestHeader {
            service_context: vec![],
            ..sample_request()
        };
        h.encode(&mut w).unwrap();
        let mut bytes = w.into_bytes();
        // Rewrite the trailing service-context count (0) to 1 and
        // append an entry whose length lies about the payload.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&1u32.to_ne_bytes());
        let mut w2 = CdrWriter::new(Endian::native());
        w2.put_u32(9); // slot id
        w2.put_u32(10_000); // claimed length
        w2.put_bytes(b"xy"); // actual payload
        bytes.extend_from_slice(&w2.into_bytes());
        let mut r = CdrReader::new(&bytes, Endian::native());
        assert!(RequestHeader::decode(&mut r).is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        let msg = GiopMessage::Reply(
            ReplyHeader {
                request_id: 1,
                status: ReplyStatus::NoException,
            },
            Bytes::from(vec![7u8; 100]),
        );
        let wire = msg.encode(Endian::native()).unwrap();
        let cut = wire.slice(0..wire.len() - 10);
        assert!(GiopMessage::decode(&cut).is_err());
    }
}
