//! Error type for the network layer.

use std::fmt;

/// Result alias used throughout the crate.
pub type NetResult<T> = Result<T, NetError>;

/// Errors raised by fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination host does not exist in the fabric.
    UnknownHost(crate::HostId),
    /// The destination port is not open on the destination host.
    UnknownPort {
        host: crate::HostId,
        port: crate::PortId,
    },
    /// The port's receiver was dropped (the owning thread exited).
    PortClosed {
        host: crate::HostId,
        port: crate::PortId,
    },
    /// No link connects the two hosts.
    NoRoute {
        from: crate::HostId,
        to: crate::HostId,
    },
    /// A GIOP-level message failed to decode.
    BadMessage(String),
    /// The connection between two hosts was reset mid-stream (CORBA
    /// `COMM_FAILURE` territory; injected by a fault plan's per-flow
    /// frame budget).
    ConnectionReset {
        from: crate::HostId,
        to: crate::HostId,
    },
    /// A blocking receive exceeded its deadline (CORBA `TIMEOUT`
    /// territory).
    Timeout {
        host: crate::HostId,
        port: crate::PortId,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownHost(h) => write!(f, "unknown host {h:?}"),
            NetError::UnknownPort { host, port } => {
                write!(f, "port {port} not open on host {host:?}")
            }
            NetError::PortClosed { host, port } => {
                write!(f, "port {port} on host {host:?} is closed")
            }
            NetError::NoRoute { from, to } => {
                write!(f, "no link between hosts {from:?} and {to:?}")
            }
            NetError::BadMessage(msg) => write!(f, "malformed message: {msg}"),
            NetError::ConnectionReset { from, to } => {
                write!(f, "connection reset between hosts {from:?} and {to:?}")
            }
            NetError::Timeout { host, port } => {
                write!(
                    f,
                    "receive deadline exceeded on port {port} of host {host:?}"
                )
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<pardis_cdr::CdrError> for NetError {
    fn from(e: pardis_cdr::CdrError) -> NetError {
        NetError::BadMessage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_host_and_port() {
        let e = NetError::UnknownPort {
            host: crate::HostId(3),
            port: 17,
        };
        let s = e.to_string();
        assert!(s.contains("17"));
        assert!(s.contains('3'));
    }

    #[test]
    fn cdr_error_converts() {
        let e: NetError = pardis_cdr::CdrError::BadUtf8.into();
        assert!(matches!(e, NetError::BadMessage(_)));
    }
}
