//! Hosts, ports and routing.
//!
//! A [`Fabric`] is the network picture of a PARDIS deployment: a set of
//! named [`Host`]s (machines) joined by [`crate::Link`]s. Each host hands
//! out numbered ports; a port is owned by exactly one thread (its
//! receiver half, [`PortRecv`]) — this is how "each computing thread of
//! the SPMD object opens a network connection on a separate port" (§3.3).

use crate::fault::{FaultPlan, FaultState, FaultStats};
use crate::link::{Link, LinkSpec};
use crate::{Datagram, NetError, NetResult};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies a host within its fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// A port number on a host.
pub type PortId = u32;

struct HostEntry {
    name: String,
    ports: HashMap<PortId, Sender<Datagram>>,
    /// Ports administratively killed (fault injection): distinguishes a
    /// deliberate kill from a port that was never opened.
    killed: HashSet<PortId>,
    next_port: PortId,
}

struct FabricInner {
    hosts: RwLock<Vec<HostEntry>>,
    /// Pairwise links; the paper's testbed has exactly one entry. A
    /// missing pair means no route (except loopback, which bypasses the
    /// wire entirely).
    links: RwLock<HashMap<(HostId, HostId), Arc<Link>>>,
    /// Link used for any host pair without an explicit entry, if set.
    default_link: RwLock<Option<Arc<Link>>>,
    /// Installed fault plan, if any. `None` is the fast path: one read
    /// lock and a pointer check per send.
    faults: RwLock<Option<Arc<FaultState>>>,
}

/// A simulated internetwork of hosts.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl Fabric {
    /// A fabric where every pair of hosts shares one link of `spec` —
    /// the paper's configuration: one physical network link carrying all
    /// traffic between client and server machines.
    pub fn shared_link(spec: LinkSpec) -> Fabric {
        let f = Fabric::new();
        *f.inner.default_link.write() = Some(Arc::new(Link::new(spec)));
        f
    }

    /// An empty fabric with no routes; add links with
    /// [`Fabric::connect`].
    pub fn new() -> Fabric {
        Fabric {
            inner: Arc::new(FabricInner {
                hosts: RwLock::new(Vec::new()),
                links: RwLock::new(HashMap::new()),
                default_link: RwLock::new(None),
                faults: RwLock::new(None),
            }),
        }
    }

    /// Add a host and return a handle to it.
    pub fn add_host(&self, name: &str) -> Host {
        let mut hosts = self.inner.hosts.write();
        let id = HostId(hosts.len() as u32);
        hosts.push(HostEntry {
            name: name.to_string(),
            ports: HashMap::new(),
            killed: HashSet::new(),
            // Port 0 is reserved as "no reply expected".
            next_port: 1,
        });
        Host {
            fabric: self.clone(),
            id,
        }
    }

    /// Install a dedicated link between two hosts (both directions).
    pub fn connect(&self, a: HostId, b: HostId, spec: LinkSpec) -> Arc<Link> {
        let link = Arc::new(Link::new(spec));
        let mut links = self.inner.links.write();
        links.insert((a, b), link.clone());
        links.insert((b, a), link.clone());
        link
    }

    /// The shared default link, if this fabric was built with
    /// [`Fabric::shared_link`].
    pub fn default_link(&self) -> Option<Arc<Link>> {
        self.inner.default_link.read().clone()
    }

    /// Look up a host id by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.inner
            .hosts
            .read()
            .iter()
            .position(|h| h.name == name)
            .map(|i| HostId(i as u32))
    }

    /// Name of a host.
    pub fn host_name(&self, id: HostId) -> Option<String> {
        self.inner
            .hosts
            .read()
            .get(id.0 as usize)
            .map(|h| h.name.clone())
    }

    fn route(&self, from: HostId, to: HostId) -> NetResult<Option<Arc<Link>>> {
        if from == to {
            // Loopback: no wire.
            return Ok(None);
        }
        if let Some(l) = self.inner.links.read().get(&(from, to)) {
            return Ok(Some(l.clone()));
        }
        if let Some(l) = self.inner.default_link.read().clone() {
            return Ok(Some(l));
        }
        Err(NetError::NoRoute { from, to })
    }

    fn deliver(&self, to: HostId, port: PortId, dg: Datagram) -> NetResult<()> {
        let hosts = self.inner.hosts.read();
        let entry = hosts.get(to.0 as usize).ok_or(NetError::UnknownHost(to))?;
        if entry.killed.contains(&port) {
            if let Some(f) = self.inner.faults.read().as_ref() {
                f.count_dead_port_hit();
            }
            return Err(NetError::PortClosed { host: to, port });
        }
        let tx = entry
            .ports
            .get(&port)
            .ok_or(NetError::UnknownPort { host: to, port })?;
        tx.send(dg)
            .map_err(|_| NetError::PortClosed { host: to, port })
    }

    /// Send `payload` from `(src_host, src_port)` to `(dst_host,
    /// dst_port)`, blocking for the wire time on the route's link.
    /// Returns the time spent occupying the wire.
    pub fn send(
        &self,
        src_host: HostId,
        src_port: PortId,
        dst_host: HostId,
        dst_port: PortId,
        payload: Bytes,
    ) -> NetResult<Duration> {
        let link = self.route(src_host, dst_host)?;
        let faults = self.inner.faults.read().clone();
        if let Some(faults) = faults {
            return self.send_faulted(
                &faults, src_host, src_port, dst_host, dst_port, payload, link,
            );
        }
        let (wire, latency) = match &link {
            Some(l) => (l.transmit(payload.len()), l.spec().latency),
            None => (Duration::ZERO, Duration::ZERO),
        };
        self.deliver(
            dst_host,
            dst_port,
            Datagram {
                src_host,
                src_port,
                payload,
                // Propagation: the receiver sees the message one latency
                // after it left the wire; the sender is not blocked.
                deliver_at: Instant::now() + latency,
            },
        )?;
        Ok(wire)
    }

    /// The faulted twin of [`Fabric::send`]: asks the plan for this
    /// message's fate, then transmits/corrupts/drops accordingly.
    #[allow(clippy::too_many_arguments)]
    fn send_faulted(
        &self,
        faults: &FaultState,
        src_host: HostId,
        src_port: PortId,
        dst_host: HostId,
        dst_port: PortId,
        payload: Bytes,
        link: Option<Arc<Link>>,
    ) -> NetResult<Duration> {
        let mtu = link
            .as_ref()
            .map(|l| l.spec().mtu)
            .unwrap_or(LinkSpec::unlimited().mtu);
        let fate = faults.judge((src_host, src_port, dst_host, dst_port), payload.len(), mtu);
        if fate.reset {
            return Err(NetError::ConnectionReset {
                from: src_host,
                to: dst_host,
            });
        }
        // The wire is occupied whether or not the frames arrive.
        let (wire, latency) = match &link {
            Some(l) => (l.transmit(payload.len()), l.spec().latency),
            None => (Duration::ZERO, Duration::ZERO),
        };
        if fate.drop {
            // Silent loss: the sender believes the send succeeded.
            return Ok(wire);
        }
        let payload = if fate.corrupt_at.is_empty() {
            payload
        } else {
            let mut bytes = payload.to_vec();
            for off in fate.corrupt_at {
                bytes[off] ^= 0x80 | (1 << (off % 7));
            }
            Bytes::from(bytes)
        };
        self.deliver(
            dst_host,
            dst_port,
            Datagram {
                src_host,
                src_port,
                payload,
                deliver_at: Instant::now() + latency + fate.extra_latency,
            },
        )?;
        Ok(wire)
    }

    /// Install a fault plan: kills the plan's dead ports immediately and
    /// applies its frame/message fates to every subsequent send.
    /// Replaces any previously installed plan (and its stats).
    pub fn install_faults(&self, plan: FaultPlan) {
        for &(host, port) in plan.dead_ports() {
            self.kill_port(host, port);
        }
        *self.inner.faults.write() = Some(Arc::new(FaultState::new(plan)));
    }

    /// Remove the installed fault plan. Killed ports stay dead: a real
    /// crashed peer does not come back because monitoring stopped.
    pub fn clear_faults(&self) {
        *self.inner.faults.write() = None;
    }

    /// Counters of injected faults, if a plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.inner.faults.read().as_ref().map(|f| f.stats())
    }

    /// Scheduled permanent thread deaths of the installed fault plan
    /// (empty when no plan is installed). Every rank of a machine reads
    /// the same schedule, which is what makes rank death replay
    /// deterministically: all ranks apply it at the same serve step.
    pub fn thread_deaths(&self) -> Vec<crate::fault::ThreadDeath> {
        self.inner
            .faults
            .read()
            .as_ref()
            .map(|f| f.plan().thread_deaths().to_vec())
            .unwrap_or_default()
    }

    /// Administratively kill a port: its receiver unblocks with
    /// `PortClosed`, queued datagrams are lost, and future senders get
    /// `PortClosed` instead of `UnknownPort`.
    pub fn kill_port(&self, host: HostId, port: PortId) {
        let mut hosts = self.inner.hosts.write();
        if let Some(entry) = hosts.get_mut(host.0 as usize) {
            entry.ports.remove(&port);
            entry.killed.insert(port);
        }
    }

    /// Whether `(host, port)` is open and not killed. Multi-port
    /// senders probe this before committing to a transfer plan.
    pub fn port_alive(&self, host: HostId, port: PortId) -> bool {
        let hosts = self.inner.hosts.read();
        hosts
            .get(host.0 as usize)
            .map(|e| e.ports.contains_key(&port) && !e.killed.contains(&port))
            .unwrap_or(false)
    }
}

impl Default for Fabric {
    fn default() -> Fabric {
        Fabric::new()
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let hosts = self.inner.hosts.read();
        f.debug_struct("Fabric")
            .field("hosts", &hosts.iter().map(|h| &h.name).collect::<Vec<_>>())
            .finish()
    }
}

/// A handle on one host of a fabric. Cloneable; every computing thread of
/// a machine holds one.
#[derive(Clone, Debug)]
pub struct Host {
    fabric: Fabric,
    id: HostId,
}

impl Host {
    /// This host's id.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// This host's name. A `Host` can only be minted by
    /// [`Fabric::add_host`], so the entry always exists; the fallback is
    /// for defensive completeness rather than a reachable path.
    pub fn name(&self) -> String {
        self.fabric
            .host_name(self.id)
            .unwrap_or_else(|| format!("host-{}", self.id.0))
    }

    /// The fabric this host belongs to.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Open a fresh port and return its receiving half.
    pub fn open_port(&self) -> PortRecv {
        let (tx, rx) = unbounded();
        let mut hosts = self.fabric.inner.hosts.write();
        let entry = &mut hosts[self.id.0 as usize];
        let port = entry.next_port;
        entry.next_port += 1;
        entry.ports.insert(port, tx);
        PortRecv {
            host: self.id,
            port,
            rx,
        }
    }

    /// Close a port (drops the sender side; queued datagrams are lost).
    pub fn close_port(&self, port: PortId) {
        let mut hosts = self.fabric.inner.hosts.write();
        if let Some(entry) = hosts.get_mut(self.id.0 as usize) {
            entry.ports.remove(&port);
        }
    }

    /// Send from an anonymous source port.
    pub fn send_to(
        &self,
        dst_host: HostId,
        dst_port: PortId,
        payload: Bytes,
    ) -> NetResult<Duration> {
        self.fabric.send(self.id, 0, dst_host, dst_port, payload)
    }

    /// Send naming a source port so the peer can reply.
    pub fn send_from(
        &self,
        src_port: PortId,
        dst_host: HostId,
        dst_port: PortId,
        payload: Bytes,
    ) -> NetResult<Duration> {
        self.fabric
            .send(self.id, src_port, dst_host, dst_port, payload)
    }
}

/// The receiving half of a port; owned by one thread.
#[derive(Debug)]
pub struct PortRecv {
    host: HostId,
    port: PortId,
    rx: Receiver<Datagram>,
}

impl PortRecv {
    /// The host this port lives on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The port number (advertise this in object references).
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Block until a datagram arrives (and its propagation latency has
    /// elapsed).
    pub fn recv(&self) -> NetResult<Datagram> {
        let dg = self.rx.recv().map_err(|_| NetError::PortClosed {
            host: self.host,
            port: self.port,
        })?;
        Self::await_delivery(&dg);
        Ok(dg)
    }

    /// Non-blocking receive. A datagram still in flight (latency not yet
    /// elapsed) is waited for — it has arrived for queueing purposes.
    pub fn try_recv(&self) -> Option<Datagram> {
        let dg = self.rx.try_recv().ok()?;
        Self::await_delivery(&dg);
        Some(dg)
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Datagram> {
        let dg = self.rx.recv_timeout(timeout).ok()?;
        Self::await_delivery(&dg);
        Some(dg)
    }

    /// Receive with an optional absolute deadline. `None` blocks
    /// indefinitely (identical to [`PortRecv::recv`]); `Some` returns
    /// [`NetError::Timeout`] once the deadline passes.
    pub fn recv_deadline(&self, deadline: Option<Instant>) -> NetResult<Datagram> {
        let Some(deadline) = deadline else {
            return self.recv();
        };
        let timeout = deadline.saturating_duration_since(Instant::now());
        match self.rx.recv_timeout(timeout) {
            Ok(dg) => {
                Self::await_delivery(&dg);
                Ok(dg)
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(NetError::Timeout {
                host: self.host,
                port: self.port,
            }),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(NetError::PortClosed {
                host: self.host,
                port: self.port,
            }),
        }
    }

    fn await_delivery(dg: &Datagram) {
        let now = Instant::now();
        if dg.deliver_at > now {
            crate::link::precise_sleep(dg.deliver_at - now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_needs_no_link() {
        let fabric = Fabric::new(); // no links at all
        let h = fabric.add_host("solo");
        let p = h.open_port();
        h.send_to(h.id(), p.port(), Bytes::from_static(b"self"))
            .unwrap();
        assert_eq!(&p.recv().unwrap().payload[..], b"self");
    }

    #[test]
    fn cross_host_requires_route() {
        let fabric = Fabric::new();
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let p = b.open_port();
        assert!(matches!(
            a.send_to(b.id(), p.port(), Bytes::new()),
            Err(NetError::NoRoute { .. })
        ));
        fabric.connect(a.id(), b.id(), LinkSpec::unlimited());
        a.send_to(b.id(), p.port(), Bytes::from_static(b"hi"))
            .unwrap();
        assert_eq!(&p.recv().unwrap().payload[..], b"hi");
    }

    #[test]
    fn shared_link_routes_everywhere() {
        let fabric = Fabric::shared_link(LinkSpec::unlimited());
        let a = fabric.add_host("onyx");
        let b = fabric.add_host("challenge");
        let p = b.open_port();
        a.send_to(b.id(), p.port(), Bytes::from_static(b"req"))
            .unwrap();
        let dg = p.recv().unwrap();
        assert_eq!(dg.src_host, a.id());
        assert_eq!(dg.src_port, 0);
    }

    #[test]
    fn source_port_travels_with_datagram() {
        let fabric = Fabric::shared_link(LinkSpec::unlimited());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let pa = a.open_port();
        let pb = b.open_port();
        a.send_from(pa.port(), b.id(), pb.port(), Bytes::from_static(b"q"))
            .unwrap();
        let dg = pb.recv().unwrap();
        assert_eq!(dg.src_port, pa.port());
        // Reply path using the advertised source.
        b.send_to(dg.src_host, dg.src_port, Bytes::from_static(b"r"))
            .unwrap();
        assert_eq!(&pa.recv().unwrap().payload[..], b"r");
    }

    #[test]
    fn unknown_port_detected() {
        let fabric = Fabric::shared_link(LinkSpec::unlimited());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        assert!(matches!(
            a.send_to(b.id(), 999, Bytes::new()),
            Err(NetError::UnknownPort { .. })
        ));
    }

    #[test]
    fn ports_are_unique_and_nonzero() {
        let fabric = Fabric::new();
        let h = fabric.add_host("h");
        let p1 = h.open_port();
        let p2 = h.open_port();
        assert_ne!(p1.port(), p2.port());
        assert_ne!(p1.port(), 0);
    }

    #[test]
    fn host_lookup_by_name() {
        let fabric = Fabric::new();
        let a = fabric.add_host("onyx");
        assert_eq!(fabric.host_by_name("onyx"), Some(a.id()));
        assert_eq!(fabric.host_by_name("nope"), None);
        assert_eq!(fabric.host_name(a.id()).unwrap(), "onyx");
    }

    #[test]
    fn closed_port_reports() {
        let fabric = Fabric::shared_link(LinkSpec::unlimited());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let p = b.open_port();
        let port = p.port();
        drop(p);
        // Sender still finds the entry but the channel is closed.
        assert!(matches!(
            a.send_to(b.id(), port, Bytes::new()),
            Err(NetError::PortClosed { .. })
        ));
    }

    #[test]
    fn killed_port_unblocks_receiver_and_refuses_senders() {
        let fabric = Fabric::shared_link(LinkSpec::unlimited());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let p = b.open_port();
        let port = p.port();
        assert!(fabric.port_alive(b.id(), port));

        let waiter = std::thread::spawn(move || p.recv());
        std::thread::sleep(Duration::from_millis(10));
        fabric.kill_port(b.id(), port);
        assert!(matches!(
            waiter.join().unwrap(),
            Err(NetError::PortClosed { .. })
        ));
        assert!(!fabric.port_alive(b.id(), port));
        assert!(matches!(
            a.send_to(b.id(), port, Bytes::new()),
            Err(NetError::PortClosed { .. })
        ));
    }

    #[test]
    fn installed_plan_drops_deterministically() {
        let run = |seed: u64| {
            let fabric = Fabric::shared_link(LinkSpec::unlimited());
            let a = fabric.add_host("a");
            let b = fabric.add_host("b");
            let p = b.open_port();
            fabric.install_faults(crate::FaultPlan::new(seed).with_frame_drop(200_000));
            let mut delivered = Vec::new();
            for i in 0..200u32 {
                a.send_from(7, b.id(), p.port(), Bytes::from(vec![i as u8]))
                    .unwrap();
                if let Some(dg) = p.recv_timeout(Duration::from_millis(20)) {
                    delivered.push(dg.payload[0]);
                }
            }
            (delivered, fabric.fault_stats().unwrap())
        };
        let (d1, s1) = run(99);
        let (d2, s2) = run(99);
        assert_eq!(d1, d2, "same seed must replay the same losses");
        assert_eq!(s1, s2);
        assert!(s1.messages_dropped > 0, "20% drop over 200 sends");
        assert!(d1.len() as u64 + s1.messages_dropped == 200);
        let (d3, _) = run(100);
        assert_ne!(d1, d3, "different seed, different losses");
    }

    #[test]
    fn reset_budget_fails_later_sends() {
        let fabric = Fabric::shared_link(LinkSpec::unlimited());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let p = b.open_port();
        fabric.install_faults(crate::FaultPlan::new(5).with_reset_after(3));
        for _ in 0..3 {
            a.send_from(9, b.id(), p.port(), Bytes::from_static(b"x"))
                .unwrap();
        }
        assert!(matches!(
            a.send_from(9, b.id(), p.port(), Bytes::from_static(b"x")),
            Err(NetError::ConnectionReset { .. })
        ));
        // A different flow (other source port) still works.
        a.send_from(10, b.id(), p.port(), Bytes::from_static(b"y"))
            .unwrap();
        assert_eq!(fabric.fault_stats().unwrap().connection_resets, 1);
    }

    #[test]
    fn corruption_alters_payload_in_place() {
        let fabric = Fabric::shared_link(LinkSpec::unlimited());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let p = b.open_port();
        fabric.install_faults(
            crate::FaultPlan::new(11).with_frame_corruption(crate::fault::PER_MILLION),
        );
        let sent = vec![0u8; 64];
        a.send_from(3, b.id(), p.port(), Bytes::from(sent.clone()))
            .unwrap();
        let got = p.recv().unwrap().payload;
        assert_eq!(got.len(), sent.len());
        assert_ne!(&got[..], &sent[..], "a byte must have been flipped");
        assert_eq!(fabric.fault_stats().unwrap().messages_corrupted, 1);
    }

    #[test]
    fn clear_faults_restores_clean_path() {
        let fabric = Fabric::shared_link(LinkSpec::unlimited());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let p = b.open_port();
        fabric.install_faults(crate::FaultPlan::new(1).with_frame_drop(crate::fault::PER_MILLION));
        a.send_to(b.id(), p.port(), Bytes::from_static(b"gone"))
            .unwrap();
        assert!(p.recv_timeout(Duration::from_millis(10)).is_none());
        fabric.clear_faults();
        assert!(fabric.fault_stats().is_none());
        a.send_to(b.id(), p.port(), Bytes::from_static(b"kept"))
            .unwrap();
        assert_eq!(&p.recv().unwrap().payload[..], b"kept");
    }

    #[test]
    fn try_and_timeout_receives() {
        let fabric = Fabric::new();
        let h = fabric.add_host("h");
        let p = h.open_port();
        assert!(p.try_recv().is_none());
        assert!(p.recv_timeout(Duration::from_millis(5)).is_none());
        h.send_to(h.id(), p.port(), Bytes::from_static(b"x"))
            .unwrap();
        assert!(p.recv_timeout(Duration::from_millis(100)).is_some());
    }
}
