//! The *generic run-time system interface* of PARDIS §2.3.
//!
//! The paper: "A generic run-time system interface has therefore been
//! built into PARDIS libraries and may also be used by the
//! compiler-generated stubs. To date only one run-time system interface
//! has been specified; it encompasses the functionality of
//! message-passing libraries". [`RtsComm`] is that message-passing
//! interface; [`crate::Endpoint`] is its in-process implementation.
//! Alternative implementations (e.g. a real MPI binding, or the one-sided
//! interface the paper leaves to future work) would implement this trait.

use crate::error::RtsResult;
use crate::reduce::ReduceOp;
use crate::Tag;
use bytes::Bytes;

/// Message-passing run-time system interface used by the ORB and by
/// compiler-generated stubs.
pub trait RtsComm {
    /// Rank of the calling computing thread.
    fn rank(&self) -> usize;
    /// Number of computing threads in the parallel program.
    fn size(&self) -> usize;
    /// Point-to-point send.
    fn send(&self, to: usize, tag: Tag, payload: Bytes) -> RtsResult<()>;
    /// Point-to-point receive with `(source, tag)` matching.
    fn recv(&self, from: usize, tag: Tag) -> RtsResult<Bytes>;
    /// Collective barrier.
    fn barrier(&self);
    /// Collective broadcast from `root`.
    fn broadcast(&self, root: usize, data: Option<Bytes>) -> RtsResult<Bytes>;
    /// Collective gather of byte chunks at `root`.
    fn gather_bytes(&self, root: usize, bytes: Bytes) -> RtsResult<Option<Vec<Bytes>>>;
    /// Collective variable scatter of byte chunks from `root`.
    fn scatterv_bytes(&self, root: usize, chunks: Option<Vec<Bytes>>) -> RtsResult<Bytes>;
    /// Collective element-wise reduction; result on all ranks.
    fn allreduce_f64(&self, local: &[f64], op: ReduceOp) -> RtsResult<Vec<f64>>;
    /// Collective all-gather of a small integer.
    fn allgather_u64(&self, value: u64) -> RtsResult<Vec<u64>>;
    /// Collective personalized exchange.
    fn alltoallv_bytes(&self, outgoing: Vec<Bytes>) -> RtsResult<Vec<Bytes>>;
}

impl RtsComm for crate::Endpoint {
    fn rank(&self) -> usize {
        crate::Endpoint::rank(self)
    }
    fn size(&self) -> usize {
        crate::Endpoint::size(self)
    }
    fn send(&self, to: usize, tag: Tag, payload: Bytes) -> RtsResult<()> {
        crate::Endpoint::send(self, to, tag, payload)
    }
    fn recv(&self, from: usize, tag: Tag) -> RtsResult<Bytes> {
        crate::Endpoint::recv(self, from, tag)
    }
    fn barrier(&self) {
        crate::Endpoint::barrier(self)
    }
    fn broadcast(&self, root: usize, data: Option<Bytes>) -> RtsResult<Bytes> {
        crate::Endpoint::broadcast(self, root, data)
    }
    fn gather_bytes(&self, root: usize, bytes: Bytes) -> RtsResult<Option<Vec<Bytes>>> {
        crate::Endpoint::gather_bytes(self, root, bytes)
    }
    fn scatterv_bytes(&self, root: usize, chunks: Option<Vec<Bytes>>) -> RtsResult<Bytes> {
        crate::Endpoint::scatterv_bytes(self, root, chunks)
    }
    fn allreduce_f64(&self, local: &[f64], op: ReduceOp) -> RtsResult<Vec<f64>> {
        crate::Endpoint::allreduce_f64(self, local, op)
    }
    fn allgather_u64(&self, value: u64) -> RtsResult<Vec<u64>> {
        crate::Endpoint::allgather_u64(self, value)
    }
    fn alltoallv_bytes(&self, outgoing: Vec<Bytes>) -> RtsResult<Vec<Bytes>> {
        crate::Endpoint::alltoallv_bytes(self, outgoing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    /// Exercise the trait object path: the ORB holds `&dyn RtsComm`.
    fn use_dyn(rts: &dyn RtsComm) -> usize {
        rts.rank() + rts.size()
    }

    #[test]
    fn endpoint_is_object_safe_rtscomm() {
        Domain::run(3, |ep| {
            assert_eq!(use_dyn(&ep), ep.rank() + 3);
            let sum = rts_sum(&ep, ep.rank() as f64);
            assert_eq!(sum, 3.0);
        });
    }

    /// Generic over the trait, as compiler-generated stubs are.
    fn rts_sum<R: RtsComm>(rts: &R, v: f64) -> f64 {
        rts.allreduce_f64(&[v], ReduceOp::Sum).unwrap()[0]
    }
}
