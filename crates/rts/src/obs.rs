//! Observer hooks for the `obs` feature.
//!
//! The RTS never depends on the observability crate — the dependency
//! points the other way. Instead, the ORB layer installs a process-wide
//! [`RtsObserver`] here, and the collectives call the `notify_*`
//! helpers, which no-op (one relaxed atomic load via `OnceLock`) until
//! an observer is installed.
//!
//! Both callbacks fire on the rank's own thread, so an observer may
//! use thread-local state keyed by rank.

use std::sync::OnceLock;

/// Callbacks the RTS fires on observability-relevant events.
pub trait RtsObserver: Send + Sync {
    /// A collective completed on `rank` after `wait_ns` wall-clock
    /// nanoseconds (including any blocking on peers).
    fn collective_complete(&self, name: &'static str, rank: usize, wait_ns: u64) {
        let _ = (name, rank, wait_ns);
    }

    /// `rank` observed a membership-epoch transition to `epoch` (each
    /// live rank observes each transition exactly once, during its
    /// next clock sync).
    fn epoch_changed(&self, rank: usize, epoch: u64) {
        let _ = (rank, epoch);
    }
}

static OBSERVER: OnceLock<Box<dyn RtsObserver>> = OnceLock::new();

/// Install the process-wide observer. The first installation wins;
/// later calls are ignored (observers are expected to be installed
/// once, before any domain runs).
pub fn set_observer(observer: Box<dyn RtsObserver>) {
    let _ = OBSERVER.set(observer);
}

/// Notify the observer (if any) that a collective completed.
pub fn notify_collective(name: &'static str, rank: usize, wait_ns: u64) {
    if let Some(o) = OBSERVER.get() {
        o.collective_complete(name, rank, wait_ns);
    }
}

/// Notify the observer (if any) of a membership-epoch transition.
pub fn notify_epoch(rank: usize, epoch: u64) {
    if let Some(o) = OBSERVER.get() {
        o.epoch_changed(rank, epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEEN: AtomicU64 = AtomicU64::new(0);

    struct Counting;
    impl RtsObserver for Counting {
        fn collective_complete(&self, _name: &'static str, _rank: usize, _wait_ns: u64) {
            SEEN.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn notifications_reach_the_installed_observer() {
        notify_collective("barrier", 0, 1); // pre-install: no-op
        set_observer(Box::new(Counting));
        set_observer(Box::new(Counting)); // second install ignored
        let before = SEEN.load(Ordering::Relaxed);
        notify_collective("barrier", 0, 1);
        notify_epoch(0, 1); // default impl: no-op
        assert_eq!(SEEN.load(Ordering::Relaxed), before + 1);
    }
}
