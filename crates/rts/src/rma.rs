//! One-sided (RMA) run-time system interface.
//!
//! The paper commits to this as future work in two places: "In the
//! future PARDIS will provide an alternative run-time system interface
//! capturing the functionality of the more flexible one-sided run-time
//! systems" (§2.3), motivated by the fact that the message-passing
//! mapping forces SPMD-style collective calls on sequence methods
//! because it "cannot handle asynchronous access to an arbitrary
//! context" (§2.2).
//!
//! This module supplies that interface: a [`Window`] is created
//! collectively over each rank's local buffer, after which **any** rank
//! may [`Window::get`]/[`Window::put`]/[`Window::accumulate`] against
//! any other rank's exposed memory *without the target participating* —
//! the global-pointer functionality of systems like Nexus or ABC++.
//! [`Window::fence`] provides the usual epoch-style synchronization.
//!
//! With a window exposed, a distributed sequence supports genuinely
//! one-sided element access — see
//! `DSequence::expose` in `pardis-core`, which builds on this.

use crate::error::{RtsError, RtsResult};
use crate::Endpoint;
use parking_lot::RwLock;
use std::sync::Arc;

/// Feed this acquisition to the lock-order graph (`analyze` feature);
/// compiles to nothing otherwise. Bind the result so the tracked
/// window covers the guard's lifetime: `let _t = track_lock("...");`.
#[cfg(feature = "analyze")]
fn track_lock(class: &'static str) -> crate::lockgraph::LockToken {
    crate::lockgraph::track(class)
}

#[cfg(not(feature = "analyze"))]
fn track_lock(_class: &'static str) {}

/// Shared state of one exposure epoch: every rank's buffer, reachable
/// from any rank.
#[derive(Debug)]
struct WindowInner {
    parts: Vec<RwLock<Vec<f64>>>,
}

/// Process-global segment registry used only during collective window
/// creation (published by rank 0, taken by peers, retired after the
/// install barrier).
fn registry() -> &'static parking_lot::Mutex<std::collections::HashMap<u64, Arc<WindowInner>>> {
    static REG: std::sync::OnceLock<
        parking_lot::Mutex<std::collections::HashMap<u64, Arc<WindowInner>>>,
    > = std::sync::OnceLock::new();
    REG.get_or_init(|| parking_lot::Mutex::new(std::collections::HashMap::new()))
}

fn registry_publish(inner: Arc<WindowInner>) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    let _t = track_lock("rma::registry");
    registry().lock().insert(id, inner);
    id
}

fn registry_take(id: u64) -> RtsResult<Arc<WindowInner>> {
    let _t = track_lock("rma::registry");
    registry()
        .lock()
        .get(&id)
        .cloned()
        .ok_or_else(|| RtsError::Internal("window id not published before broadcast".into()))
}

fn registry_retire(inner: &Arc<WindowInner>) {
    let _t = track_lock("rma::registry");
    registry().lock().retain(|_, v| !Arc::ptr_eq(v, inner));
}

/// A collectively created one-sided access window over per-rank `f64`
/// buffers.
///
/// Cloning the handle is cheap; all clones address the same exposed
/// memory.
#[derive(Debug, Clone)]
pub struct Window {
    inner: Arc<WindowInner>,
    rank: usize,
    /// The registry id the window was published under at creation —
    /// identical on every rank, which makes it a collective identity
    /// for the exposure epoch (the race analyzer keys its access log
    /// on it).
    id: u64,
}

impl Window {
    /// Collectively create a window, each rank contributing (moving in)
    /// its local buffer. All ranks receive a handle onto the same
    /// exposed memory.
    pub fn create(rts: &Endpoint, local: Vec<f64>) -> RtsResult<Window> {
        // Rank 0 allocates the shared structure and publishes it in a
        // process-global segment registry under a fresh id — the way a
        // shared-memory one-sided runtime registers its segments. Peers
        // pick it up by id; after the install barrier rank 0 retires
        // the registry entry, so the window's lifetime is carried by
        // the handles alone.
        let (inner, id): (Arc<WindowInner>, u64) = if rts.rank() == 0 {
            let inner = Arc::new(WindowInner {
                parts: (0..rts.size()).map(|_| RwLock::new(Vec::new())).collect(),
            });
            let id = registry_publish(inner.clone());
            rts.broadcast(0, Some(bytes::Bytes::copy_from_slice(&id.to_le_bytes())))?;
            (inner, id)
        } else {
            let b = rts.broadcast(0, None)?;
            let mut a = [0u8; 8];
            a.copy_from_slice(&b[..8]);
            let id = u64::from_le_bytes(a);
            (registry_take(id)?, id)
        };
        {
            let _t = track_lock("rma::window_part");
            *inner.parts[rts.rank()].write() = local;
        }
        // Everyone's buffer must be installed before any one-sided
        // access begins.
        rts.barrier();
        if rts.rank() == 0 {
            registry_retire(&inner);
        }
        Ok(Window {
            inner,
            rank: rts.rank(),
            id,
        })
    }

    /// The window's collective identity: identical on every rank of the
    /// exposure epoch.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of ranks exposing memory.
    pub fn nranks(&self) -> usize {
        self.inner.parts.len()
    }

    /// This handle's own rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of elements rank `target` exposes.
    pub fn len_of(&self, target: usize) -> RtsResult<usize> {
        self.check(target, 0, 0)?;
        let _t = track_lock("rma::window_part");
        Ok(self.inner.parts[target].read().len())
    }

    fn check(&self, target: usize, offset: usize, len: usize) -> RtsResult<()> {
        if target >= self.nranks() {
            return Err(RtsError::BadRank {
                rank: target,
                size: self.nranks(),
            });
        }
        let _t = track_lock("rma::window_part");
        let have = self.inner.parts[target].read().len();
        if offset + len > have {
            return Err(RtsError::LengthMismatch {
                expected: have,
                got: offset + len,
            });
        }
        Ok(())
    }

    /// One-sided read of `len` elements at `offset` in `target`'s
    /// exposed buffer. The target does not participate.
    pub fn get(&self, target: usize, offset: usize, len: usize) -> RtsResult<Vec<f64>> {
        self.check(target, offset, len)?;
        let _t = track_lock("rma::window_part");
        let part = self.inner.parts[target].read();
        Ok(part[offset..offset + len].to_vec())
    }

    /// One-sided read of a single element.
    pub fn get_one(&self, target: usize, offset: usize) -> RtsResult<f64> {
        Ok(self.get(target, offset, 1)?[0])
    }

    /// One-sided write of `data` at `offset` in `target`'s exposed
    /// buffer.
    pub fn put(&self, target: usize, offset: usize, data: &[f64]) -> RtsResult<()> {
        self.check(target, offset, data.len())?;
        let _t = track_lock("rma::window_part");
        let mut part = self.inner.parts[target].write();
        part[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// One-sided atomic-per-call accumulate (`+=`) of `data` into
    /// `target`'s buffer — MPI's `MPI_Accumulate` with `MPI_SUM`.
    pub fn accumulate(&self, target: usize, offset: usize, data: &[f64]) -> RtsResult<()> {
        self.check(target, offset, data.len())?;
        let _t = track_lock("rma::window_part");
        let mut part = self.inner.parts[target].write();
        for (dst, &x) in part[offset..offset + data.len()].iter_mut().zip(data) {
            *dst += x;
        }
        Ok(())
    }

    /// Epoch boundary: all ranks call; every one-sided operation issued
    /// before the fence is complete and visible after it.
    pub fn fence(&self, rts: &Endpoint) {
        rts.barrier();
    }

    /// Collectively tear the window down, each rank recovering its
    /// (possibly remotely mutated) local buffer.
    pub fn free(self, rts: &Endpoint) -> Vec<f64> {
        rts.barrier();
        let _t = track_lock("rma::window_part");
        std::mem::take(&mut *self.inner.parts[self.rank].write())
    }

    /// Snapshot this rank's exposed buffer.
    pub fn local(&self) -> Vec<f64> {
        let _t = track_lock("rma::window_part");
        self.inner.parts[self.rank].read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    #[test]
    fn one_sided_get_without_target_participation() {
        Domain::run(4, |ep| {
            let local = vec![ep.rank() as f64 * 10.0; 4];
            let win = Window::create(&ep, local).unwrap();
            // Every rank reads rank 2's memory; rank 2 does nothing
            // special.
            let v = win.get(2, 1, 2).unwrap();
            assert_eq!(v, vec![20.0, 20.0]);
            assert_eq!(win.get_one(3, 0).unwrap(), 30.0);
            win.fence(&ep);
        });
    }

    #[test]
    fn put_is_visible_after_fence() {
        Domain::run(3, |ep| {
            let win = Window::create(&ep, vec![0.0; 3]).unwrap();
            // Rank r writes r+1 into slot r of every peer.
            for target in 0..win.nranks() {
                win.put(target, ep.rank(), &[(ep.rank() + 1) as f64])
                    .unwrap();
            }
            win.fence(&ep);
            assert_eq!(win.local(), vec![1.0, 2.0, 3.0]);
        });
    }

    #[test]
    fn accumulate_sums_contributions() {
        Domain::run(4, |ep| {
            let win = Window::create(&ep, vec![0.0; 1]).unwrap();
            // Everyone accumulates 1.0 into rank 0.
            win.accumulate(0, 0, &[1.0]).unwrap();
            win.fence(&ep);
            if ep.rank() == 0 {
                assert_eq!(win.local(), vec![4.0]);
            }
        });
    }

    #[test]
    fn bounds_are_enforced() {
        Domain::run(2, |ep| {
            let win = Window::create(&ep, vec![0.0; 4]).unwrap();
            assert!(matches!(
                win.get(5, 0, 1),
                Err(RtsError::BadRank { rank: 5, .. })
            ));
            assert!(matches!(
                win.get(1, 3, 2),
                Err(RtsError::LengthMismatch { .. })
            ));
            assert!(win.put(1, 4, &[1.0]).is_err());
            win.fence(&ep);
        });
    }

    #[test]
    fn uneven_exposures() {
        Domain::run(3, |ep| {
            let win = Window::create(&ep, vec![1.0; ep.rank() + 1]).unwrap();
            assert_eq!(win.len_of(0).unwrap(), 1);
            assert_eq!(win.len_of(2).unwrap(), 3);
            win.fence(&ep);
        });
    }

    #[test]
    fn free_returns_mutated_buffer() {
        let results = Domain::run(2, |ep| {
            let win = Window::create(&ep, vec![0.0; 2]).unwrap();
            if ep.rank() == 1 {
                win.put(0, 0, &[7.0, 8.0]).unwrap();
            }
            win.fence(&ep);
            win.free(&ep)
        });
        assert_eq!(results[0], vec![7.0, 8.0]);
        assert_eq!(results[1], vec![0.0, 0.0]);
    }

    #[test]
    fn windows_are_reusable_handles() {
        Domain::run(2, |ep| {
            let win = Window::create(&ep, vec![ep.rank() as f64; 2]).unwrap();
            let win2 = win.clone();
            assert_eq!(win2.get_one(1, 0).unwrap(), 1.0);
            win.fence(&ep);
        });
    }
}
