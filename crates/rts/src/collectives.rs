//! Collective operations over a domain.
//!
//! All collectives must be called by **every** rank of the domain
//! (SPMD-style), mirroring both MPI semantics and the paper's assumption
//! that "most invocations of the methods on the sequence will be
//! SPMD-style, that is they will be called collectively by all the
//! computing threads" (§2.2).
//!
//! Algorithms are *linear through a root*: gather is `size-1` receives at
//! the root, scatter is `size-1` sends from the root. This matches the
//! era's MPICH on small shared-memory machines and is deliberately kept
//! so that the centralized transfer method exhibits the gather/scatter
//! scaling the paper measures in Table 1 (cost grows with the number of
//! computing threads).

use crate::endpoint::Endpoint;
use crate::error::{RtsError, RtsResult};
use crate::reduce::ReduceOp;
use crate::Tag;
use bytes::Bytes;
// The byte-view reinterpretation and its inverse live in pardis-cdr
// (one documented unsafe block for the whole workspace); intra-machine
// transfers are native order, so no translation is applied here.
use pardis_cdr::byteswap::{bytes_to_f64, f64_slice_as_bytes as pardis_bytes_of};

/// Internal tags for the collective algorithms (above
/// [`crate::RESERVED_TAG_BASE`]). Distinct tags per collective kind keep
/// a mis-nested program failing loudly instead of cross-matching.
mod tags {
    use crate::{Tag, RESERVED_TAG_BASE};
    pub const BCAST: Tag = RESERVED_TAG_BASE + 1;
    pub const GATHER: Tag = RESERVED_TAG_BASE + 2;
    pub const SCATTER: Tag = RESERVED_TAG_BASE + 3;
    pub const ALLGATHER: Tag = RESERVED_TAG_BASE + 4;
    pub const REDUCE: Tag = RESERVED_TAG_BASE + 5;
    pub const ALLTOALL: Tag = RESERVED_TAG_BASE + 6;
    /// Survivor-barrier token (live rank -> rank 0).
    pub const MBAR_IN: Tag = RESERVED_TAG_BASE + 7;
    /// Survivor-barrier release (rank 0 -> live ranks).
    pub const MBAR_OUT: Tag = RESERVED_TAG_BASE + 8;
}

/// Whether `rank` is alive under `dead` (the membership bitmask).
/// Ranks beyond the mask width are untracked and treated as alive.
#[inline]
fn live(dead: u64, rank: usize) -> bool {
    rank >= 64 || dead & (1u64 << rank) == 0
}

impl Endpoint {
    /// Broadcast `data` from `root` to every rank; returns the payload on
    /// every rank (on the root it is the input, refcounted).
    pub fn broadcast(&self, root: usize, data: Option<Bytes>) -> RtsResult<Bytes> {
        if root >= self.size() {
            return Err(RtsError::BadRank {
                rank: root,
                size: self.size(),
            });
        }
        let dead = self.dead_mask();
        self.check_participants(dead, root)?;
        #[cfg(feature = "analyze")]
        let _wait = crate::lockgraph::collective_enter("broadcast");
        #[cfg(feature = "obs")]
        let obs_start = std::time::Instant::now();
        let out = if self.rank() == root {
            let data =
                data.ok_or_else(|| RtsError::Internal("root must supply broadcast data".into()))?;
            for to in 0..self.size() {
                if to != root && live(dead, to) {
                    self.send_internal(to, tags::BCAST, data.clone())?;
                }
            }
            Ok(data)
        } else {
            self.recv_internal(root, tags::BCAST)
        };
        #[cfg(any(feature = "analyze", feature = "obs"))]
        if out.is_ok() {
            let _ = self.clock_sync(dead);
        }
        #[cfg(feature = "obs")]
        if out.is_ok() {
            crate::obs::notify_collective(
                "broadcast",
                self.rank(),
                obs_start.elapsed().as_nanos() as u64,
            );
        }
        out
    }

    /// Gather each rank's `bytes` at `root`. Returns `Some(chunks)` in
    /// rank order at the root, `None` elsewhere.
    pub fn gather_bytes(&self, root: usize, bytes: Bytes) -> RtsResult<Option<Vec<Bytes>>> {
        if root >= self.size() {
            return Err(RtsError::BadRank {
                rank: root,
                size: self.size(),
            });
        }
        let dead = self.dead_mask();
        self.check_participants(dead, root)?;
        #[cfg(feature = "analyze")]
        let _wait = crate::lockgraph::collective_enter("gather");
        #[cfg(feature = "obs")]
        let obs_start = std::time::Instant::now();
        let out = if self.rank() == root {
            // Dead ranks contribute an empty chunk; stale messages they
            // sent before dying are discarded, not counted.
            let mut chunks: Vec<Option<Bytes>> = vec![None; self.size()];
            chunks[root] = Some(bytes);
            let mut remaining = (0..self.size())
                .filter(|&r| r != root && live(dead, r))
                .count();
            while remaining > 0 {
                let m = self.recv_any_internal(tags::GATHER)?;
                if !live(dead, m.from) {
                    continue;
                }
                if chunks[m.from].is_none() {
                    remaining -= 1;
                }
                chunks[m.from] = Some(m.payload);
            }
            Ok(Some(
                chunks.into_iter().map(Option::unwrap_or_default).collect(),
            ))
        } else {
            self.send_internal(root, tags::GATHER, bytes)?;
            Ok(None)
        };
        #[cfg(any(feature = "analyze", feature = "obs"))]
        if out.is_ok() {
            let _ = self.clock_sync(dead);
        }
        #[cfg(feature = "obs")]
        if out.is_ok() {
            crate::obs::notify_collective(
                "gather",
                self.rank(),
                obs_start.elapsed().as_nanos() as u64,
            );
        }
        out
    }

    /// Gather a distributed `f64` buffer at `root`, concatenated in rank
    /// order. This is exactly the "gather … performed by PARDIS using the
    /// interface to the run-time system" of the centralized method
    /// (paper §3.2, figure 2).
    pub fn gather_f64(&self, root: usize, local: &[f64]) -> RtsResult<Option<Vec<f64>>> {
        let payload = Bytes::copy_from_slice(pardis_bytes_of(local));
        match self.gather_bytes(root, payload)? {
            None => Ok(None),
            Some(chunks) => {
                let total: usize = chunks.iter().map(|c| c.len() / 8).sum();
                let mut out = Vec::with_capacity(total);
                for c in &chunks {
                    bytes_to_f64(c, &mut out);
                }
                Ok(Some(out))
            }
        }
    }

    /// Scatter variable-size chunks from `root`: the root supplies one
    /// `Bytes` per rank (in rank order); every rank receives its chunk.
    pub fn scatterv_bytes(&self, root: usize, chunks: Option<Vec<Bytes>>) -> RtsResult<Bytes> {
        if root >= self.size() {
            return Err(RtsError::BadRank {
                rank: root,
                size: self.size(),
            });
        }
        let dead = self.dead_mask();
        self.check_participants(dead, root)?;
        #[cfg(feature = "analyze")]
        let _wait = crate::lockgraph::collective_enter("scatter");
        #[cfg(feature = "obs")]
        let obs_start = std::time::Instant::now();
        let out = if self.rank() == root {
            let chunks = chunks
                .ok_or_else(|| RtsError::Internal("root must supply scatter chunks".into()))?;
            if chunks.len() != self.size() {
                return Err(RtsError::BadCounts {
                    expected: self.size(),
                    got: chunks.len(),
                });
            }
            let mut mine = None;
            for (to, chunk) in chunks.into_iter().enumerate() {
                if to == root {
                    mine = Some(chunk);
                } else if live(dead, to) {
                    self.send_internal(to, tags::SCATTER, chunk)?;
                }
            }
            mine.ok_or_else(|| RtsError::Internal("root's own scatter chunk missing".into()))
        } else {
            self.recv_internal(root, tags::SCATTER)
        };
        #[cfg(any(feature = "analyze", feature = "obs"))]
        if out.is_ok() {
            let _ = self.clock_sync(dead);
        }
        #[cfg(feature = "obs")]
        if out.is_ok() {
            crate::obs::notify_collective(
                "scatter",
                self.rank(),
                obs_start.elapsed().as_nanos() as u64,
            );
        }
        out
    }

    /// Scatter an `f64` buffer held at `root` according to per-rank
    /// `counts` (known to all ranks). Returns this rank's slice.
    pub fn scatterv_f64(
        &self,
        root: usize,
        full: Option<&[f64]>,
        counts: &[usize],
    ) -> RtsResult<Vec<f64>> {
        if counts.len() != self.size() {
            return Err(RtsError::BadCounts {
                expected: self.size(),
                got: counts.len(),
            });
        }
        let chunks = if self.rank() == root {
            let full =
                full.ok_or_else(|| RtsError::Internal("root must supply the full buffer".into()))?;
            let expected: usize = counts.iter().sum();
            if full.len() != expected {
                return Err(RtsError::LengthMismatch {
                    expected,
                    got: full.len(),
                });
            }
            let mut out = Vec::with_capacity(self.size());
            let mut off = 0;
            for &c in counts {
                out.push(Bytes::copy_from_slice(pardis_bytes_of(&full[off..off + c])));
                off += c;
            }
            Some(out)
        } else {
            None
        };
        let mine = self.scatterv_bytes(root, chunks)?;
        let mut out = Vec::with_capacity(mine.len() / 8);
        bytes_to_f64(&mine, &mut out);
        Ok(out)
    }

    /// All ranks receive every rank's `bytes`, in rank order.
    /// Linear: gather to rank 0 then broadcast.
    pub fn allgather_bytes(&self, bytes: Bytes) -> RtsResult<Vec<Bytes>> {
        let gathered = self.gather_bytes(0, bytes)?;
        // Rank 0 re-broadcasts each chunk; cheap for the metadata-sized
        // payloads this is used for (object references, lengths). Dead
        // ranks' chunks come back empty from the gather.
        let dead = self.dead_mask();
        if self.rank() == 0 {
            let chunks = gathered
                .ok_or_else(|| RtsError::Internal("rank 0 missing its gathered chunks".into()))?;
            for to in 1..self.size() {
                if !live(dead, to) {
                    continue;
                }
                for chunk in &chunks {
                    self.send_internal(to, tags::ALLGATHER, chunk.clone())?;
                }
            }
            Ok(chunks)
        } else {
            let mut chunks = Vec::with_capacity(self.size());
            for _ in 0..self.size() {
                chunks.push(self.recv_internal(0, tags::ALLGATHER)?);
            }
            Ok(chunks)
        }
    }

    /// All-gather a small `u64` (lengths, ports, flags). Returns the
    /// per-rank values in rank order on every rank.
    pub fn allgather_u64(&self, value: u64) -> RtsResult<Vec<u64>> {
        let chunks = self.allgather_bytes(Bytes::copy_from_slice(&value.to_le_bytes()))?;
        Ok(chunks
            .iter()
            .map(|c| {
                // A confirmed-dead rank's slot is an empty chunk;
                // decode it as 0 rather than slicing past its end.
                let mut a = [0u8; 8];
                let n = c.len().min(8);
                a[..n].copy_from_slice(&c[..n]);
                u64::from_le_bytes(a)
            })
            .collect())
    }

    /// Element-wise reduction of `local` across all ranks; every rank
    /// receives the result (reduce-to-root then broadcast).
    pub fn allreduce_f64(&self, local: &[f64], op: ReduceOp) -> RtsResult<Vec<f64>> {
        let dead = self.dead_mask();
        self.check_participants(dead, 0)?;
        // Reduce at rank 0 over the live contributions.
        let reduced = if self.rank() == 0 {
            let mut acc = local.to_vec();
            let mut remaining = (1..self.size()).filter(|&r| live(dead, r)).count();
            while remaining > 0 {
                let m = self.recv_any_internal(tags::REDUCE)?;
                if !live(dead, m.from) {
                    continue;
                }
                remaining -= 1;
                let mut incoming = Vec::with_capacity(m.payload.len() / 8);
                bytes_to_f64(&m.payload, &mut incoming);
                if incoming.len() != acc.len() {
                    return Err(RtsError::LengthMismatch {
                        expected: acc.len(),
                        got: incoming.len(),
                    });
                }
                op.fold_into(&mut acc, &incoming);
            }
            Some(Bytes::copy_from_slice(pardis_bytes_of(&acc)))
        } else {
            self.send_internal(
                0,
                tags::REDUCE,
                Bytes::copy_from_slice(pardis_bytes_of(local)),
            )?;
            None
        };
        let result = self.broadcast(0, reduced)?;
        let mut out = Vec::with_capacity(result.len() / 8);
        bytes_to_f64(&result, &mut out);
        Ok(out)
    }

    /// Scalar allreduce convenience.
    pub fn allreduce_scalar(&self, value: f64, op: ReduceOp) -> RtsResult<f64> {
        Ok(self.allreduce_f64(&[value], op)?[0])
    }

    /// Personalized all-to-all: `outgoing[j]` goes to rank `j`; returns
    /// the chunk received from each rank, in rank order. The workhorse of
    /// distributed-sequence redistribution.
    pub fn alltoallv_bytes(&self, outgoing: Vec<Bytes>) -> RtsResult<Vec<Bytes>> {
        if outgoing.len() != self.size() {
            return Err(RtsError::BadCounts {
                expected: self.size(),
                got: outgoing.len(),
            });
        }
        let dead = self.dead_mask();
        if !live(dead, self.rank()) {
            return Err(RtsError::DeadRank { rank: self.rank() });
        }
        #[cfg(feature = "analyze")]
        let _wait = crate::lockgraph::collective_enter("alltoall");
        #[cfg(feature = "obs")]
        let obs_start = std::time::Instant::now();
        let mut incoming: Vec<Option<Bytes>> = vec![None; self.size()];
        for (to, chunk) in outgoing.into_iter().enumerate() {
            if to == self.rank() {
                incoming[to] = Some(chunk);
            } else if live(dead, to) {
                self.send_internal(to, tags::ALLTOALL, chunk)?;
            }
        }
        let mut remaining = (0..self.size())
            .filter(|&r| r != self.rank() && live(dead, r))
            .count();
        while remaining > 0 {
            let m = self.recv_any_internal(tags::ALLTOALL)?;
            if !live(dead, m.from) {
                continue;
            }
            if incoming[m.from].is_none() {
                remaining -= 1;
            }
            incoming[m.from] = Some(m.payload);
        }
        #[cfg(any(feature = "analyze", feature = "obs"))]
        let _ = self.clock_sync(dead);
        #[cfg(feature = "obs")]
        crate::obs::notify_collective(
            "alltoall",
            self.rank(),
            obs_start.elapsed().as_nanos() as u64,
        );
        Ok(incoming
            .into_iter()
            .map(Option::unwrap_or_default)
            .collect())
    }

    /// Reject collectives that cannot make progress under `dead`: a
    /// confirmed-dead caller, or a confirmed-dead root (survivors would
    /// block forever on its relay). With `dead == 0` this is two
    /// comparisons — the zero-overhead healthy path.
    fn check_participants(&self, dead: u64, root: usize) -> RtsResult<()> {
        if dead == 0 {
            return Ok(());
        }
        if !live(dead, self.rank()) {
            return Err(RtsError::DeadRank { rank: self.rank() });
        }
        if !live(dead, root) {
            return Err(RtsError::DeadRank { rank: root });
        }
        Ok(())
    }

    /// Software barrier over the survivor set, relayed through rank 0:
    /// each live rank sends a token to rank 0, which releases everyone
    /// once all tokens are in. Replaces the `std::sync::Barrier` (whose
    /// count includes the dead) as soon as the membership records a
    /// death.
    pub(crate) fn survivor_barrier(&self, dead: u64) -> RtsResult<()> {
        if !live(dead, self.rank()) {
            return Err(RtsError::DeadRank { rank: self.rank() });
        }
        if self.rank() == 0 {
            let mut remaining = (1..self.size()).filter(|&r| live(dead, r)).count();
            while remaining > 0 {
                let m = self.recv_any_internal(tags::MBAR_IN)?;
                if live(dead, m.from) {
                    remaining -= 1;
                }
            }
            for to in 1..self.size() {
                if live(dead, to) {
                    self.send_internal(to, tags::MBAR_OUT, Bytes::new())?;
                }
            }
        } else {
            self.send_internal(0, tags::MBAR_IN, Bytes::new())?;
            self.recv_internal(0, tags::MBAR_OUT)?;
        }
        Ok(())
    }

    // Internal recv helpers that bypass the user-tag check (collective
    // tags live in the reserved space).
    fn recv_internal(&self, from: usize, tag: Tag) -> RtsResult<Bytes> {
        self.recv_filtered(move |m| m.from == from && m.tag == tag)
            .map(|m| m.payload)
    }

    fn recv_any_internal(&self, tag: Tag) -> RtsResult<crate::Message> {
        self.recv_filtered(move |m| m.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    #[test]
    fn broadcast_reaches_all() {
        let results = Domain::run(4, |ep| {
            let data = if ep.rank() == 2 {
                Some(Bytes::from_static(b"hello"))
            } else {
                None
            };
            ep.broadcast(2, data).unwrap().to_vec()
        });
        for r in results {
            assert_eq!(r, b"hello");
        }
    }

    #[test]
    fn gather_f64_rank_order() {
        let results = Domain::run(3, |ep| {
            let local = vec![ep.rank() as f64; ep.rank() + 1];
            ep.gather_f64(0, &local).unwrap()
        });
        assert_eq!(
            results[0].as_ref().unwrap(),
            &vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        );
        assert!(results[1].is_none());
        assert!(results[2].is_none());
    }

    #[test]
    fn scatterv_f64_counts() {
        let results = Domain::run(3, |ep| {
            let counts = [1usize, 2, 3];
            let full: Vec<f64> = (0..6).map(|x| x as f64).collect();
            let root_buf = if ep.rank() == 0 {
                Some(&full[..])
            } else {
                None
            };
            ep.scatterv_f64(0, root_buf, &counts).unwrap()
        });
        assert_eq!(results[0], vec![0.0]);
        assert_eq!(results[1], vec![1.0, 2.0]);
        assert_eq!(results[2], vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn gather_then_scatter_roundtrips() {
        // The centralized-method pattern: gather at a communicating
        // thread, then scatter back out.
        let results = Domain::run(4, |ep| {
            let local: Vec<f64> = (0..5).map(|i| (ep.rank() * 5 + i) as f64).collect();
            let gathered = ep.gather_f64(0, &local).unwrap();
            let counts = [5usize; 4];
            ep.scatterv_f64(0, gathered.as_deref(), &counts).unwrap()
        });
        for (rank, got) in results.iter().enumerate() {
            let want: Vec<f64> = (0..5).map(|i| (rank * 5 + i) as f64).collect();
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn allgather_u64_everywhere() {
        let results = Domain::run(4, |ep| ep.allgather_u64(ep.rank() as u64 * 100).unwrap());
        for r in results {
            assert_eq!(r, vec![0, 100, 200, 300]);
        }
    }

    #[test]
    fn allreduce_sum_min_max() {
        let results = Domain::run(4, |ep| {
            let v = ep.rank() as f64;
            (
                ep.allreduce_scalar(v, ReduceOp::Sum).unwrap(),
                ep.allreduce_scalar(v, ReduceOp::Min).unwrap(),
                ep.allreduce_scalar(v, ReduceOp::Max).unwrap(),
            )
        });
        for (s, mn, mx) in results {
            assert_eq!(s, 6.0);
            assert_eq!(mn, 0.0);
            assert_eq!(mx, 3.0);
        }
    }

    #[test]
    fn allreduce_vector() {
        let results = Domain::run(3, |ep| {
            let v = vec![ep.rank() as f64, 1.0];
            ep.allreduce_f64(&v, ReduceOp::Sum).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn alltoallv_exchanges() {
        let results = Domain::run(3, |ep| {
            let outgoing: Vec<Bytes> = (0..3)
                .map(|to| Bytes::from(vec![(ep.rank() * 10 + to) as u8]))
                .collect();
            ep.alltoallv_bytes(outgoing)
                .unwrap()
                .iter()
                .map(|b| b[0])
                .collect::<Vec<u8>>()
        });
        // incoming[from] at rank r should be from*10 + r
        for (r, inc) in results.iter().enumerate() {
            let want: Vec<u8> = (0..3).map(|from| (from * 10 + r) as u8).collect();
            assert_eq!(inc, &want);
        }
    }

    #[test]
    fn scatter_count_mismatch_detected() {
        let results = Domain::run(2, |ep| {
            let counts = [1usize, 2, 3]; // wrong arity on purpose
            let full = [0.0f64; 6];
            let root = if ep.rank() == 0 {
                Some(&full[..])
            } else {
                None
            };
            ep.scatterv_f64(0, root, &counts)
        });
        for r in results {
            assert!(matches!(r, Err(RtsError::BadCounts { .. })));
        }
    }

    #[test]
    fn degraded_collectives_complete_over_survivors() {
        // Confirm rank 3 dead; the three survivors must complete every
        // collective kind without blocking on it.
        let results = Domain::run(4, |ep| {
            ep.barrier();
            ep.membership().mark_dead(3);
            if ep.rank() == 3 {
                return None;
            }
            let gathered = ep.gather_f64(0, &[ep.rank() as f64]).unwrap();
            if ep.rank() == 0 {
                // The dead rank's slot is present but empty.
                assert_eq!(gathered.unwrap(), vec![0.0, 1.0, 2.0]);
            }
            let live_sum = ep.allreduce_scalar(1.0, ReduceOp::Sum).unwrap();
            ep.barrier();
            let chunks = (ep.rank() == 0).then(|| {
                (0..4)
                    .map(|r| Bytes::from(vec![r as u8 * 10]))
                    .collect::<Vec<_>>()
            });
            let mine = ep.scatterv_bytes(0, chunks).unwrap();
            let everyone = ep.allgather_u64(ep.rank() as u64 + 100).unwrap();
            ep.barrier();
            Some((
                live_sum,
                mine[0],
                everyone,
                ep.membership().epoch(),
                ep.membership().survivors(),
            ))
        });
        assert!(results[3].is_none());
        for (rank, r) in results.iter().enumerate().take(3) {
            let (sum, scattered, all, epoch, survivors) = r.clone().unwrap();
            assert_eq!(sum, 3.0, "three live contributions");
            assert_eq!(scattered, rank as u8 * 10);
            // Dead rank's allgather slot decodes as 0 (empty chunk is
            // padded by the caller; here the raw u64 slot).
            assert_eq!(all[..3], [100, 101, 102]);
            assert_eq!(epoch, 1);
            assert_eq!(survivors, vec![0, 1, 2]);
        }
    }

    #[test]
    fn dead_rank_participation_is_rejected() {
        Domain::run(2, |ep| {
            ep.membership().mark_dead(1);
            if ep.rank() == 1 {
                assert!(matches!(
                    ep.allreduce_scalar(0.0, ReduceOp::Sum),
                    Err(RtsError::DeadRank { rank: 1 })
                ));
                assert!(matches!(
                    ep.broadcast(1, Some(Bytes::new())),
                    Err(RtsError::DeadRank { rank: 1 })
                ));
            } else {
                // A dead *root* is rejected too — survivors would block
                // forever on its relay.
                assert!(matches!(
                    ep.broadcast(1, None),
                    Err(RtsError::DeadRank { rank: 1 })
                ));
                // Rank 0 alone is the whole survivor set.
                assert_eq!(ep.allreduce_scalar(7.0, ReduceOp::Sum).unwrap(), 7.0);
            }
        });
    }

    #[test]
    fn survivor_barrier_synchronizes_repeatedly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        Domain::run(4, move |ep| {
            ep.barrier();
            ep.membership().mark_dead(2);
            if ep.rank() == 2 {
                return;
            }
            for round in 1..=10usize {
                c2.fetch_add(1, Ordering::SeqCst);
                ep.barrier();
                // All three survivor increments of this round visible.
                assert_eq!(c2.load(Ordering::SeqCst), round * 3);
                ep.barrier();
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn single_rank_collectives_degenerate() {
        Domain::run(1, |ep| {
            assert_eq!(
                ep.broadcast(0, Some(Bytes::from_static(b"x"))).unwrap(),
                Bytes::from_static(b"x")
            );
            assert_eq!(ep.gather_f64(0, &[1.0]).unwrap().unwrap(), vec![1.0]);
            assert_eq!(ep.allreduce_scalar(5.0, ReduceOp::Sum).unwrap(), 5.0);
            let inc = ep.alltoallv_bytes(vec![Bytes::from_static(b"me")]).unwrap();
            assert_eq!(&inc[0][..], b"me");
        });
    }
}
