//! Domain construction: wire up `n` ranks into a fully connected
//! in-process message-passing world.

use crate::endpoint::{Endpoint, Message};
use crate::membership::Membership;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// Factory for in-process message-passing domains.
///
/// A domain of size `n` is the RTS-level picture of one parallel machine
/// running an SPMD program with `n` computing threads: in the paper this
/// was MPICH (shared memory) on a 4-node SGI Onyx or a 10-node Power
/// Challenge.
pub struct Domain;

impl Domain {
    /// Create the endpoints of an `n`-rank domain. Endpoint `i` has rank
    /// `i`; hand each one to its own thread.
    ///
    /// (Named `new` for MPI familiarity even though it returns the
    /// endpoints rather than a `Domain` value.)
    #[allow(clippy::new_ret_no_self)]
    ///
    /// # Panics
    /// Panics if `n == 0` — an SPMD program has at least one thread.
    pub fn new(n: usize) -> Vec<Endpoint> {
        assert!(n > 0, "domain must have at least one rank");
        let mut senders: Vec<Sender<Message>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Message>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(n));
        let membership = Arc::new(Membership::new(n));
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| {
                Endpoint::new(
                    rank,
                    senders.clone(),
                    inbox,
                    barrier.clone(),
                    membership.clone(),
                )
            })
            .collect()
    }

    /// Run closure `f` on every rank of a fresh `n`-rank domain, each on
    /// its own OS thread, and join them. Convenience harness used by
    /// tests, examples, and `pardis-core`'s machine bootstrap.
    ///
    /// Returns the per-rank results in rank order. Panics in any rank are
    /// propagated.
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Endpoint) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let handles: Vec<_> = Domain::new(n)
            .into_iter()
            .map(|ep| {
                let f = f.clone();
                std::thread::Builder::new()
                    .name(format!("rts-rank-{}", ep.rank()))
                    .spawn(move || f(ep))
                    .expect("spawn rts rank")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn ranks_are_ordered() {
        let eps = Domain::new(5);
        for (i, ep) in eps.iter().enumerate() {
            assert_eq!(ep.rank(), i);
            assert_eq!(ep.size(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Domain::new(0);
    }

    #[test]
    fn run_returns_rank_ordered_results() {
        let results = Domain::run(6, |ep| ep.rank() * 2);
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn run_all_to_all() {
        // Every rank sends its rank to every other rank and validates.
        Domain::run(4, |ep| {
            for to in 0..ep.size() {
                ep.send(to, 1, Bytes::from(vec![ep.rank() as u8])).unwrap();
            }
            let mut got: Vec<u8> = (0..ep.size())
                .map(|from| ep.recv(from, 1).unwrap()[0])
                .collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        });
    }
}
