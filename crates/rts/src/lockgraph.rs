//! Wait-for-order tracking and deadlock-cycle detection (the `analyze`
//! feature).
//!
//! The graph's nodes are the two kinds of things a PARDIS thread can
//! block on: **locks** (by *class*, a static string naming the lock's
//! role, e.g. `"rma::registry"`) and **pending collectives** (barrier,
//! broadcast, …, including the membership survivor barrier). While a
//! thread holds or waits on node `A` and starts waiting on node `B`,
//! the directed edge `A → B` is recorded in a process-global wait-for
//! order graph. A cycle means two threads can enter the same pair of
//! waits in opposite orders — the classic deadlock recipe — even if no
//! deadlock happened on this particular run.
//!
//! Pure-lock cycles are the PA102 finding; cycles mixing a lock with a
//! pending collective are PA203 — the class the old lock-only graph
//! could not see (thread 1 holds lock `A` and waits in a barrier;
//! thread 2, not yet at the barrier, blocks acquiring `A`).
//!
//! Self-edges (re-entering the same node, e.g. two per-rank window
//! parts) are ignored: ordering within one class is governed by rank
//! index, which this classifier cannot see, and flagging them would
//! drown real findings.
//!
//! Use [`TrackedMutex`] / [`TrackedRwLock`] for new locks, bracket an
//! existing acquisition with [`on_acquire`] / [`on_release`] (or an
//! RAII [`track`] token), and bracket a collective wait with
//! [`collective_enter`].

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::OnceLock;

type Class = &'static str;

/// A node in the wait-for graph: something a thread can block on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Node {
    /// A lock of the named class.
    Lock(Class),
    /// A pending collective of the named kind (barrier, broadcast, …).
    Collective(Class),
}

impl Node {
    /// The node's class name, without the kind.
    pub fn name(&self) -> Class {
        match self {
            Node::Lock(c) | Node::Collective(c) => c,
        }
    }

    /// Whether this node is a pending collective.
    pub fn is_collective(&self) -> bool {
        matches!(self, Node::Collective(_))
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Lock(c) => write!(f, "lock:{c}"),
            Node::Collective(c) => write!(f, "collective:{c}"),
        }
    }
}

thread_local! {
    /// Nodes this thread currently holds or waits on, in entry order.
    static HELD: RefCell<Vec<Node>> = const { RefCell::new(Vec::new()) };
}

/// The global edge set. Guarded by an *untracked* lock: the tracker
/// must not observe itself.
fn edges_cell() -> &'static Mutex<BTreeSet<(Node, Node)>> {
    static EDGES: OnceLock<Mutex<BTreeSet<(Node, Node)>>> = OnceLock::new();
    EDGES.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Every node ever entered (even without nesting) — evidence that a
/// code path's instrumentation actually ran.
fn classes_cell() -> &'static Mutex<BTreeSet<Node>> {
    static CLASSES: OnceLock<Mutex<BTreeSet<Node>>> = OnceLock::new();
    CLASSES.get_or_init(|| Mutex::new(BTreeSet::new()))
}

fn on_enter(node: Node) {
    classes_cell().lock().insert(node);
    HELD.with(|held| {
        let held = held.borrow();
        if !held.is_empty() {
            let mut edges = edges_cell().lock();
            for &h in held.iter() {
                if h != node {
                    edges.insert((h, node));
                }
            }
        }
        drop(held);
    });
    HELD.with(|held| held.borrow_mut().push(node));
}

fn on_exit(node: Node) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(i) = held.iter().rposition(|&h| h == node) {
            held.remove(i);
        }
    });
}

/// Record that this thread is acquiring a lock of `class`.
pub fn on_acquire(class: Class) {
    on_enter(Node::Lock(class));
}

/// Record that this thread released its most recent lock of `class`.
pub fn on_release(class: Class) {
    on_exit(Node::Lock(class));
}

/// RAII bracket: tracks a lock of `class` as held until the token
/// drops. Declare the token immediately *before* taking the real guard
/// so the tracked window covers the guard's lifetime.
pub fn track(class: Class) -> LockToken {
    on_acquire(class);
    LockToken { class }
}

/// See [`track`].
pub struct LockToken {
    class: Class,
}

impl Drop for LockToken {
    fn drop(&mut self) {
        on_release(self.class);
    }
}

/// RAII bracket around a collective wait: everything this thread holds
/// when it enters the collective gains an edge to the collective node,
/// and anything it acquires *while inside* gains an edge from it.
/// Declare the token before blocking in the collective.
pub fn collective_enter(kind: Class) -> CollectiveToken {
    on_enter(Node::Collective(kind));
    CollectiveToken { kind }
}

/// See [`collective_enter`].
pub struct CollectiveToken {
    kind: Class,
}

impl Drop for CollectiveToken {
    fn drop(&mut self) {
        on_exit(Node::Collective(self.kind));
    }
}

/// Snapshot of the recorded wait-for-order edges.
pub fn edges() -> Vec<(Node, Node)> {
    edges_cell().lock().iter().copied().collect()
}

/// Snapshot of every node entered so far (nested or not).
pub fn classes() -> Vec<Node> {
    classes_cell().lock().iter().copied().collect()
}

/// Clear all recorded state (between independent test scenarios).
pub fn reset() {
    edges_cell().lock().clear();
    classes_cell().lock().clear();
}

/// Detect cycles in the wait-for-order graph. Each cycle is returned
/// as the list of nodes along it (first node repeated at the end),
/// deduplicated by node set.
pub fn cycles() -> Vec<Vec<Node>> {
    let edge_list = edges();
    let mut adj: BTreeMap<Node, Vec<Node>> = BTreeMap::new();
    for (a, b) in &edge_list {
        adj.entry(*a).or_default().push(*b);
        adj.entry(*b).or_default();
    }
    let mut found: Vec<Vec<Node>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<Node>> = BTreeSet::new();
    let nodes: Vec<Node> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack: Vec<Node> = Vec::new();
        dfs(start, &adj, &mut stack, &mut found, &mut seen_sets);
    }
    found
}

/// Cycles restricted to lock nodes only — what the pre-generalization
/// detector saw. A cycle that appears in [`cycles`] but not here is a
/// lock-vs-collective deadlock (PA203).
pub fn lock_only_cycles() -> Vec<Vec<Node>> {
    cycles()
        .into_iter()
        .filter(|c| c.iter().all(|n| !n.is_collective()))
        .collect()
}

/// The finding code a cycle classifies as: PA203 when it mixes a
/// pending collective with at least one lock, PA102 for pure locks.
pub fn cycle_code(cycle: &[Node]) -> &'static str {
    if cycle.iter().any(|n| n.is_collective()) {
        "PA203"
    } else {
        "PA102"
    }
}

fn dfs(
    node: Node,
    adj: &BTreeMap<Node, Vec<Node>>,
    stack: &mut Vec<Node>,
    found: &mut Vec<Vec<Node>>,
    seen_sets: &mut BTreeSet<Vec<Node>>,
) {
    if let Some(i) = stack.iter().position(|&n| n == node) {
        // Back edge: stack[i..] is a cycle.
        let mut cycle: Vec<Node> = stack[i..].to_vec();
        let mut key = cycle.clone();
        key.sort_unstable();
        if seen_sets.insert(key) {
            cycle.push(node);
            found.push(cycle);
        }
        return;
    }
    // Bound the walk: a node can appear once per path.
    stack.push(node);
    if let Some(next) = adj.get(&node) {
        for &n in next {
            dfs(n, adj, stack, found, seen_sets);
        }
    }
    stack.pop();
}

/// A mutex whose acquisitions feed the wait-for graph.
pub struct TrackedMutex<T> {
    class: Class,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Wrap `value` in a tracked mutex of class `class`.
    pub fn new(class: Class, value: T) -> TrackedMutex<T> {
        TrackedMutex {
            class,
            inner: Mutex::new(value),
        }
    }

    /// Lock, recording the acquisition.
    pub fn lock(&self) -> TrackedGuard<MutexGuard<'_, T>> {
        let token = track(self.class);
        TrackedGuard {
            _token: token,
            guard: self.inner.lock(),
        }
    }
}

/// A reader-writer lock whose acquisitions feed the wait-for graph.
pub struct TrackedRwLock<T> {
    class: Class,
    inner: RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Wrap `value` in a tracked rwlock of class `class`.
    pub fn new(class: Class, value: T) -> TrackedRwLock<T> {
        TrackedRwLock {
            class,
            inner: RwLock::new(value),
        }
    }

    /// Shared lock, recording the acquisition.
    pub fn read(&self) -> TrackedGuard<RwLockReadGuard<'_, T>> {
        let token = track(self.class);
        TrackedGuard {
            _token: token,
            guard: self.inner.read(),
        }
    }

    /// Exclusive lock, recording the acquisition.
    pub fn write(&self) -> TrackedGuard<RwLockWriteGuard<'_, T>> {
        let token = track(self.class);
        TrackedGuard {
            _token: token,
            guard: self.inner.write(),
        }
    }
}

/// Guard pairing the real lock guard with its tracking token.
pub struct TrackedGuard<G> {
    _token: LockToken,
    guard: G,
}

impl<G: Deref> Deref for TrackedGuard<G> {
    type Target = G::Target;
    fn deref(&self) -> &G::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for TrackedGuard<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The graph is process-global; serialize tests that reset it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static G: StdMutex<()> = StdMutex::new(());
        G.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn nested_acquisition_records_edge() {
        let _g = guard();
        reset();
        let a = TrackedMutex::new("test1::a", 0u32);
        let b = TrackedMutex::new("test1::b", 0u32);
        {
            let _ga = a.lock();
            let mut gb = b.lock();
            *gb += 1;
        }
        assert!(edges().contains(&(Node::Lock("test1::a"), Node::Lock("test1::b"))));
        assert!(cycles().is_empty());
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let _g = guard();
        reset();
        let a = TrackedRwLock::new("test2::a", ());
        let b = TrackedRwLock::new("test2::b", ());
        {
            let _ga = a.read();
            let _gb = b.read();
        }
        {
            let _gb = b.write();
            let _ga = a.write();
        }
        let cys = cycles();
        assert_eq!(cys.len(), 1, "{cys:?}");
        assert!(
            cys[0].contains(&Node::Lock("test2::a")) && cys[0].contains(&Node::Lock("test2::b"))
        );
        // First node repeats at the end; pure locks classify as PA102.
        assert_eq!(cys[0].first(), cys[0].last());
        assert_eq!(cycle_code(&cys[0]), "PA102");
    }

    #[test]
    fn self_edges_are_ignored() {
        let _g = guard();
        reset();
        // Same class twice (like two window parts): no edge, no cycle.
        let a1 = TrackedMutex::new("test3::part", 0u32);
        let a2 = TrackedMutex::new("test3::part", 0u32);
        {
            let _g1 = a1.lock();
            let _g2 = a2.lock();
        }
        assert!(edges().is_empty());
        assert!(cycles().is_empty());
    }

    #[test]
    fn release_unwinds_held_stack() {
        let _g = guard();
        reset();
        let a = TrackedMutex::new("test4::a", ());
        let b = TrackedMutex::new("test4::b", ());
        {
            let _ga = a.lock();
        }
        {
            // `a` no longer held: no a→b edge.
            let _gb = b.lock();
        }
        assert!(edges().is_empty());
    }

    #[test]
    fn three_way_cycle_detected() {
        let _g = guard();
        reset();
        on_acquire("t5::a");
        on_acquire("t5::b");
        on_release("t5::b");
        on_release("t5::a");
        on_acquire("t5::b");
        on_acquire("t5::c");
        on_release("t5::c");
        on_release("t5::b");
        on_acquire("t5::c");
        on_acquire("t5::a");
        on_release("t5::a");
        on_release("t5::c");
        let cys = cycles();
        assert_eq!(cys.len(), 1, "{cys:?}");
        assert_eq!(cys[0].len(), 4); // a, b, c + repeat
    }

    #[test]
    fn lock_vs_collective_cycle_is_pa203_and_invisible_to_lock_only_graph() {
        let _g = guard();
        reset();
        // Thread 1's order: hold the lock, then wait in the barrier.
        {
            let _l = track("t6::state");
            let _c = collective_enter("t6::barrier");
        }
        // Thread 2's order: inside the collective region, take the lock
        // (it would block on thread 1, which waits in the barrier for
        // thread 2 — deadlock).
        {
            let _c = collective_enter("t6::barrier");
            let _l = track("t6::state");
        }
        let cys = cycles();
        assert_eq!(cys.len(), 1, "{cys:?}");
        assert!(cys[0].contains(&Node::Lock("t6::state")));
        assert!(cys[0].contains(&Node::Collective("t6::barrier")));
        assert_eq!(cycle_code(&cys[0]), "PA203");
        // The pre-generalization detector — locks only — sees nothing:
        // only one lock class is involved, so no lock-lock edge exists.
        assert!(lock_only_cycles().is_empty());
    }
}
