//! Lock-order tracking and deadlock-cycle detection (the `analyze`
//! feature).
//!
//! Every tracked lock belongs to a *class* (a static string naming the
//! lock's role, e.g. `"rma::registry"`). While a thread holds a lock of
//! class `A` and acquires one of class `B`, the directed edge `A → B`
//! is recorded in a process-global acquisition-order graph. A cycle in
//! that graph means two threads can acquire the same classes in
//! opposite orders — the classic deadlock recipe — even if no deadlock
//! happened on this particular run.
//!
//! Self-edges (re-acquiring the same class, e.g. two per-rank window
//! parts) are ignored: ordering within one class is governed by rank
//! index, which this classifier cannot see, and flagging them would
//! drown real findings (finding code PA102 stays precise).
//!
//! Use [`TrackedMutex`] / [`TrackedRwLock`] for new locks, or bracket
//! an existing acquisition with [`on_acquire`] / [`on_release`] (or an
//! RAII [`track`] token).

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Deref, DerefMut};
use std::sync::OnceLock;

type Class = &'static str;

thread_local! {
    /// Lock classes currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<Class>> = const { RefCell::new(Vec::new()) };
}

/// The global edge set. Guarded by an *untracked* lock: the tracker
/// must not observe itself.
fn edges_cell() -> &'static Mutex<BTreeSet<(Class, Class)>> {
    static EDGES: OnceLock<Mutex<BTreeSet<(Class, Class)>>> = OnceLock::new();
    EDGES.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Every class ever acquired (even without nesting) — evidence that a
/// code path's instrumentation actually ran.
fn classes_cell() -> &'static Mutex<BTreeSet<Class>> {
    static CLASSES: OnceLock<Mutex<BTreeSet<Class>>> = OnceLock::new();
    CLASSES.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Record that this thread is acquiring a lock of `class`.
pub fn on_acquire(class: Class) {
    classes_cell().lock().insert(class);
    HELD.with(|held| {
        let held = held.borrow();
        if !held.is_empty() {
            let mut edges = edges_cell().lock();
            for &h in held.iter() {
                if h != class {
                    edges.insert((h, class));
                }
            }
        }
        drop(held);
    });
    HELD.with(|held| held.borrow_mut().push(class));
}

/// Record that this thread released its most recent lock of `class`.
pub fn on_release(class: Class) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(i) = held.iter().rposition(|&h| h == class) {
            held.remove(i);
        }
    });
}

/// RAII bracket: tracks `class` as held until the token drops. Declare
/// the token immediately *before* taking the real guard so the tracked
/// window covers the guard's lifetime.
pub fn track(class: Class) -> LockToken {
    on_acquire(class);
    LockToken { class }
}

/// See [`track`].
pub struct LockToken {
    class: Class,
}

impl Drop for LockToken {
    fn drop(&mut self) {
        on_release(self.class);
    }
}

/// Snapshot of the recorded acquisition-order edges.
pub fn edges() -> Vec<(Class, Class)> {
    edges_cell().lock().iter().copied().collect()
}

/// Snapshot of every lock class acquired so far (nested or not).
pub fn classes() -> Vec<Class> {
    classes_cell().lock().iter().copied().collect()
}

/// Clear all recorded state (between independent test scenarios).
pub fn reset() {
    edges_cell().lock().clear();
    classes_cell().lock().clear();
}

/// Detect cycles in the acquisition-order graph. Each cycle is
/// returned as the list of classes along it (first node repeated at
/// the end), deduplicated by node set.
pub fn cycles() -> Vec<Vec<Class>> {
    let edge_list = edges();
    let mut adj: BTreeMap<Class, Vec<Class>> = BTreeMap::new();
    for (a, b) in &edge_list {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default();
    }
    let mut found: Vec<Vec<Class>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<Class>> = BTreeSet::new();
    let nodes: Vec<Class> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack: Vec<Class> = Vec::new();
        dfs(start, &adj, &mut stack, &mut found, &mut seen_sets);
    }
    found
}

fn dfs(
    node: Class,
    adj: &BTreeMap<Class, Vec<Class>>,
    stack: &mut Vec<Class>,
    found: &mut Vec<Vec<Class>>,
    seen_sets: &mut BTreeSet<Vec<Class>>,
) {
    if let Some(i) = stack.iter().position(|&n| n == node) {
        // Back edge: stack[i..] is a cycle.
        let mut cycle: Vec<Class> = stack[i..].to_vec();
        let mut key = cycle.clone();
        key.sort_unstable();
        if seen_sets.insert(key) {
            cycle.push(node);
            found.push(cycle);
        }
        return;
    }
    // Bound the walk: a class can appear once per path.
    stack.push(node);
    if let Some(next) = adj.get(node) {
        for &n in next {
            dfs(n, adj, stack, found, seen_sets);
        }
    }
    stack.pop();
}

/// A mutex whose acquisitions feed the lock-order graph.
pub struct TrackedMutex<T> {
    class: Class,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Wrap `value` in a tracked mutex of class `class`.
    pub fn new(class: Class, value: T) -> TrackedMutex<T> {
        TrackedMutex {
            class,
            inner: Mutex::new(value),
        }
    }

    /// Lock, recording the acquisition.
    pub fn lock(&self) -> TrackedGuard<MutexGuard<'_, T>> {
        let token = track(self.class);
        TrackedGuard {
            _token: token,
            guard: self.inner.lock(),
        }
    }
}

/// A reader-writer lock whose acquisitions feed the lock-order graph.
pub struct TrackedRwLock<T> {
    class: Class,
    inner: RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Wrap `value` in a tracked rwlock of class `class`.
    pub fn new(class: Class, value: T) -> TrackedRwLock<T> {
        TrackedRwLock {
            class,
            inner: RwLock::new(value),
        }
    }

    /// Shared lock, recording the acquisition.
    pub fn read(&self) -> TrackedGuard<RwLockReadGuard<'_, T>> {
        let token = track(self.class);
        TrackedGuard {
            _token: token,
            guard: self.inner.read(),
        }
    }

    /// Exclusive lock, recording the acquisition.
    pub fn write(&self) -> TrackedGuard<RwLockWriteGuard<'_, T>> {
        let token = track(self.class);
        TrackedGuard {
            _token: token,
            guard: self.inner.write(),
        }
    }
}

/// Guard pairing the real lock guard with its tracking token.
pub struct TrackedGuard<G> {
    _token: LockToken,
    guard: G,
}

impl<G: Deref> Deref for TrackedGuard<G> {
    type Target = G::Target;
    fn deref(&self) -> &G::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for TrackedGuard<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The graph is process-global; serialize tests that reset it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static G: StdMutex<()> = StdMutex::new(());
        G.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn nested_acquisition_records_edge() {
        let _g = guard();
        reset();
        let a = TrackedMutex::new("test1::a", 0u32);
        let b = TrackedMutex::new("test1::b", 0u32);
        {
            let _ga = a.lock();
            let mut gb = b.lock();
            *gb += 1;
        }
        assert!(edges().contains(&("test1::a", "test1::b")));
        assert!(cycles().is_empty());
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let _g = guard();
        reset();
        let a = TrackedRwLock::new("test2::a", ());
        let b = TrackedRwLock::new("test2::b", ());
        {
            let _ga = a.read();
            let _gb = b.read();
        }
        {
            let _gb = b.write();
            let _ga = a.write();
        }
        let cys = cycles();
        assert_eq!(cys.len(), 1, "{cys:?}");
        assert!(cys[0].contains(&"test2::a") && cys[0].contains(&"test2::b"));
        // First node repeats at the end.
        assert_eq!(cys[0].first(), cys[0].last());
    }

    #[test]
    fn self_edges_are_ignored() {
        let _g = guard();
        reset();
        // Same class twice (like two window parts): no edge, no cycle.
        let a1 = TrackedMutex::new("test3::part", 0u32);
        let a2 = TrackedMutex::new("test3::part", 0u32);
        {
            let _g1 = a1.lock();
            let _g2 = a2.lock();
        }
        assert!(edges().is_empty());
        assert!(cycles().is_empty());
    }

    #[test]
    fn release_unwinds_held_stack() {
        let _g = guard();
        reset();
        let a = TrackedMutex::new("test4::a", ());
        let b = TrackedMutex::new("test4::b", ());
        {
            let _ga = a.lock();
        }
        {
            // `a` no longer held: no a→b edge.
            let _gb = b.lock();
        }
        assert!(edges().is_empty());
    }

    #[test]
    fn three_way_cycle_detected() {
        let _g = guard();
        reset();
        on_acquire("t5::a");
        on_acquire("t5::b");
        on_release("t5::b");
        on_release("t5::a");
        on_acquire("t5::b");
        on_acquire("t5::c");
        on_release("t5::c");
        on_release("t5::b");
        on_acquire("t5::c");
        on_acquire("t5::a");
        on_release("t5::a");
        on_release("t5::c");
        let cys = cycles();
        assert_eq!(cys.len(), 1, "{cys:?}");
        assert_eq!(cys[0].len(), 4); // a, b, c + repeat
    }
}
