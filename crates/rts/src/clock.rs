//! Per-rank vector clocks for happens-before analysis (the `analyze`
//! feature) and causal span ordering (the `obs` feature).
//!
//! Every collective a rank completes — barrier, broadcast, gather,
//! scatter, all-to-all, survivor barrier — advances that rank's
//! component of a domain-wide vector clock and joins it with every
//! other participant's clock (the exchange rides dedicated reserved
//! tags, raw sends only, so it cannot recurse into the collectives it
//! observes). A membership epoch change also ticks the clock: crossing
//! an epoch is an ordering event even when no data moves.
//!
//! The clock state lives in a thread-local [`ClockWitness`], matching
//! the SPMD model (each computing thread owns exactly one rank). The
//! witness is what instrumented code above the RTS consults: an access
//! stamped with the witness's snapshot is happens-before-ordered after
//! everything that preceded the rank's last completed collective, and
//! concurrent with anything not yet joined. Because clocks advance
//! only on collectives and epoch changes — both deterministic under a
//! seeded fault plan — every snapshot replays bit-for-bit.

use crate::endpoint::Endpoint;
use crate::error::RtsResult;
use crate::{Tag, RESERVED_TAG_BASE};
use bytes::Bytes;
use std::cell::RefCell;

/// Clock snapshots travel rank → 0 on this tag.
pub const CLOCK_IN: Tag = RESERVED_TAG_BASE + 9;
/// The joined clock travels 0 → rank on this tag.
pub const CLOCK_OUT: Tag = RESERVED_TAG_BASE + 10;

/// A vector clock: component `r` counts rank `r`'s completed ordering
/// events (collectives + epoch transitions).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct VClock(pub Vec<u64>);

impl VClock {
    /// The zero clock for a domain of `size` ranks.
    pub fn zero(size: usize) -> VClock {
        VClock(vec![0; size])
    }

    /// Advance `rank`'s component by one.
    pub fn tick(&mut self, rank: usize) {
        if rank >= self.0.len() {
            self.0.resize(rank + 1, 0);
        }
        self.0[rank] += 1;
    }

    /// Component-wise maximum with `other` (the happens-before join).
    pub fn join(&mut self, other: &VClock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, &theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(theirs);
        }
    }

    /// Whether `self` happens-before-or-equals `other` (every component
    /// ≤; missing components count as 0).
    pub fn leq(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &c)| c <= other.0.get(i).copied().unwrap_or(0))
    }

    /// Little-endian `u64` wire encoding.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.0.len() * 8);
        for &c in &self.0 {
            out.extend_from_slice(&c.to_le_bytes());
        }
        Bytes::from(out)
    }

    /// Inverse of [`VClock::encode`]; trailing partial words are
    /// dropped.
    pub fn decode(payload: &[u8]) -> VClock {
        let mut out = Vec::with_capacity(payload.len() / 8);
        for chunk in payload.chunks_exact(8) {
            let mut a = [0u8; 8];
            a.copy_from_slice(chunk);
            out.push(u64::from_le_bytes(a));
        }
        VClock(out)
    }
}

struct WitnessState {
    rank: usize,
    clock: VClock,
    last_epoch: u64,
}

thread_local! {
    static WITNESS: RefCell<Option<WitnessState>> = const { RefCell::new(None) };
}

/// The calling thread's clock witness. All methods are static: the
/// state is thread-local, lazily initialized by the rank's first
/// completed collective (or an explicit [`ClockWitness::init`]).
pub struct ClockWitness;

impl ClockWitness {
    /// Bind the calling thread to `rank` in a domain of `size` ranks,
    /// starting from the zero clock if the thread had no witness yet.
    pub fn init(rank: usize, size: usize) {
        WITNESS.with(|w| {
            let mut w = w.borrow_mut();
            match &mut *w {
                Some(s) => {
                    s.rank = rank;
                    if s.clock.0.len() < size {
                        s.clock.0.resize(size, 0);
                    }
                }
                None => {
                    *w = Some(WitnessState {
                        rank,
                        clock: VClock::zero(size),
                        last_epoch: 0,
                    });
                }
            }
        });
    }

    /// Snapshot of the calling thread's clock; empty if the thread has
    /// not completed any ordering event yet.
    pub fn snapshot() -> VClock {
        WITNESS.with(|w| {
            w.borrow()
                .as_ref()
                .map(|s| s.clock.clone())
                .unwrap_or_default()
        })
    }

    /// Advance the calling thread's own component (one ordering event).
    pub fn tick() {
        WITNESS.with(|w| {
            if let Some(s) = w.borrow_mut().as_mut() {
                let r = s.rank;
                s.clock.tick(r);
            }
        });
    }

    /// Observe the domain membership epoch; a change since the last
    /// observation is an ordering event and ticks the clock. Returns
    /// whether this observation crossed an epoch boundary.
    pub fn observe_epoch(epoch: u64) -> bool {
        WITNESS.with(|w| {
            if let Some(s) = w.borrow_mut().as_mut() {
                if s.last_epoch != epoch {
                    s.last_epoch = epoch;
                    let r = s.rank;
                    s.clock.tick(r);
                    return true;
                }
            }
            false
        })
    }

    /// Join `other` into the calling thread's clock (a receive).
    pub fn join(other: &VClock) {
        WITNESS.with(|w| {
            if let Some(s) = w.borrow_mut().as_mut() {
                s.clock.join(other);
            }
        });
    }

    /// Replace the calling thread's clock (adopting a collective join).
    fn set(clock: VClock) {
        WITNESS.with(|w| {
            if let Some(s) = w.borrow_mut().as_mut() {
                s.clock = clock;
            }
        });
    }

    /// Encoded snapshot for stamping an outgoing message.
    pub fn stamp_bytes() -> Bytes {
        ClockWitness::snapshot().encode()
    }

    /// Join an incoming message's clock stamp.
    pub fn join_bytes(payload: &[u8]) {
        ClockWitness::join(&VClock::decode(payload));
    }
}

#[inline]
fn is_live(dead: u64, rank: usize) -> bool {
    rank >= 64 || dead & (1u64 << rank) == 0
}

impl Endpoint {
    /// Advance and exchange vector clocks after a completed collective:
    /// every live rank ticks its own component, rank 0 joins all live
    /// clocks and re-distributes the join, and every live rank adopts
    /// it. Built on raw reserved-tag sends (like [`crate::verify`]) so
    /// it cannot recurse into the collectives it instruments. Lockstep:
    /// a rank has at most one clock exchange outstanding, so rounds
    /// cannot cross-match.
    pub fn clock_sync(&self, dead: u64) -> RtsResult<()> {
        let rank = self.rank();
        if !is_live(dead, rank) {
            return Ok(());
        }
        ClockWitness::init(rank, self.size());
        let epoch = self.membership().epoch();
        let crossed = ClockWitness::observe_epoch(epoch);
        #[cfg(feature = "obs")]
        if crossed {
            crate::obs::notify_epoch(rank, epoch);
        }
        #[cfg(not(feature = "obs"))]
        let _ = crossed;
        ClockWitness::tick();
        let live_others: Vec<usize> = (0..self.size())
            .filter(|&r| r != rank && is_live(dead, r))
            .collect();
        if live_others.is_empty() {
            return Ok(());
        }
        if rank == 0 {
            let mut joined = ClockWitness::snapshot();
            for _ in 0..live_others.len() {
                let m = self.recv_filtered(|m| m.tag == CLOCK_IN)?;
                joined.join(&VClock::decode(&m.payload));
            }
            let payload = joined.encode();
            for &to in &live_others {
                self.send_internal(to, CLOCK_OUT, payload.clone())?;
            }
            ClockWitness::set(joined);
        } else {
            self.send_internal(0, CLOCK_IN, ClockWitness::stamp_bytes())?;
            let m = self.recv_filtered(|m| m.from == 0 && m.tag == CLOCK_OUT)?;
            ClockWitness::set(VClock::decode(&m.payload));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, ReduceOp};

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VClock(vec![3, 0, 5]);
        a.join(&VClock(vec![1, 4]));
        assert_eq!(a.0, vec![3, 4, 5]);
        let mut short = VClock(vec![1]);
        short.join(&VClock(vec![0, 0, 9]));
        assert_eq!(short.0, vec![1, 0, 9]);
    }

    #[test]
    fn leq_orders_clocks() {
        assert!(VClock(vec![1, 2]).leq(&VClock(vec![1, 2, 0])));
        assert!(!VClock(vec![2, 0]).leq(&VClock(vec![1, 9])));
        assert!(VClock::default().leq(&VClock(vec![0])));
    }

    #[test]
    fn encode_decode_roundtrips() {
        let c = VClock(vec![7, 0, u64::MAX]);
        assert_eq!(VClock::decode(&c.encode()), c);
        assert_eq!(VClock::decode(b""), VClock::default());
    }

    #[test]
    fn collectives_advance_all_components() {
        let results = Domain::run(3, |ep| {
            ep.barrier();
            let _ = ep.allreduce_scalar(1.0, ReduceOp::Sum).unwrap();
            ep.barrier();
            ClockWitness::snapshot()
        });
        // barrier + (reduce→broadcast sync) + barrier = 3 syncs; every
        // rank adopted the same join each time.
        for r in &results {
            assert_eq!(r.0, vec![3, 3, 3], "{results:?}");
        }
    }

    #[test]
    fn clocks_replay_deterministically() {
        let run = || {
            Domain::run(2, |ep| {
                for _ in 0..5 {
                    ep.barrier();
                }
                let _ = ep
                    .broadcast(0, (ep.rank() == 0).then(|| Bytes::from_static(b"x")))
                    .unwrap();
                ClockWitness::snapshot()
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn epoch_change_ticks_clock() {
        let results = Domain::run(2, |ep| {
            ep.barrier();
            let before = ClockWitness::snapshot();
            if true {
                // Observe a synthetic epoch bump without a collective.
                ClockWitness::observe_epoch(ep.membership().epoch() + 1);
            }
            (before, ClockWitness::snapshot())
        });
        for (rank, (before, after)) in results.into_iter().enumerate() {
            assert_eq!(after.0[rank], before.0[rank] + 1);
        }
    }
}
