//! # pardis-rts — the PARDIS generic run-time system interface
//!
//! PARDIS does not talk to a parallel application's computing threads
//! directly; it goes through a *generic run-time system interface* that
//! "encompasses the functionality of message-passing libraries" (§2.3 of
//! the paper — tested there against MPI and Tulip). This crate is that
//! interface plus an in-process implementation: a [`Domain`] of `n`
//! ranks, each an OS thread holding an [`Endpoint`], communicating over
//! lock-free channels — the moral equivalent of MPICH compiled for
//! shared memory, which is exactly how the paper ran its client and
//! server machines.
//!
//! The interface surface is deliberately MPI-shaped:
//!
//! * point-to-point [`Endpoint::send`] / [`Endpoint::recv`] with
//!   `(source, tag)` matching,
//! * collectives: barrier, broadcast, gather(v), scatter(v), allgather,
//!   allreduce, alltoallv,
//! * all collectives use linear (root-relayed) algorithms, matching
//!   mid-90s MPICH behaviour on small SMPs — this is what makes the cost
//!   of the centralized method's gather/scatter grow with thread count,
//!   the effect Table 1 of the paper measures.
//!
//! ```
//! use pardis_rts::Domain;
//!
//! let eps = Domain::new(4);
//! let handles: Vec<_> = eps
//!     .into_iter()
//!     .map(|ep| {
//!         std::thread::spawn(move || {
//!             // Every rank contributes rank*10; rank 0 gathers.
//!             let mine = vec![(ep.rank() as f64) * 10.0];
//!             let all = ep.gather_f64(0, &mine).unwrap();
//!             if ep.rank() == 0 {
//!                 assert_eq!(all.unwrap(), vec![0.0, 10.0, 20.0, 30.0]);
//!             }
//!             ep.barrier();
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! ```

#[cfg(any(feature = "analyze", feature = "obs"))]
pub mod clock;
pub mod collectives;
pub mod domain;
pub mod endpoint;
pub mod error;
#[cfg(feature = "analyze")]
pub mod lockgraph;
pub mod membership;
#[cfg(feature = "obs")]
pub mod obs;
pub mod reduce;
pub mod rma;
pub mod traits;
#[cfg(feature = "analyze")]
pub mod verify;

pub use domain::Domain;
pub use endpoint::{Endpoint, Message};
pub use error::{RtsError, RtsResult};
pub use membership::{Liveness, Membership, MembershipView, PhiDetector};
pub use reduce::ReduceOp;
pub use rma::Window;
pub use traits::RtsComm;

/// Message tag: distinguishes independent conversations between the same
/// pair of ranks, exactly as in MPI.
pub type Tag = u32;

/// Tags at or above this value are reserved for internal use by the
/// collective algorithms; user code must stay below it.
pub const RESERVED_TAG_BASE: Tag = 0xF000_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_base_leaves_user_space() {
        const { assert!(RESERVED_TAG_BASE > 1_000_000) };
    }
}
