//! Error type for the run-time system interface.

use std::fmt;

/// Result alias used throughout the crate.
pub type RtsResult<T> = Result<T, RtsError>;

/// Errors raised by RTS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtsError {
    /// A rank argument was out of range for the domain.
    BadRank { rank: usize, size: usize },
    /// A peer endpoint was dropped while we were sending to or receiving
    /// from it (the parallel program is tearing down unevenly).
    Disconnected { peer: usize },
    /// A user tag collided with the reserved internal tag space.
    ReservedTag(crate::Tag),
    /// Counts passed to a v-collective did not match the domain size.
    BadCounts { expected: usize, got: usize },
    /// Buffer lengths disagreed with the counts metadata.
    LengthMismatch { expected: usize, got: usize },
    /// The collective-consistency verifier detected that one computing
    /// thread issued a different collective call than the others: the
    /// divergence that would otherwise be a silent deadlock. `thread`
    /// is the first divergent rank; `mine`/`theirs` describe the two
    /// call sites (the reference rank's and the divergent rank's).
    CollectiveMismatch {
        thread: usize,
        mine: String,
        theirs: String,
    },
    /// A collective was asked to involve a rank the domain membership
    /// has confirmed dead — either the caller itself (it must stop
    /// participating) or the collective's root (survivors would block
    /// forever on its relay).
    DeadRank { rank: usize },
    /// An internal invariant failed (a bug in the RTS or its caller,
    /// surfaced as an error instead of a panic on library paths).
    Internal(String),
}

impl fmt::Display for RtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtsError::BadRank { rank, size } => {
                write!(f, "rank {rank} out of range for domain of size {size}")
            }
            RtsError::Disconnected { peer } => {
                write!(f, "peer rank {peer} disconnected")
            }
            RtsError::ReservedTag(t) => {
                write!(f, "tag {t:#x} lies in the reserved internal tag space")
            }
            RtsError::BadCounts { expected, got } => {
                write!(f, "expected {expected} per-rank counts, got {got}")
            }
            RtsError::LengthMismatch { expected, got } => {
                write!(f, "buffer length {got} does not match expected {expected}")
            }
            RtsError::CollectiveMismatch {
                thread,
                mine,
                theirs,
            } => {
                write!(
                    f,
                    "collective mismatch: thread {thread} issued {theirs} while this \
                     thread issued {mine}; an SPMD invocation must be called by all \
                     computing threads in the same order"
                )
            }
            RtsError::DeadRank { rank } => {
                write!(
                    f,
                    "rank {rank} has been confirmed dead by the domain membership"
                )
            }
            RtsError::Internal(msg) => write!(f, "internal runtime error: {msg}"),
        }
    }
}

impl std::error::Error for RtsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ranks() {
        let e = RtsError::BadRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));
        assert!(e.to_string().contains("size 4"));
    }
}
