//! Error type for the run-time system interface.

use std::fmt;

/// Result alias used throughout the crate.
pub type RtsResult<T> = Result<T, RtsError>;

/// Errors raised by RTS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtsError {
    /// A rank argument was out of range for the domain.
    BadRank { rank: usize, size: usize },
    /// A peer endpoint was dropped while we were sending to or receiving
    /// from it (the parallel program is tearing down unevenly).
    Disconnected { peer: usize },
    /// A user tag collided with the reserved internal tag space.
    ReservedTag(crate::Tag),
    /// Counts passed to a v-collective did not match the domain size.
    BadCounts { expected: usize, got: usize },
    /// Buffer lengths disagreed with the counts metadata.
    LengthMismatch { expected: usize, got: usize },
}

impl fmt::Display for RtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtsError::BadRank { rank, size } => {
                write!(f, "rank {rank} out of range for domain of size {size}")
            }
            RtsError::Disconnected { peer } => {
                write!(f, "peer rank {peer} disconnected")
            }
            RtsError::ReservedTag(t) => {
                write!(f, "tag {t:#x} lies in the reserved internal tag space")
            }
            RtsError::BadCounts { expected, got } => {
                write!(f, "expected {expected} per-rank counts, got {got}")
            }
            RtsError::LengthMismatch { expected, got } => {
                write!(f, "buffer length {got} does not match expected {expected}")
            }
        }
    }
}

impl std::error::Error for RtsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ranks() {
        let e = RtsError::BadRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));
        assert!(e.to_string().contains("size 4"));
    }
}
