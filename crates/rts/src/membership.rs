//! SPMD membership: who is alive, and since when.
//!
//! The paper's delivery contract — a request is satisfied only when
//! delivered to *all* computing threads (§3.2) — makes a permanently
//! dead rank fatal unless the domain can agree on a smaller set of
//! participants. [`Membership`] is that agreement: a domain-shared,
//! lock-free record of which ranks are confirmed dead, versioned by a
//! monotonically increasing **epoch**. Collectives consult the dead
//! mask once per call and complete over the survivor set; when the mask
//! is zero (the default, and the only state a healthy domain ever
//! sees), every code path is identical to the pre-membership runtime —
//! zero overhead on the hot path.
//!
//! Dead ranks are *promoted*, never resurrected: a rank that has been
//! confirmed dead stays dead for the life of the domain, and each
//! confirmation bumps the epoch. Rank 0 — the communicating thread in
//! the ORB layer above — is assumed to survive; its death is machine
//! death, not degraded operation (documented limitation).
//!
//! Confirmation comes from one of two sources:
//!
//! * a **scheduled death** (`pardis-net`'s `ThreadDeath` fault): every
//!   rank reads the same seeded plan and applies it at the same logical
//!   step, so replay is bit-for-bit;
//! * the [`PhiDetector`]: a seeded, deterministic, logical-step-driven
//!   accrual failure detector in the spirit of Hayashibara's φ
//!   detector, for silence that was not scheduled. It is driven by
//!   steps, not wall clock, so the same heartbeat trace always yields
//!   the same suspicion curve.

use std::sync::atomic::{AtomicU64, Ordering};

/// Largest domain the membership bitmask can track.
pub const MAX_RANKS: usize = 64;

/// A point-in-time snapshot of the membership state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipView {
    /// Epoch at the time of the snapshot. Starts at 0; each confirmed
    /// death increments it.
    pub epoch: u64,
    /// Bitmask of confirmed-dead ranks (bit `r` = rank `r` dead).
    pub dead_mask: u64,
}

impl MembershipView {
    /// Whether `rank` is confirmed dead in this view.
    pub fn is_dead(&self, rank: usize) -> bool {
        rank < MAX_RANKS && self.dead_mask & (1u64 << rank) != 0
    }

    /// The ranks still alive, ascending, out of a domain of `size`.
    pub fn survivors(&self, size: usize) -> Vec<usize> {
        (0..size).filter(|&r| !self.is_dead(r)).collect()
    }

    /// The confirmed-dead ranks, ascending, out of a domain of `size`.
    pub fn dead(&self, size: usize) -> Vec<usize> {
        (0..size).filter(|&r| self.is_dead(r)).collect()
    }
}

/// Domain-shared membership record. One per [`crate::Domain`], shared
/// by every [`crate::Endpoint`] through an `Arc`.
#[derive(Debug)]
pub struct Membership {
    size: usize,
    epoch: AtomicU64,
    dead: AtomicU64,
}

impl Membership {
    /// Fresh membership for an `n`-rank domain: everyone alive, epoch 0.
    pub fn new(size: usize) -> Membership {
        Membership {
            size,
            epoch: AtomicU64::new(0),
            dead: AtomicU64::new(0),
        }
    }

    /// Domain size this membership tracks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current epoch (0 until the first confirmed death).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Current dead mask; 0 means a fully healthy domain.
    #[inline]
    pub fn dead_mask(&self) -> u64 {
        self.dead.load(Ordering::Acquire)
    }

    /// Whether `rank` is confirmed dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.view().is_dead(rank)
    }

    /// Consistent snapshot of `(epoch, dead_mask)`.
    pub fn view(&self) -> MembershipView {
        // Read epoch after the mask: mark_dead stores the mask first,
        // so an epoch observed here is never newer than the mask.
        let dead_mask = self.dead.load(Ordering::Acquire);
        let epoch = self.epoch.load(Ordering::Acquire);
        MembershipView { epoch, dead_mask }
    }

    /// Confirm `rank` dead, bumping the epoch if it was alive until
    /// now. Returns the epoch in force after the call. Idempotent —
    /// every rank of the domain applies the same verdict, and only the
    /// first application bumps the epoch.
    ///
    /// Ranks outside the `u64` mask (>= [`MAX_RANKS`]) and out-of-range
    /// ranks are ignored.
    pub fn mark_dead(&self, rank: usize) -> u64 {
        if rank >= self.size || rank >= MAX_RANKS {
            return self.epoch();
        }
        let bit = 1u64 << rank;
        let prev = self.dead.fetch_or(bit, Ordering::AcqRel);
        if prev & bit == 0 {
            self.epoch.fetch_add(1, Ordering::AcqRel) + 1
        } else {
            self.epoch()
        }
    }

    /// The ranks still alive, ascending.
    pub fn survivors(&self) -> Vec<usize> {
        self.view().survivors(self.size)
    }

    /// Number of live ranks.
    pub fn live_count(&self) -> usize {
        self.size - (self.dead_mask().count_ones() as usize).min(self.size)
    }
}

/// Liveness verdict of the [`PhiDetector`] for one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Heartbeats are arriving at the expected cadence.
    Alive,
    /// Suspiciously silent (φ past the suspicion threshold) but not yet
    /// condemned.
    Suspected,
    /// Silent past the confirmation threshold: promote to dead.
    ConfirmedDead,
}

#[derive(Debug, Clone, Copy)]
struct RankHealth {
    /// Step of the most recent heartbeat; `None` before the first.
    last: Option<u64>,
    /// Exponentially weighted mean inter-heartbeat interval, in steps.
    mean_interval: f64,
}

/// A seeded, deterministic, step-driven accrual failure detector.
///
/// φ for a rank is the elapsed logical time since its last heartbeat,
/// measured in units of its observed mean heartbeat interval. Crossing
/// [`PhiDetector::suspect_threshold`] makes the rank `Suspected`;
/// crossing twice that confirms it dead. Because the clock is a logical
/// step counter supplied by the caller — not wall time — the same
/// heartbeat trace always produces the same verdicts, which is what
/// lets chaos tests replay bit-for-bit from a seed.
///
/// The seed deterministically staggers each rank's *initial* interval
/// estimate (before any heartbeats arrive), so a freshly started domain
/// does not condemn every quiet rank on the same step — mirroring the
/// per-flow jitter of the `pardis-net` fault scheduler.
#[derive(Debug)]
pub struct PhiDetector {
    threshold: f64,
    ranks: Vec<RankHealth>,
}

/// SplitMix64 finalizer — same mixer as the `pardis-net` fault layer,
/// reimplemented here so `pardis-rts` keeps zero workspace
/// dependencies.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl PhiDetector {
    /// Default suspicion threshold, in mean-interval units.
    pub const DEFAULT_THRESHOLD: f64 = 8.0;

    /// Detector for `size` ranks. `seed` staggers the initial interval
    /// estimates deterministically.
    pub fn new(seed: u64, size: usize) -> PhiDetector {
        PhiDetector::with_threshold(seed, size, PhiDetector::DEFAULT_THRESHOLD)
    }

    /// Detector with an explicit suspicion threshold (confirmation is
    /// always at twice the suspicion threshold).
    pub fn with_threshold(seed: u64, size: usize, threshold: f64) -> PhiDetector {
        let ranks = (0..size)
            .map(|r| RankHealth {
                last: None,
                // 1.0 ± up to 1/8 of a step, as a pure function of
                // (seed, rank).
                mean_interval: 1.0 + (mix(seed ^ r as u64) % 256) as f64 / 2048.0,
            })
            .collect();
        PhiDetector { threshold, ranks }
    }

    /// The suspicion threshold in force.
    pub fn suspect_threshold(&self) -> f64 {
        self.threshold
    }

    /// Record a heartbeat from `rank` at logical `step`.
    pub fn heartbeat(&mut self, rank: usize, step: u64) {
        let Some(h) = self.ranks.get_mut(rank) else {
            return;
        };
        if let Some(last) = h.last {
            let interval = step.saturating_sub(last).max(1) as f64;
            // EWMA with alpha 1/4: stable cadence estimate, still
            // adapts if a rank legitimately slows down.
            h.mean_interval += (interval - h.mean_interval) / 4.0;
        }
        h.last = Some(h.last.map_or(step, |l| l.max(step)));
    }

    /// The accrual suspicion value for `rank` at logical `now`: elapsed
    /// steps since its last heartbeat, in mean-interval units.
    pub fn phi(&self, rank: usize, now: u64) -> f64 {
        let Some(h) = self.ranks.get(rank) else {
            return 0.0;
        };
        // Never heard from: measure from step 0 so a rank that was
        // dead on arrival is still condemned.
        let last = h.last.unwrap_or(0);
        now.saturating_sub(last) as f64 / h.mean_interval.max(1e-9)
    }

    /// Verdict for `rank` at logical `now`.
    pub fn status(&self, rank: usize, now: u64) -> Liveness {
        let phi = self.phi(rank, now);
        if phi >= self.threshold * 2.0 {
            Liveness::ConfirmedDead
        } else if phi >= self.threshold {
            Liveness::Suspected
        } else {
            Liveness::Alive
        }
    }

    /// Evaluate every rank at logical `now` and promote the confirmed
    /// dead into `membership`. Returns the ranks newly confirmed dead
    /// on this call, ascending.
    pub fn promote(&self, membership: &Membership, now: u64) -> Vec<usize> {
        let mut newly = Vec::new();
        for rank in 0..self.ranks.len() {
            if membership.is_dead(rank) {
                continue;
            }
            if self.status(rank, now) == Liveness::ConfirmedDead {
                membership.mark_dead(rank);
                newly.push(rank);
            }
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_membership_is_fully_live() {
        let m = Membership::new(4);
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.dead_mask(), 0);
        assert_eq!(m.survivors(), vec![0, 1, 2, 3]);
        assert_eq!(m.live_count(), 4);
    }

    #[test]
    fn mark_dead_bumps_epoch_once() {
        let m = Membership::new(4);
        assert_eq!(m.mark_dead(2), 1);
        assert_eq!(m.mark_dead(2), 1); // idempotent
        assert_eq!(m.mark_dead(3), 2);
        assert!(m.is_dead(2));
        assert!(m.is_dead(3));
        assert!(!m.is_dead(0));
        assert_eq!(m.survivors(), vec![0, 1]);
        assert_eq!(m.view().dead(4), vec![2, 3]);
        assert_eq!(m.live_count(), 2);
    }

    #[test]
    fn out_of_range_ranks_ignored() {
        let m = Membership::new(2);
        assert_eq!(m.mark_dead(7), 0);
        assert_eq!(m.mark_dead(400), 0);
        assert_eq!(m.dead_mask(), 0);
    }

    #[test]
    fn view_is_consistent() {
        let m = Membership::new(3);
        m.mark_dead(1);
        let v = m.view();
        assert_eq!(v.epoch, 1);
        assert!(v.is_dead(1));
        assert_eq!(v.survivors(3), vec![0, 2]);
    }

    #[test]
    fn detector_keeps_heartbeating_rank_alive() {
        let mut d = PhiDetector::new(0xBEEF, 2);
        for step in 0..100 {
            d.heartbeat(0, step);
            d.heartbeat(1, step);
        }
        assert_eq!(d.status(0, 100), Liveness::Alive);
        assert_eq!(d.status(1, 100), Liveness::Alive);
        assert!(d.phi(0, 100) < d.suspect_threshold());
    }

    #[test]
    fn silence_escalates_to_suspected_then_confirmed() {
        let mut d = PhiDetector::new(0xBEEF, 2);
        for step in 0..20 {
            d.heartbeat(0, step);
            d.heartbeat(1, step);
        }
        // Rank 1 goes silent after step 19; rank 0 keeps beating.
        let mut suspected_at = None;
        let mut confirmed_at = None;
        for step in 20..120 {
            d.heartbeat(0, step);
            match d.status(1, step) {
                Liveness::Suspected if suspected_at.is_none() => suspected_at = Some(step),
                Liveness::ConfirmedDead if confirmed_at.is_none() => confirmed_at = Some(step),
                _ => {}
            }
        }
        let s = suspected_at.expect("silent rank suspected");
        let c = confirmed_at.expect("silent rank confirmed dead");
        assert!(s < c, "suspicion precedes confirmation: {s} vs {c}");
        assert_eq!(d.status(0, 119), Liveness::Alive);
    }

    #[test]
    fn detector_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut d = PhiDetector::new(seed, 3);
            let mut verdicts = Vec::new();
            for step in 0..60 {
                d.heartbeat(0, step);
                if step < 15 {
                    d.heartbeat(1, step);
                }
                // Rank 2 never beats.
                verdicts.push((
                    d.phi(1, step).to_bits(),
                    d.phi(2, step).to_bits(),
                    d.status(1, step),
                    d.status(2, step),
                ));
            }
            verdicts
        };
        assert_eq!(run(0x5EED), run(0x5EED), "same seed, same trace");
        // Different seeds stagger the initial estimates: the
        // never-heard-from rank's phi curve differs bit-for-bit.
        let a = run(1);
        let b = run(2);
        assert_ne!(
            a.iter().map(|v| v.1).collect::<Vec<_>>(),
            b.iter().map(|v| v.1).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn detector_over_endpoint_layer_degrades_domain() {
        // Full pipeline over the endpoint layer: every rank replicates
        // a seeded detector, heartbeat flags are disseminated with an
        // allgather each logical step, a rank that goes silent is
        // promoted to confirmed-dead on every rank at the same step,
        // its epoch is published, and the survivors' collectives and
        // barrier complete over the survivor set.
        use crate::{Domain, ReduceOp};
        use bytes::Bytes;
        const DYING: usize = 2;
        const SILENT_FROM: u64 = 10;
        let results = Domain::run(4, |ep| {
            let mut det = PhiDetector::with_threshold(0x0DD_BA11, ep.size(), 3.0);
            let mut confirmed_step = None;
            for step in 0..400u64 {
                let beat = !(ep.rank() == DYING && step >= SILENT_FROM);
                let flags = ep.allgather_u64(beat as u64).unwrap();
                for (r, &f) in flags.iter().enumerate() {
                    if f == 1 {
                        det.heartbeat(r, step);
                    }
                }
                // Every rank evaluates its own deterministic replica;
                // the shared membership is promoted idempotently (the
                // first caller bumps the epoch, the rest find the bit
                // already set — promote's `newly` is therefore racy
                // across ranks and must not drive control flow here).
                if det.status(DYING, step) == Liveness::ConfirmedDead {
                    det.promote(ep.membership(), step);
                    confirmed_step = Some(step);
                    break;
                }
            }
            let confirmed = confirmed_step.expect("silent rank confirmed in time");
            let epoch = ep.membership().epoch();
            if ep.rank() == DYING {
                // Condemned: leave the domain without touching the
                // survivors' collectives.
                return (epoch, confirmed, None);
            }
            let sum = ep
                .allreduce_scalar(ep.rank() as f64, ReduceOp::Sum)
                .unwrap();
            ep.barrier();
            let data = (ep.rank() == 0).then(|| Bytes::from_static(b"degraded"));
            let b = ep.broadcast(0, data).unwrap();
            (epoch, confirmed, Some((sum, b.to_vec())))
        });
        let confirmed0 = results[0].1;
        for (rank, (epoch, confirmed, survivor)) in results.into_iter().enumerate() {
            assert_eq!(epoch, 1, "one death, one epoch bump");
            assert_eq!(confirmed, confirmed0, "all ranks agree on the step");
            if rank == DYING {
                assert!(survivor.is_none());
            } else {
                let (sum, b) = survivor.unwrap();
                assert_eq!(sum, 0.0 + 1.0 + 3.0);
                assert_eq!(b, b"degraded");
            }
        }
    }

    #[test]
    fn promote_feeds_membership_epochs() {
        let m = Membership::new(3);
        let mut d = PhiDetector::with_threshold(7, 3, 4.0);
        for step in 0..10 {
            for r in 0..3 {
                d.heartbeat(r, step);
            }
        }
        // Rank 2 dies; the others keep beating until phi condemns it.
        let mut newly = Vec::new();
        for step in 10..200 {
            d.heartbeat(0, step);
            d.heartbeat(1, step);
            newly.extend(d.promote(&m, step));
        }
        assert_eq!(newly, vec![2]);
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.survivors(), vec![0, 1]);
        // Re-promotion is a no-op (evaluated while 0 and 1 are still
        // fresh — at a far-future step they would be condemned too).
        assert!(d.promote(&m, 199).is_empty());
        assert_eq!(m.epoch(), 1);
    }
}
