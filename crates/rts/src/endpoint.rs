//! Per-rank communication endpoint.
//!
//! An [`Endpoint`] is one rank's handle on its [`crate::Domain`]: it can
//! send to any peer, receive with MPI-style `(source, tag)` matching, and
//! participate in collectives. Endpoints are `Send` (each computing
//! thread owns one) but not `Sync` — like an `MPI_Comm` rank, it belongs
//! to exactly one thread.

use crate::error::{RtsError, RtsResult};
use crate::membership::Membership;
use crate::Tag;
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::{Arc, Barrier};

/// An in-flight message: source rank, tag, payload.
#[derive(Debug, Clone)]
pub struct Message {
    /// Rank that sent the message.
    pub from: usize,
    /// User- or collective-assigned tag.
    pub tag: Tag,
    /// The payload. `Bytes` so intra-machine transfers are refcounted,
    /// not copied — shared-memory MPICH semantics.
    pub payload: Bytes,
}

/// One rank's handle on a domain.
pub struct Endpoint {
    rank: usize,
    /// Senders to every rank's inbox (including our own, for self-sends).
    peers: Vec<Sender<Message>>,
    /// Our inbox.
    inbox: Receiver<Message>,
    /// Messages received but not yet matched by a `recv` call
    /// (out-of-order arrivals under (source, tag) matching).
    pending: RefCell<VecDeque<Message>>,
    /// Domain-wide barrier (used only while every rank is alive).
    barrier: Arc<Barrier>,
    /// Domain-shared membership record: which ranks are confirmed dead,
    /// versioned by epoch. Mask 0 — the healthy case — keeps every code
    /// path identical to the membership-free runtime.
    membership: Arc<Membership>,
    /// Collective sequence number for the consistency verifier: counts
    /// how many [`crate::verify`] agreements this rank has entered.
    #[cfg(feature = "analyze")]
    verify_seq: std::cell::Cell<u64>,
}

impl Endpoint {
    pub(crate) fn new(
        rank: usize,
        peers: Vec<Sender<Message>>,
        inbox: Receiver<Message>,
        barrier: Arc<Barrier>,
        membership: Arc<Membership>,
    ) -> Endpoint {
        Endpoint {
            rank,
            peers,
            inbox,
            pending: RefCell::new(VecDeque::new()),
            barrier,
            membership,
            #[cfg(feature = "analyze")]
            verify_seq: std::cell::Cell::new(0),
        }
    }

    /// Advance and return this rank's collective sequence number.
    #[cfg(feature = "analyze")]
    pub(crate) fn next_verify_seq(&self) -> u64 {
        let seq = self.verify_seq.get();
        self.verify_seq.set(seq + 1);
        seq
    }

    /// This endpoint's rank in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the domain.
    #[inline]
    pub fn size(&self) -> usize {
        self.peers.len()
    }

    fn check_rank(&self, rank: usize) -> RtsResult<()> {
        if rank >= self.size() {
            Err(RtsError::BadRank {
                rank,
                size: self.size(),
            })
        } else {
            Ok(())
        }
    }

    fn check_user_tag(&self, tag: Tag) -> RtsResult<()> {
        if tag >= crate::RESERVED_TAG_BASE {
            Err(RtsError::ReservedTag(tag))
        } else {
            Ok(())
        }
    }

    /// Send `payload` to rank `to` with `tag`. Asynchronous and always
    /// buffered (channels are unbounded); completion semantics of large
    /// network sends are modeled at the `pardis-net` layer, not here —
    /// intra-machine shared-memory sends really are buffered copies.
    pub fn send(&self, to: usize, tag: Tag, payload: Bytes) -> RtsResult<()> {
        self.check_rank(to)?;
        self.check_user_tag(tag)?;
        self.send_internal(to, tag, payload)
    }

    pub(crate) fn send_internal(&self, to: usize, tag: Tag, payload: Bytes) -> RtsResult<()> {
        self.peers[to]
            .send(Message {
                from: self.rank,
                tag,
                payload,
            })
            .map_err(|_| RtsError::Disconnected { peer: to })
    }

    /// Receive the next message matching `(from, tag)`, blocking until
    /// one arrives. Messages that do not match are buffered for later
    /// `recv` calls, preserving arrival order per (source, tag) pair —
    /// MPI's non-overtaking guarantee.
    pub fn recv(&self, from: usize, tag: Tag) -> RtsResult<Bytes> {
        self.check_rank(from)?;
        self.recv_filtered(|m| m.from == from && m.tag == tag)
            .map(|m| m.payload)
    }

    /// Receive the next message with `tag` from any source.
    pub fn recv_any(&self, tag: Tag) -> RtsResult<Message> {
        self.recv_filtered(|m| m.tag == tag)
    }

    /// Receive the next message regardless of source or tag.
    pub fn recv_any_message(&self) -> RtsResult<Message> {
        self.recv_filtered(|_| true)
    }

    /// Non-blocking probe: return a matching message if one is already
    /// available. Used by servers that interrupt their computation to
    /// look for outstanding requests (paper §2.1).
    pub fn try_recv(&self, from: usize, tag: Tag) -> RtsResult<Option<Bytes>> {
        self.check_rank(from)?;
        self.drain_inbox();
        let mut pending = self.pending.borrow_mut();
        if let Some(idx) = pending.iter().position(|m| m.from == from && m.tag == tag) {
            return match pending.remove(idx) {
                Some(m) => Ok(Some(m.payload)),
                None => Err(RtsError::Internal("pending index vanished".into())),
            };
        }
        Ok(None)
    }

    fn drain_inbox(&self) {
        let mut pending = self.pending.borrow_mut();
        while let Ok(m) = self.inbox.try_recv() {
            pending.push_back(m);
        }
    }

    pub(crate) fn recv_filtered(&self, pred: impl Fn(&Message) -> bool) -> RtsResult<Message> {
        // First look at buffered out-of-order messages.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(idx) = pending.iter().position(&pred) {
                return pending
                    .remove(idx)
                    .ok_or_else(|| RtsError::Internal("pending index vanished".into()));
            }
        }
        // Then block on the inbox, buffering non-matches.
        loop {
            let m = self
                .inbox
                .recv()
                .map_err(|_| RtsError::Disconnected { peer: usize::MAX })?;
            if pred(&m) {
                return Ok(m);
            }
            self.pending.borrow_mut().push_back(m);
        }
    }

    /// The domain's membership record (dead mask + epoch).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Snapshot of the confirmed-dead bitmask; 0 on a healthy domain.
    #[inline]
    pub fn dead_mask(&self) -> u64 {
        self.membership.dead_mask()
    }

    /// Whether `rank` is confirmed dead in the domain membership.
    pub fn is_rank_dead(&self, rank: usize) -> bool {
        self.membership.is_dead(rank)
    }

    /// Block until every *live* rank in the domain reaches the barrier.
    ///
    /// While every rank is alive this is the plain `std` barrier. Once
    /// the membership records a death, the `Arc<Barrier>` (whose count
    /// includes the dead) would wait forever, so the domain switches to
    /// a software survivor barrier relayed through rank 0 — rank 0 is
    /// assumed alive (its death is machine death at the layer above).
    pub fn barrier(&self) {
        let dead = self.membership.dead_mask();
        #[cfg(feature = "analyze")]
        let _wait = crate::lockgraph::collective_enter("barrier");
        #[cfg(feature = "obs")]
        let obs_start = std::time::Instant::now();
        if dead == 0 {
            self.barrier.wait();
        } else {
            // A disconnect here means a peer exited without a recorded
            // death — teardown, not degraded operation. Returning is
            // the least-harm option; collectives after it will report
            // the disconnect as a typed error.
            let _ = self.survivor_barrier(dead);
        }
        #[cfg(any(feature = "analyze", feature = "obs"))]
        let _ = self.clock_sync(dead);
        #[cfg(feature = "obs")]
        crate::obs::notify_collective(
            "barrier",
            self.rank(),
            obs_start.elapsed().as_nanos() as u64,
        );
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    fn run_on_all<F>(n: usize, f: F)
    where
        F: Fn(Endpoint) + Send + Sync + Clone + 'static,
    {
        let eps = Domain::new(n);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let f = f.clone();
                std::thread::spawn(move || f(ep))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn ping_pong() {
        run_on_all(2, |ep| {
            if ep.rank() == 0 {
                ep.send(1, 7, Bytes::from_static(b"ping")).unwrap();
                let r = ep.recv(1, 8).unwrap();
                assert_eq!(&r[..], b"pong");
            } else {
                let r = ep.recv(0, 7).unwrap();
                assert_eq!(&r[..], b"ping");
                ep.send(0, 8, Bytes::from_static(b"pong")).unwrap();
            }
        });
    }

    #[test]
    fn tag_matching_reorders() {
        run_on_all(2, |ep| {
            if ep.rank() == 0 {
                // Send tag 2 first, then tag 1.
                ep.send(1, 2, Bytes::from_static(b"second")).unwrap();
                ep.send(1, 1, Bytes::from_static(b"first")).unwrap();
            } else {
                // Receive tag 1 first even though tag 2 arrived first.
                assert_eq!(&ep.recv(0, 1).unwrap()[..], b"first");
                assert_eq!(&ep.recv(0, 2).unwrap()[..], b"second");
            }
        });
    }

    #[test]
    fn non_overtaking_same_tag() {
        run_on_all(2, |ep| {
            if ep.rank() == 0 {
                for i in 0..50u8 {
                    ep.send(1, 3, Bytes::from(vec![i])).unwrap();
                }
            } else {
                for i in 0..50u8 {
                    assert_eq!(ep.recv(0, 3).unwrap()[0], i);
                }
            }
        });
    }

    #[test]
    fn self_send() {
        run_on_all(1, |ep| {
            ep.send(0, 9, Bytes::from_static(b"me")).unwrap();
            assert_eq!(&ep.recv(0, 9).unwrap()[..], b"me");
        });
    }

    #[test]
    fn try_recv_nonblocking() {
        run_on_all(2, |ep| {
            if ep.rank() == 0 {
                ep.barrier(); // ensure rank1 already checked empty
                ep.send(1, 5, Bytes::from_static(b"x")).unwrap();
                ep.barrier();
            } else {
                assert_eq!(ep.try_recv(0, 5).unwrap(), None);
                ep.barrier();
                ep.barrier();
                // Message is now definitely in flight or delivered; poll.
                loop {
                    if let Some(b) = ep.try_recv(0, 5).unwrap() {
                        assert_eq!(&b[..], b"x");
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        });
    }

    #[test]
    fn recv_any_collects_all_sources() {
        run_on_all(4, |ep| {
            if ep.rank() == 0 {
                let mut seen = vec![false; 4];
                for _ in 0..3 {
                    let m = ep.recv_any(11).unwrap();
                    seen[m.from] = true;
                }
                assert_eq!(seen, vec![false, true, true, true]);
            } else {
                ep.send(0, 11, Bytes::from(vec![ep.rank() as u8])).unwrap();
            }
        });
    }

    #[test]
    fn bad_rank_rejected() {
        run_on_all(2, |ep| {
            assert!(matches!(
                ep.send(5, 0, Bytes::new()),
                Err(RtsError::BadRank { rank: 5, size: 2 })
            ));
            assert!(ep.recv(9, 0).is_err());
        });
    }

    #[test]
    fn reserved_tag_rejected() {
        run_on_all(1, |ep| {
            assert!(matches!(
                ep.send(0, crate::RESERVED_TAG_BASE, Bytes::new()),
                Err(RtsError::ReservedTag(_))
            ));
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let eps = Domain::new(4);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    ep.barrier();
                    // After the barrier every increment must be visible.
                    assert_eq!(counter.load(Ordering::SeqCst), 4);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
