//! Collective-consistency verification (the `analyze` feature).
//!
//! After `_spmd_bind`, every invocation on a distributed object must be
//! issued by **all** computing threads, in the same order, with the
//! same distribution templates (paper §2.2). A thread that diverges —
//! calls a different operation, skips one, or passes a differently
//! distributed argument — leaves the others blocked inside a gather or
//! barrier forever: a silent deadlock.
//!
//! This module turns that deadlock into a typed error. Before the
//! collective part of an invocation runs, every rank fingerprints its
//! call site (operation, transfer mode, argument shapes, sequence
//! number) and the ranks agree on the fingerprint over a dedicated
//! reserved tag pair: rank 0 collects all fingerprints, compares them
//! against its own, and broadcasts a verdict. On divergence, every
//! rank returns [`RtsError::CollectiveMismatch`] naming the divergent
//! thread and both call sites.
//!
//! The agreement itself must not use the high-level collectives (they
//! would re-enter verification); it uses raw tagged sends on
//! `VERIFY_TAG` / `VERDICT_TAG`.

use crate::endpoint::Endpoint;
use crate::error::{RtsError, RtsResult};
use crate::{Tag, RESERVED_TAG_BASE};
use bytes::Bytes;

/// Fingerprints travel rank → 0 on this tag.
pub const VERIFY_TAG: Tag = RESERVED_TAG_BASE + 7;
/// Verdicts travel 0 → rank on this tag.
pub const VERDICT_TAG: Tag = RESERVED_TAG_BASE + 8;

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Extend an FNV-1a hash with `bytes`.
#[inline]
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash a byte string from the offset basis.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// One rank's view of a collective call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Hash over everything that must agree (op id, mode, template
    /// hashes, payload length class, ...).
    pub hash: u64,
    /// Human-readable call-site description for the mismatch report,
    /// e.g. ``op 3 `diffusion` mode=Distributed len_class=10``.
    pub site: String,
}

impl Endpoint {
    /// Agree with every other rank that this rank's next collective has
    /// fingerprint `fp`. Returns `Ok(())` when all ranks issued the
    /// same collective; [`RtsError::CollectiveMismatch`] on every rank
    /// when any rank diverged.
    ///
    /// Must be called by all ranks (it is itself a collective, built
    /// from raw sends so it cannot recurse into verification).
    pub fn agree_collective(&self, fp: &Fingerprint) -> RtsResult<()> {
        let seq = self.next_verify_seq();
        if self.rank() == 0 {
            // Collect every other rank's fingerprint and compare.
            let mut divergent: Option<(usize, String)> = None;
            for _ in 0..self.size() - 1 {
                let m = self.recv_filtered(|m| m.tag == VERIFY_TAG)?;
                let (their_hash, their_seq, their_site) = decode_fingerprint(&m.payload)?;
                if (their_hash, their_seq) != (fp.hash, seq) && divergent.is_none() {
                    divergent = Some((m.from, their_site));
                }
            }
            // Broadcast the verdict.
            let verdict = match &divergent {
                None => encode_ok(),
                Some((rank, theirs)) => encode_mismatch(*rank, &fp.site, theirs),
            };
            for to in 1..self.size() {
                self.send_internal(to, VERDICT_TAG, verdict.clone())?;
            }
            match divergent {
                None => Ok(()),
                Some((thread, theirs)) => Err(RtsError::CollectiveMismatch {
                    thread,
                    mine: fp.site.clone(),
                    theirs,
                }),
            }
        } else {
            self.send_internal(0, VERIFY_TAG, encode_fingerprint(fp, seq))?;
            let m = self.recv_filtered(|m| m.from == 0 && m.tag == VERDICT_TAG)?;
            decode_verdict(&m.payload)
        }
    }
}

fn encode_fingerprint(fp: &Fingerprint, seq: u64) -> Bytes {
    let mut out = Vec::with_capacity(16 + fp.site.len());
    out.extend_from_slice(&fp.hash.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(fp.site.as_bytes());
    Bytes::from(out)
}

fn decode_fingerprint(payload: &[u8]) -> RtsResult<(u64, u64, String)> {
    if payload.len() < 16 {
        return Err(RtsError::Internal(
            "short collective-verify fingerprint".into(),
        ));
    }
    let mut a = [0u8; 8];
    a.copy_from_slice(&payload[..8]);
    let hash = u64::from_le_bytes(a);
    a.copy_from_slice(&payload[8..16]);
    let seq = u64::from_le_bytes(a);
    let site = String::from_utf8_lossy(&payload[16..]).into_owned();
    Ok((hash, seq, site))
}

fn encode_ok() -> Bytes {
    Bytes::from_static(&[0])
}

fn encode_mismatch(rank: usize, reference: &str, divergent: &str) -> Bytes {
    let mut out = vec![1u8];
    out.extend_from_slice(&(rank as u64).to_le_bytes());
    out.extend_from_slice(&(reference.len() as u64).to_le_bytes());
    out.extend_from_slice(reference.as_bytes());
    out.extend_from_slice(divergent.as_bytes());
    Bytes::from(out)
}

fn decode_verdict(payload: &[u8]) -> RtsResult<()> {
    match payload.first() {
        Some(0) => Ok(()),
        Some(1) if payload.len() >= 17 => {
            let mut a = [0u8; 8];
            a.copy_from_slice(&payload[1..9]);
            let thread = u64::from_le_bytes(a) as usize;
            a.copy_from_slice(&payload[9..17]);
            let ref_len = u64::from_le_bytes(a) as usize;
            let rest = &payload[17..];
            let (reference, divergent) = if ref_len <= rest.len() {
                (
                    String::from_utf8_lossy(&rest[..ref_len]).into_owned(),
                    String::from_utf8_lossy(&rest[ref_len..]).into_owned(),
                )
            } else {
                (String::new(), String::new())
            };
            Err(RtsError::CollectiveMismatch {
                thread,
                mine: reference,
                theirs: divergent,
            })
        }
        _ => Err(RtsError::Internal(
            "malformed collective-verify verdict".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    fn fp(hash: u64, site: &str) -> Fingerprint {
        Fingerprint {
            hash,
            site: site.to_string(),
        }
    }

    #[test]
    fn matching_fingerprints_agree() {
        let results = Domain::run(4, |ep| {
            for i in 0..3u64 {
                ep.agree_collective(&fp(0xAB00 + i, "op `step`")).unwrap();
            }
            true
        });
        assert_eq!(results, vec![true; 4]);
    }

    #[test]
    fn divergent_rank_is_named_on_every_thread() {
        let results = Domain::run(3, |ep| {
            let f = if ep.rank() == 2 {
                fp(0xBAD, "op 9 `reset`")
            } else {
                fp(0x600D, "op 4 `step`")
            };
            ep.agree_collective(&f)
        });
        for r in &results {
            match r {
                Err(RtsError::CollectiveMismatch {
                    thread,
                    mine,
                    theirs,
                }) => {
                    assert_eq!(*thread, 2);
                    assert!(mine.contains("step"), "{mine}");
                    assert!(theirs.contains("reset"), "{theirs}");
                }
                other => panic!("expected CollectiveMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn mismatch_does_not_poison_later_collectives() {
        // After a detected mismatch every rank has consumed its verify
        // traffic; the domain stays usable.
        let results = Domain::run(2, |ep| {
            let f = if ep.rank() == 0 {
                fp(1, "a")
            } else {
                fp(2, "b")
            };
            assert!(ep.agree_collective(&f).is_err());
            ep.agree_collective(&fp(3, "c")).is_ok()
        });
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn fnv1a_is_stable_and_order_sensitive() {
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        let h = fnv1a_extend(fnv1a(b"op"), b"mode");
        assert_eq!(h, fnv1a(b"opmode"));
    }
}
