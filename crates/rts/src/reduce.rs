//! Reduction operators for `allreduce`/`reduce` collectives.

/// Element-wise reduction operator over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
    /// Element-wise product.
    Prod,
}

impl ReduceOp {
    /// Apply the operator to a pair of values.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Prod => a * b,
        }
    }

    /// Identity element of the operator.
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Prod => 1.0,
        }
    }

    /// Fold `src` into `acc` element-wise. Panics if lengths differ —
    /// that is a collective-contract violation, not a runtime condition.
    pub fn fold_into(self, acc: &mut [f64], src: &[f64]) {
        assert_eq!(acc.len(), src.len(), "reduction buffers must agree");
        for (a, &s) in acc.iter_mut().zip(src) {
            *a = self.apply(*a, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max, ReduceOp::Prod] {
            assert_eq!(op.apply(op.identity(), 3.5), 3.5);
        }
    }

    #[test]
    fn fold_into_works() {
        let mut acc = vec![1.0, 5.0, -2.0];
        ReduceOp::Max.fold_into(&mut acc, &[0.0, 7.0, -1.0]);
        assert_eq!(acc, vec![1.0, 7.0, -1.0]);
        ReduceOp::Sum.fold_into(&mut acc, &[1.0, 1.0, 1.0]);
        assert_eq!(acc, vec![2.0, 8.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "must agree")]
    fn fold_length_mismatch_panics() {
        let mut acc = vec![0.0];
        ReduceOp::Sum.fold_into(&mut acc, &[1.0, 2.0]);
    }
}
