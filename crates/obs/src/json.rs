//! A minimal JSON codec for the span-log format.
//!
//! The workspace carries no serde, and the span log only ever uses
//! flat objects whose values are strings, unsigned integers, or
//! arrays of unsigned integers — so this module implements exactly
//! that subset, with typed errors instead of panics on malformed
//! input.

use std::fmt;

/// A value in a span-log object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonVal {
    /// A (JSON-unescaped) string.
    Str(String),
    /// An unsigned integer.
    Num(u64),
    /// An array of unsigned integers.
    Arr(Vec<u64>),
}

impl JsonVal {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            JsonVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[u64]> {
        match self {
            JsonVal::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Expected a specific character at a byte offset.
    Expected {
        /// What was expected.
        what: &'static str,
        /// Byte offset in the line.
        at: usize,
    },
    /// A number overflowed `u64`.
    NumberOverflow {
        /// Byte offset in the line.
        at: usize,
    },
    /// Input ended inside a token.
    Truncated,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Expected { what, at } => write!(f, "expected {what} at byte {at}"),
            JsonError::NumberOverflow { at } => write!(f, "number overflow at byte {at}"),
            JsonError::Truncated => write!(f, "truncated input"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, ch: u8, what: &'static str) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&ch) {
            self.pos += 1;
            Ok(())
        } else if self.pos >= self.bytes.len() {
            Err(JsonError::Truncated)
        } else {
            Err(JsonError::Expected { what, at: self.pos })
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(JsonError::Truncated),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or(JsonError::Truncated)?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| JsonError::Expected {
                                    what: "hex escape",
                                    at: self.pos,
                                })?;
                            let cp =
                                u32::from_str_radix(hex, 16).map_err(|_| JsonError::Expected {
                                    what: "hex escape",
                                    at: self.pos,
                                })?;
                            out.push(char::from_u32(cp).ok_or(JsonError::Expected {
                                what: "scalar code point",
                                at: self.pos,
                            })?);
                            self.pos += 4;
                        }
                        Some(_) => {
                            return Err(JsonError::Expected {
                                what: "escape character",
                                at: self.pos,
                            })
                        }
                        None => return Err(JsonError::Truncated),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| JsonError::Expected {
                        what: "utf-8",
                        at: self.pos,
                    })?;
                    let c = s.chars().next().ok_or(JsonError::Truncated)?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, JsonError> {
        self.skip_ws();
        let start = self.pos;
        let mut v: u64 = 0;
        while let Some(&d) = self.bytes.get(self.pos) {
            if d.is_ascii_digit() {
                v = v
                    .checked_mul(10)
                    .and_then(|v| v.checked_add((d - b'0') as u64))
                    .ok_or(JsonError::NumberOverflow { at: start })?;
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(if start >= self.bytes.len() {
                JsonError::Truncated
            } else {
                JsonError::Expected {
                    what: "digit",
                    at: start,
                }
            });
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<JsonVal, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(JsonVal::Str(self.string()?)),
            Some(b'[') => {
                self.expect(b'[', "'['")?;
                let mut arr = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonVal::Arr(arr));
                }
                loop {
                    arr.push(self.number()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonVal::Arr(arr));
                        }
                        Some(_) => {
                            return Err(JsonError::Expected {
                                what: "',' or ']'",
                                at: self.pos,
                            })
                        }
                        None => return Err(JsonError::Truncated),
                    }
                }
            }
            Some(_) => Ok(JsonVal::Num(self.number()?)),
            None => Err(JsonError::Truncated),
        }
    }
}

/// Parse one flat object line (`{"k":v,...}`) into its key/value
/// pairs in document order.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.expect(b'{', "'{'")?;
    let mut out = Vec::new();
    if p.peek() == Some(b'}') {
        return Ok(out);
    }
    loop {
        let key = p.string()?;
        p.expect(b':', "':'")?;
        let val = p.value()?;
        out.push((key, val));
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => return Ok(out),
            Some(_) => {
                return Err(JsonError::Expected {
                    what: "',' or '}'",
                    at: p.pos,
                })
            }
            None => return Err(JsonError::Truncated),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_span_line_shape() {
        let line = "{\"machine\":\"m0\",\"rank\":2,\"clock\":[1,0,3],\"empty\":[]}";
        let kv = parse_flat_object(line).unwrap();
        assert_eq!(kv[0], ("machine".into(), JsonVal::Str("m0".into())));
        assert_eq!(kv[1], ("rank".into(), JsonVal::Num(2)));
        assert_eq!(kv[2], ("clock".into(), JsonVal::Arr(vec![1, 0, 3])));
        assert_eq!(kv[3], ("empty".into(), JsonVal::Arr(vec![])));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let line = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let kv = parse_flat_object(&line).unwrap();
        assert_eq!(kv[0].1.as_str(), Some(nasty));
    }

    #[test]
    fn malformed_input_is_typed_not_panic() {
        assert_eq!(parse_flat_object(""), Err(JsonError::Truncated));
        assert_eq!(parse_flat_object("{\"k\":"), Err(JsonError::Truncated));
        assert!(matches!(
            parse_flat_object("{\"k\" 1}"),
            Err(JsonError::Expected { .. })
        ));
        assert!(matches!(
            parse_flat_object("{\"k\":99999999999999999999999}"),
            Err(JsonError::NumberOverflow { .. })
        ));
    }
}
