//! The `pardis-trace` driver: merges per-rank span logs into a
//! causally-ordered cross-rank timeline, flags stragglers, and diffs
//! two traces of the same seed.

use pardis_obs::{timeline, SpanRecord};
use std::process::ExitCode;

const USAGE: &str = "\
pardis-trace — cross-rank timeline reconstruction for PARDIS span logs

USAGE:
    pardis-trace COMMAND [ARGS]

COMMANDS:
    merge <logs...>       merge per-rank span logs (JSONL) into one
                          causally-ordered timeline on stdout; the
                          output excludes wall-clock fields, so two
                          replays of one seed merge bit-for-bit
    stragglers <logs...>  report ranks whose invoke wall time exceeds
                          twice their peers' median (per trace)
    diff <A> <B>          compare two span logs (each a file, or a
                          comma-separated list) as merged timelines

EXIT CODES:
    0  success (diff: timelines identical)
    1  diff found a divergence
    2  usage or I/O error
";

fn load(paths: &[String]) -> Result<Vec<Vec<SpanRecord>>, String> {
    let mut out = Vec::new();
    for p in paths {
        let text = std::fs::read_to_string(p).map_err(|e| format!("pardis-trace: {p}: {e}"))?;
        out.push(timeline::parse_log(&text).map_err(|e| format!("pardis-trace: {p}: {e}"))?);
    }
    Ok(out)
}

fn cmd_merge(paths: &[String]) -> Result<ExitCode, String> {
    if paths.is_empty() {
        return Err("pardis-trace: merge needs at least one log file".into());
    }
    let records: Vec<_> = load(paths)?.into_iter().flatten().collect();
    print!("{}", timeline::render(&timeline::merge(records)));
    Ok(ExitCode::SUCCESS)
}

fn cmd_stragglers(paths: &[String]) -> Result<ExitCode, String> {
    if paths.is_empty() {
        return Err("pardis-trace: stragglers needs at least one log file".into());
    }
    let records: Vec<_> = load(paths)?.into_iter().flatten().collect();
    let found = timeline::stragglers(&records);
    if found.is_empty() {
        println!("no stragglers");
    }
    for s in &found {
        println!(
            "trace {:#x}: {} rank {} waited {} ns (median {} ns)",
            s.trace_id, s.machine, s.rank, s.wait_ns, s.median_ns
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(a: &str, b: &str) -> Result<ExitCode, String> {
    let split = |s: &str| -> Vec<String> { s.split(',').map(str::to_string).collect() };
    let ra: Vec<_> = load(&split(a))?.into_iter().flatten().collect();
    let rb: Vec<_> = load(&split(b))?.into_iter().flatten().collect();
    let report = timeline::diff(ra, rb);
    if report.identical() {
        println!("identical: {} spans", report.len_a);
        return Ok(ExitCode::SUCCESS);
    }
    println!(
        "divergent: {} vs {} spans, {} differing lines",
        report.len_a,
        report.len_b,
        report.divergences.len()
    );
    for (line, x, y) in &report.divergences {
        println!("  line {line}:");
        println!("    A: {x}");
        println!("    B: {y}");
    }
    Ok(ExitCode::from(1))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match (cmd.as_str(), rest) {
            ("merge", rest) => cmd_merge(rest),
            ("stragglers", rest) => cmd_stragglers(rest),
            ("diff", [a, b]) => cmd_diff(a, b),
            ("diff", _) => Err("pardis-trace: diff needs exactly two arguments".into()),
            ("help" | "--help" | "-h", _) => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            (other, _) => Err(format!("pardis-trace: unknown command {other:?}")),
        },
        None => Err("pardis-trace: missing command".into()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
