//! Cross-rank timeline reconstruction.
//!
//! [`merge`] orders span records from many per-rank logs into one
//! causally consistent timeline:
//!
//! * records are grouped by trace (request id), which is shared by
//!   every rank and machine participating in one collective
//!   invocation;
//! * within a trace, records order by invocation **phase**
//!   (bind < marshal < transfer < dispatch < reply < invoke) — the
//!   only ordering that holds across machines, since client and
//!   server clock domains are disjoint;
//! * then by vector-clock sum, which is monotone along every
//!   happens-before edge inside one machine (a cross-rank edge passes
//!   through a collective join, which strictly increases the sum);
//! * ties break deterministically on `(machine, rank, seq)`.
//!
//! The guarantee: if span A happens-before span B, A appears first;
//! concurrent spans appear in a deterministic interleaving. The
//! rendered timeline uses [`SpanRecord::to_stable_line`], which
//! excludes the volatile `wait_ns` field — so two replays of the same
//! seed render **bit-for-bit identical** timelines.

use crate::json::{self, JsonError, JsonVal};
use crate::recorder::SpanRecord;
use crate::span::SpanKind;
use std::fmt;

/// Why a span log failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// A line was not valid span-log JSON.
    Parse {
        /// 1-based line number.
        line_no: usize,
        /// Underlying JSON error.
        source: JsonError,
    },
    /// A line was missing a required key (or it had the wrong type).
    MissingKey {
        /// 1-based line number.
        line_no: usize,
        /// The key that was absent or mistyped.
        key: &'static str,
    },
    /// A line carried an unknown span kind.
    BadKind {
        /// 1-based line number.
        line_no: usize,
        /// The unrecognized kind string.
        kind: String,
    },
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::Parse { line_no, source } => {
                write!(f, "line {line_no}: {source}")
            }
            TimelineError::MissingKey { line_no, key } => {
                write!(f, "line {line_no}: missing or mistyped key {key:?}")
            }
            TimelineError::BadKind { line_no, kind } => {
                write!(f, "line {line_no}: unknown span kind {kind:?}")
            }
        }
    }
}

impl std::error::Error for TimelineError {}

fn field<'a>(
    kv: &'a [(String, JsonVal)],
    line_no: usize,
    key: &'static str,
) -> Result<&'a JsonVal, TimelineError> {
    kv.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or(TimelineError::MissingKey { line_no, key })
}

fn num(kv: &[(String, JsonVal)], line_no: usize, key: &'static str) -> Result<u64, TimelineError> {
    field(kv, line_no, key)?
        .as_num()
        .ok_or(TimelineError::MissingKey { line_no, key })
}

fn str_field(
    kv: &[(String, JsonVal)],
    line_no: usize,
    key: &'static str,
) -> Result<String, TimelineError> {
    Ok(field(kv, line_no, key)?
        .as_str()
        .ok_or(TimelineError::MissingKey { line_no, key })?
        .to_string())
}

/// Parse a span log (JSONL, one record per non-empty line).
pub fn parse_log(text: &str) -> Result<Vec<SpanRecord>, TimelineError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let kv = json::parse_flat_object(line)
            .map_err(|source| TimelineError::Parse { line_no, source })?;
        let kind_s = str_field(&kv, line_no, "kind")?;
        let kind = SpanKind::parse(&kind_s).ok_or(TimelineError::BadKind {
            line_no,
            kind: kind_s,
        })?;
        out.push(SpanRecord {
            machine: str_field(&kv, line_no, "machine")?,
            host: num(&kv, line_no, "host")? as u32,
            rank: num(&kv, line_no, "rank")? as usize,
            seq: num(&kv, line_no, "seq")?,
            trace_id: num(&kv, line_no, "trace")?,
            span_id: num(&kv, line_no, "span")?,
            parent_span: num(&kv, line_no, "parent")?,
            kind,
            name: str_field(&kv, line_no, "name")?,
            epoch: num(&kv, line_no, "epoch")?,
            bytes: num(&kv, line_no, "bytes")?,
            clock: field(&kv, line_no, "clock")?
                .as_arr()
                .ok_or(TimelineError::MissingKey {
                    line_no,
                    key: "clock",
                })?
                .to_vec(),
            // Absent in stable (merged) logs: treat as zero.
            wait_ns: kv
                .iter()
                .find(|(k, _)| k == "wait_ns")
                .and_then(|(_, v)| v.as_num())
                .unwrap_or(0),
        });
    }
    Ok(out)
}

fn clock_sum(r: &SpanRecord) -> u64 {
    r.clock.iter().fold(0u64, |a, &c| a.saturating_add(c))
}

/// Sort records into the causal timeline order (see module docs).
pub fn merge(mut records: Vec<SpanRecord>) -> Vec<SpanRecord> {
    records.sort_by(|a, b| {
        (
            a.trace_id,
            a.kind.phase(),
            clock_sum(a),
            &a.machine,
            a.rank,
            a.seq,
        )
            .cmp(&(
                b.trace_id,
                b.kind.phase(),
                clock_sum(b),
                &b.machine,
                b.rank,
                b.seq,
            ))
    });
    records
}

/// Render a merged timeline as stable JSONL (no volatile fields).
pub fn render(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_stable_line());
        out.push('\n');
    }
    out
}

/// A rank whose invoke-span wall time dominated its peers in one
/// trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Straggler {
    /// The trace in which the rank lagged.
    pub trace_id: u64,
    /// Machine the rank belongs to.
    pub machine: String,
    /// The lagging rank.
    pub rank: usize,
    /// Its invoke-span wall time.
    pub wait_ns: u64,
    /// The median invoke-span wall time across the trace's ranks on
    /// that machine.
    pub median_ns: u64,
}

/// Flag stragglers: within each `(trace, machine)` group of invoke
/// spans, a rank is a straggler when its wall time exceeds twice the
/// group median (and the group has at least 3 ranks, so a median is
/// meaningful). Wall-clock based — legitimately non-deterministic.
pub fn stragglers(records: &[SpanRecord]) -> Vec<Straggler> {
    let mut groups: Vec<(&SpanRecord, Vec<&SpanRecord>)> = Vec::new();
    for r in records {
        if r.kind != SpanKind::Invoke || r.trace_id == 0 {
            continue;
        }
        match groups
            .iter_mut()
            .find(|(k, _)| k.trace_id == r.trace_id && k.machine == r.machine)
        {
            Some((_, v)) => v.push(r),
            None => groups.push((r, vec![r])),
        }
    }
    let mut out = Vec::new();
    for (_, members) in groups {
        if members.len() < 3 {
            continue;
        }
        let mut waits: Vec<u64> = members.iter().map(|r| r.wait_ns).collect();
        waits.sort_unstable();
        let median = waits[waits.len() / 2];
        for r in members {
            if r.wait_ns > median.saturating_mul(2) {
                out.push(Straggler {
                    trace_id: r.trace_id,
                    machine: r.machine.clone(),
                    rank: r.rank,
                    wait_ns: r.wait_ns,
                    median_ns: median,
                });
            }
        }
    }
    out.sort_by(|a, b| (a.trace_id, &a.machine, a.rank).cmp(&(b.trace_id, &b.machine, b.rank)));
    out
}

/// Where two timelines of the same seed diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffReport {
    /// Stable line count of each side.
    pub len_a: usize,
    /// Stable line count of each side.
    pub len_b: usize,
    /// 1-based index and both sides of each divergent line (missing
    /// lines render as `"<absent>"`), capped at 20 entries.
    pub divergences: Vec<(usize, String, String)>,
}

impl DiffReport {
    /// True when the two timelines are bit-for-bit identical.
    pub fn identical(&self) -> bool {
        self.len_a == self.len_b && self.divergences.is_empty()
    }
}

/// Diff two span logs by comparing their merged stable renderings
/// line by line.
pub fn diff(a: Vec<SpanRecord>, b: Vec<SpanRecord>) -> DiffReport {
    let ra = render(&merge(a));
    let rb = render(&merge(b));
    let la: Vec<&str> = ra.lines().collect();
    let lb: Vec<&str> = rb.lines().collect();
    let mut divergences = Vec::new();
    for i in 0..la.len().max(lb.len()) {
        let x = la.get(i).copied().unwrap_or("<absent>");
        let y = lb.get(i).copied().unwrap_or("<absent>");
        if x != y {
            divergences.push((i + 1, x.to_string(), y.to_string()));
            if divergences.len() >= 20 {
                break;
            }
        }
    }
    DiffReport {
        len_a: la.len(),
        len_b: lb.len(),
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        machine: &str,
        rank: usize,
        seq: u64,
        trace: u64,
        kind: SpanKind,
        clock: Vec<u64>,
    ) -> SpanRecord {
        SpanRecord {
            machine: machine.into(),
            host: 1,
            rank,
            seq,
            trace_id: trace,
            span_id: seq + 1,
            parent_span: 0,
            kind,
            name: "op".into(),
            epoch: 0,
            bytes: 0,
            clock,
            wait_ns: 0,
        }
    }

    #[test]
    fn merge_orders_phases_then_clocks() {
        let recs = vec![
            rec("srv", 0, 0, 5, SpanKind::Dispatch, vec![1]),
            rec("cli", 0, 1, 5, SpanKind::Invoke, vec![3]),
            rec("cli", 0, 0, 5, SpanKind::Marshal, vec![2]),
            rec("cli", 1, 0, 5, SpanKind::Marshal, vec![1]),
        ];
        let merged = merge(recs);
        let kinds: Vec<_> = merged.iter().map(|r| (r.kind, r.rank)).collect();
        assert_eq!(
            kinds,
            vec![
                (SpanKind::Marshal, 1), // lower clock sum first
                (SpanKind::Marshal, 0),
                (SpanKind::Dispatch, 0),
                (SpanKind::Invoke, 0),
            ]
        );
    }

    #[test]
    fn render_parse_roundtrip_is_stable() {
        let recs = vec![
            rec("m", 0, 0, 1, SpanKind::Invoke, vec![1, 2]),
            rec("m", 1, 0, 1, SpanKind::Invoke, vec![2, 1]),
        ];
        let rendered = render(&merge(recs));
        let reparsed = parse_log(&rendered).unwrap();
        assert_eq!(render(&merge(reparsed)), rendered);
    }

    #[test]
    fn stragglers_need_a_dominating_wait() {
        let mut recs: Vec<SpanRecord> = (0..4)
            .map(|r| rec("m", r, 0, 9, SpanKind::Invoke, vec![1]))
            .collect();
        recs[3].wait_ns = 1000;
        for r in recs.iter_mut().take(3) {
            r.wait_ns = 100;
        }
        let s = stragglers(&recs);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rank, 3);
        assert_eq!(s[0].median_ns, 100);
    }

    #[test]
    fn diff_reports_divergence_and_identity() {
        let a = vec![rec("m", 0, 0, 1, SpanKind::Invoke, vec![1])];
        let mut b = a.clone();
        assert!(diff(a.clone(), b.clone()).identical());
        b[0].name = "other".into();
        let d = diff(a, b);
        assert!(!d.identical());
        assert_eq!(d.divergences.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert_eq!(
            parse_log("{\"machine\":\"m\"}"),
            Err(TimelineError::MissingKey {
                line_no: 1,
                key: "kind"
            })
        );
        assert!(matches!(
            parse_log("\n{bad"),
            Err(TimelineError::Parse { line_no: 2, .. })
        ));
    }
}
