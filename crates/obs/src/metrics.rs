//! Per-rank metrics: counters and fixed-bucket histograms.
//!
//! The hot path is lock-free: each computing thread holds a
//! thread-local `Arc<RankMetrics>` whose cells are plain
//! `AtomicU64`s; the global registry's mutex is touched only at
//! [`init`] and [`snapshot_json`] time.
//!
//! The instrument set is closed (see [`COUNTERS`] / [`HISTOGRAMS`]),
//! which is what makes snapshots deterministic: every rank exports
//! every instrument in declaration order, so two replays of the same
//! seed produce byte-identical JSON. Wall-clock-valued histograms are
//! marked *volatile* and export only their event count — the count is
//! seeded-deterministic, the durations are not.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counter names, in export order.
pub const COUNTERS: &[&str] = &[
    "orb.requests",
    "orb.retries",
    "orb.timeouts",
    "orb.fallbacks",
    "orb.served",
    "orb.serve_decode_errors",
    "rts.epoch_changes",
    "xfer.centralized.bytes",
    "xfer.multiport.bytes",
];

/// Histogram names, in export order. The flag marks volatile
/// (wall-clock-valued) histograms whose snapshot carries only the
/// event count.
pub const HISTOGRAMS: &[(&str, bool)] = &[
    ("xfer.multiport.frag_bytes", false),
    ("rts.collective_wait_ns", true),
];

/// Number of power-of-two histogram buckets; bucket `i` counts values
/// `v` with `floor(log2(max(v,1))) == i`, the last bucket absorbing
/// everything larger.
pub const BUCKETS: usize = 24;

/// A fixed-bucket power-of-two histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        let idx = (63 - v.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded events.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket event counts.
    pub fn buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// One rank's instrument block.
#[derive(Debug)]
pub struct RankMetrics {
    machine: String,
    host: u32,
    rank: usize,
    counters: Vec<AtomicU64>,
    histograms: Vec<Histogram>,
}

impl RankMetrics {
    fn new(machine: &str, host: u32, rank: usize) -> RankMetrics {
        RankMetrics {
            machine: machine.to_string(),
            host,
            rank,
            counters: COUNTERS.iter().map(|_| AtomicU64::new(0)).collect(),
            histograms: HISTOGRAMS.iter().map(|_| Histogram::default()).collect(),
        }
    }

    /// Add `delta` to the named counter; unknown names are ignored
    /// (the instrument set is closed by design).
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(i) = COUNTERS.iter().position(|&c| c == name) {
            self.counters[i].fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Record `v` into the named histogram; unknown names are ignored.
    pub fn observe(&self, name: &str, v: u64) {
        if let Some(i) = HISTOGRAMS.iter().position(|&(h, _)| h == name) {
            self.histograms[i].record(v);
        }
    }

    /// Current value of the named counter (None for unknown names).
    pub fn get(&self, name: &str) -> Option<u64> {
        COUNTERS
            .iter()
            .position(|&c| c == name)
            .map(|i| self.counters[i].load(Ordering::Relaxed))
    }

    /// The named histogram (None for unknown names).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        HISTOGRAMS
            .iter()
            .position(|&(h, _)| h == name)
            .map(|i| &self.histograms[i])
    }
}

thread_local! {
    static HANDLE: RefCell<Option<Arc<RankMetrics>>> = const { RefCell::new(None) };
}

static REGISTRY: Mutex<Vec<Arc<RankMetrics>>> = Mutex::new(Vec::new());

/// Bind the calling thread to a fresh `(machine, host, rank)`
/// instrument block registered in the global registry.
pub fn init(machine: &str, host: u32, rank: usize) {
    let m = Arc::new(RankMetrics::new(machine, host, rank));
    REGISTRY.lock().push(Arc::clone(&m));
    HANDLE.with(|h| *h.borrow_mut() = Some(m));
}

/// Add `delta` to the calling rank's counter; no-op when the thread is
/// not bound.
pub fn add(name: &str, delta: u64) {
    HANDLE.with(|h| {
        if let Some(m) = h.borrow().as_ref() {
            m.add(name, delta);
        }
    });
}

/// Record `v` into the calling rank's histogram; no-op when unbound.
pub fn observe(name: &str, v: u64) {
    HANDLE.with(|h| {
        if let Some(m) = h.borrow().as_ref() {
            m.observe(name, v);
        }
    });
}

/// Deterministic JSON snapshot of every registered rank, sorted by
/// `(machine, rank)`; counters and histograms appear in declaration
/// order, and volatile histograms export only their count.
pub fn snapshot_json() -> String {
    let mut ranks: Vec<_> = REGISTRY.lock().iter().map(Arc::clone).collect();
    ranks.sort_by(|a, b| (&a.machine, a.rank).cmp(&(&b.machine, b.rank)));
    let mut s = String::from("{\"schema\":\"pardis-obs-metrics/1\",\"ranks\":[");
    for (ri, m) in ranks.iter().enumerate() {
        if ri > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"machine\":\"{}\",\"host\":{},\"rank\":{},\"counters\":{{",
            crate::json::escape(&m.machine),
            m.host,
            m.rank
        );
        for (i, &name) in COUNTERS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{}", m.counters[i].load(Ordering::Relaxed));
        }
        s.push_str("},\"histograms\":{");
        for (i, &(name, volatile)) in HISTOGRAMS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let h = &m.histograms[i];
            if volatile {
                let _ = write!(s, "\"{name}\":{{\"count\":{}}}", h.count());
            } else {
                let _ = write!(
                    s,
                    "\"{name}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                    h.count(),
                    h.sum()
                );
                for (bi, b) in h.buckets().iter().enumerate() {
                    if bi > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{b}");
                }
                s.push_str("]}");
            }
        }
        s.push_str("}}");
    }
    s.push_str("]}");
    s
}

/// Drop every registered instrument block (between two replays in one
/// process). Threads bound before the reset keep counting into
/// unregistered blocks; re-[`init`] to rejoin.
pub fn reset() {
    REGISTRY.lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_export_in_declared_order() {
        reset();
        init("m", 1, 0);
        add("orb.requests", 2);
        add("no.such.counter", 9);
        observe("xfer.multiport.frag_bytes", 1024);
        observe("rts.collective_wait_ns", 12345);
        let json = snapshot_json();
        assert!(json.starts_with("{\"schema\":\"pardis-obs-metrics/1\""));
        assert!(json.contains("\"orb.requests\":2"));
        let req = json.find("\"orb.requests\"").unwrap();
        let retr = json.find("\"orb.retries\"").unwrap();
        assert!(req < retr, "declaration order preserved");
        // The volatile histogram exports only its count.
        let wait = &json[json.find("rts.collective_wait_ns").unwrap()..];
        assert!(wait.starts_with("rts.collective_wait_ns\":{\"count\":1}"));
        assert!(json.contains("\"xfer.multiport.frag_bytes\":{\"count\":1,\"sum\":1024"));
    }

    #[test]
    fn bucket_indexing_is_log2() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(1 << 23);
        h.record(u64::MAX);
        let b = h.buckets();
        assert_eq!(b[0], 2, "0 and 1 share the first bucket");
        assert_eq!(b[1], 1);
        assert_eq!(b[BUCKETS - 1], 2, "last bucket absorbs the tail");
        assert_eq!(h.count(), 5);
    }
}
