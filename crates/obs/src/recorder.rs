//! Per-rank span recording.
//!
//! Each computing thread binds to `(machine, host, rank)` once via
//! [`init`]; after that, [`record`] appends [`SpanRecord`]s to a
//! per-rank log. The log is an `Arc` shared with a global registry, so
//! the data survives thread exit and [`drain_all`] can collect every
//! rank's spans after a run.
//!
//! Determinism contract: everything in a record except `wait_ns`
//! derives from the seeded execution — ids, sequence numbers, byte
//! counts, vector clocks ([`ClockWitness`] advances only on
//! collectives and epoch changes). `wait_ns` is wall-clock and is
//! quarantined: the per-rank log carries it (the straggler report
//! needs it) but the merged timeline excludes it.

use crate::json;
use crate::span::SpanKind;
use pardis_rts::clock::ClockWitness;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::Arc;

/// One recorded span: a point event covering a completed phase of a
/// collective invocation on one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Machine (ORB domain) name the rank belongs to.
    pub machine: String,
    /// Numeric host id (disambiguates span ids across machines).
    pub host: u32,
    /// Rank within the machine's SPMD domain.
    pub rank: usize,
    /// Per-rank record sequence number (dense, from 0).
    pub seq: u64,
    /// Trace this span belongs to (the request id; 0 = ambient, e.g.
    /// `bind` outside any request).
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_span: u64,
    /// Phase covered.
    pub kind: SpanKind,
    /// Operation or object name.
    pub name: String,
    /// Membership epoch when the span completed.
    pub epoch: u64,
    /// Payload bytes moved (0 when not applicable).
    pub bytes: u64,
    /// The rank's vector clock when the span completed.
    pub clock: Vec<u64>,
    /// Wall-clock duration — the ONLY non-deterministic field.
    pub wait_ns: u64,
}

impl SpanRecord {
    /// One JSONL line with a fixed key order (includes the volatile
    /// `wait_ns`; the merged timeline strips it).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"machine\":\"{}\",\"host\":{},\"rank\":{},\"seq\":{},\
             \"trace\":{},\"span\":{},\"parent\":{},\"kind\":\"{}\",\
             \"name\":\"{}\",\"epoch\":{},\"bytes\":{},\"clock\":[",
            json::escape(&self.machine),
            self.host,
            self.rank,
            self.seq,
            self.trace_id,
            self.span_id,
            self.parent_span,
            self.kind.as_str(),
            json::escape(&self.name),
            self.epoch,
            self.bytes,
        );
        for (i, c) in self.clock.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{c}");
        }
        let _ = write!(s, "],\"wait_ns\":{}}}", self.wait_ns);
        s
    }

    /// The deterministic projection: the JSONL line without `wait_ns`.
    /// Two replays of the same seed produce identical projections.
    pub fn to_stable_line(&self) -> String {
        let full = self.to_json_line();
        match full.rfind(",\"wait_ns\":") {
            Some(at) => format!("{}}}", &full[..at]),
            None => full,
        }
    }
}

/// The fields a caller supplies to [`record`]; rank identity, the
/// sequence number, and the vector clock are filled in by the
/// recorder.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Phase covered.
    pub kind: SpanKind,
    /// Operation or object name.
    pub name: String,
    /// Trace id (0 = ambient).
    pub trace_id: u64,
    /// This span's id (from [`alloc_span_id`] or the trace id itself).
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_span: u64,
    /// Membership epoch at completion.
    pub epoch: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Wall-clock duration (volatile).
    pub wait_ns: u64,
}

struct RankState {
    machine: String,
    host: u32,
    rank: usize,
    next_seq: u64,
    next_span: u64,
    current: Option<(u64, u64)>,
    sink: Arc<Mutex<Vec<SpanRecord>>>,
}

thread_local! {
    static STATE: RefCell<Option<RankState>> = const { RefCell::new(None) };
}

static REGISTRY: Mutex<Vec<Arc<Mutex<Vec<SpanRecord>>>>> = Mutex::new(Vec::new());

/// Bind the calling thread to `(machine, host, rank)` with a fresh
/// span log registered in the global registry.
pub fn init(machine: &str, host: u32, rank: usize) {
    let sink = Arc::new(Mutex::new(Vec::new()));
    REGISTRY.lock().push(Arc::clone(&sink));
    STATE.with(|s| {
        *s.borrow_mut() = Some(RankState {
            machine: machine.to_string(),
            host,
            rank,
            next_seq: 0,
            next_span: 0,
            current: None,
            sink,
        });
    });
}

/// Allocate a machine-unique span id for the calling rank:
/// `host << 40 | (rank + 1) << 32 | counter`. Returns 0 (the "no
/// span" id) if the thread is not bound.
pub fn alloc_span_id() -> u64 {
    STATE.with(|s| {
        s.borrow_mut().as_mut().map_or(0, |st| {
            let id = ((st.host as u64) << 40) | ((st.rank as u64 + 1) << 32) | st.next_span;
            st.next_span += 1;
            id
        })
    })
}

/// Mark `(trace_id, root_span)` as the calling rank's active
/// invocation, so nested phases (marshal, transfer) can parent under
/// it.
pub fn set_current(trace_id: u64, root_span: u64) {
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.current = Some((trace_id, root_span));
        }
    });
}

/// Clear the active invocation.
pub fn clear_current() {
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.current = None;
        }
    });
}

/// The calling rank's active `(trace_id, root_span)`, if any.
pub fn current() -> Option<(u64, u64)> {
    STATE.with(|s| s.borrow().as_ref().and_then(|st| st.current))
}

/// Append a span to the calling rank's log. No-op when the thread is
/// not bound (the `obs` feature is on but the ORB was not
/// initialized, e.g. in unrelated unit tests).
pub fn record(ev: SpanEvent) {
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            let rec = SpanRecord {
                machine: st.machine.clone(),
                host: st.host,
                rank: st.rank,
                seq: st.next_seq,
                trace_id: ev.trace_id,
                span_id: ev.span_id,
                parent_span: ev.parent_span,
                kind: ev.kind,
                name: ev.name,
                epoch: ev.epoch,
                bytes: ev.bytes,
                clock: ClockWitness::snapshot().0,
                wait_ns: ev.wait_ns,
            };
            st.next_seq += 1;
            st.sink.lock().push(rec);
        }
    });
}

/// Collect every registered rank's spans, sorted by
/// `(machine, rank, seq)` so the result is independent of thread
/// scheduling. The logs are left empty.
pub fn drain_all() -> Vec<SpanRecord> {
    let sinks: Vec<_> = REGISTRY.lock().iter().map(Arc::clone).collect();
    let mut out = Vec::new();
    for sink in sinks {
        out.append(&mut sink.lock());
    }
    out.sort_by(|a, b| (&a.machine, a.rank, a.seq).cmp(&(&b.machine, b.rank, b.seq)));
    out
}

/// Drop every registered log (between two replays in one process).
/// Threads bound before the reset keep recording into unregistered
/// sinks; re-[`init`] to rejoin.
pub fn reset() {
    REGISTRY.lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, trace: u64) -> SpanEvent {
        SpanEvent {
            kind,
            name: "op".into(),
            trace_id: trace,
            span_id: alloc_span_id(),
            parent_span: 0,
            epoch: 0,
            bytes: 8,
            wait_ns: 55,
        }
    }

    #[test]
    fn record_fills_identity_and_sequence() {
        reset();
        init("m", 3, 1);
        record(ev(SpanKind::Invoke, 42));
        record(ev(SpanKind::Reply, 42));
        let all = drain_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].machine, "m");
        assert_eq!(all[0].host, 3);
        assert_eq!(all[0].rank, 1);
        assert_eq!(all[0].seq, 0);
        assert_eq!(all[1].seq, 1);
        assert_eq!(all[0].span_id, (3u64 << 40) | (2u64 << 32));
        assert!(drain_all().is_empty());
    }

    #[test]
    fn stable_line_strips_only_wait_ns() {
        reset();
        init("m", 1, 0);
        record(ev(SpanKind::Marshal, 7));
        let rec = &drain_all()[0];
        let full = rec.to_json_line();
        let stable = rec.to_stable_line();
        assert!(full.contains("\"wait_ns\":55"));
        assert!(!stable.contains("wait_ns"));
        assert!(full.starts_with(stable.trim_end_matches('}')));
    }
}
