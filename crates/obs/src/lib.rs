//! # pardis-obs — observability for the PARDIS ORB
//!
//! A PARDIS invocation is *collective*: one logical request fans out
//! across N computing threads, two transfer engines, and (under
//! faults) membership epochs. This crate makes that fan-out visible
//! without changing it:
//!
//! * [`span`] — a [`span::SpanContext`] (trace id, parent span, rank,
//!   epoch) that rides a GIOP service-context slot, so the server's
//!   per-rank spans link under the client's invocation root;
//! * [`recorder`] — per-rank span logs. Every record carries the
//!   rank's vector clock ([`pardis_rts::clock::ClockWitness`]) and a
//!   per-rank sequence number, so a seeded run's log replays
//!   **bit-for-bit** (wall-clock durations are carried but quarantined
//!   in one volatile field);
//! * [`metrics`] — a registry of per-rank counters and fixed-bucket
//!   histograms whose hot path is lock-free (atomics on a thread-local
//!   handle), exported as deterministic JSON snapshots;
//! * [`timeline`] — merges per-rank span logs into one causally
//!   ordered cross-rank timeline, flags stragglers, and diffs two
//!   traces of the same seed. The `pardis-trace` binary is its CLI.
//!
//! The instrumentation hooks live in `pardis-rts`/`pardis-core` behind
//! their `obs` features; this crate is pure mechanism and carries no
//! feature gates of its own.

pub mod json;
pub mod metrics;
pub mod recorder;
pub mod span;
pub mod timeline;

pub use metrics::{snapshot_json, RankMetrics};
pub use recorder::{drain_all, SpanRecord};
pub use span::{SpanContext, SpanKind, SC_TRACING};

/// Bind the calling thread to `(machine, host, rank)` in both the
/// span recorder and the metrics registry — the single entry point
/// the ORB calls from `OrbCtx::init`.
pub fn init_rank(machine: &str, host: u32, rank: usize) {
    recorder::init(machine, host, rank);
    metrics::init(machine, host, rank);
}

/// Clear all global observability state (span logs and metrics) —
/// between two replays of the same seed in one process.
pub fn reset() {
    recorder::reset();
    metrics::reset();
}
