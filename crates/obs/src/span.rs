//! Span identity and its wire form.
//!
//! A **trace** is one collective invocation; its id is the request id
//! (already machine-unique and deterministic: `host << 48 | rank << 32
//! | counter`). Within a trace every rank records **spans** — bind,
//! marshal, transfer, dispatch, reply — linked into a tree:
//!
//! * the communicating thread's `invoke` span is the root, with
//!   `span_id == trace_id`;
//! * every other client rank's `invoke` span is a child of the root;
//! * engine spans (marshal/transfer) are children of their rank's
//!   `invoke` span;
//! * the server's spans parent under the root via the
//!   [`SpanContext`] carried in the request's service-context slot
//!   [`SC_TRACING`].

use pardis_cdr::{CdrReader, CdrResult, CdrWriter, Decode, Encode};

/// GIOP service-context slot id carrying an encoded [`SpanContext`].
pub const SC_TRACING: u32 = 1;

/// The causal identity propagated from client to server: which trace
/// the request belongs to, which span to parent under, and the
/// sender's rank and membership epoch when the context was cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The invocation's trace id (the request id).
    pub trace_id: u64,
    /// Span the receiver should parent its spans under (the client
    /// root's span id).
    pub parent_span: u64,
    /// Rank that cut the context (the client's communicating thread).
    pub rank: u32,
    /// Sender's membership epoch when the context was cut.
    pub epoch: u64,
}

impl Encode for SpanContext {
    fn encode(&self, w: &mut CdrWriter) -> CdrResult<()> {
        w.put_u64(self.trace_id);
        w.put_u64(self.parent_span);
        w.put_u32(self.rank);
        w.put_u64(self.epoch);
        Ok(())
    }
}

impl Decode for SpanContext {
    fn decode(r: &mut CdrReader<'_>) -> CdrResult<Self> {
        Ok(SpanContext {
            trace_id: r.get_u64()?,
            parent_span: r.get_u64()?,
            rank: r.get_u32()?,
            epoch: r.get_u64()?,
        })
    }
}

/// What a span covers. The discriminants order the phases of one
/// invocation, which the timeline uses as a cross-machine tie-break
/// (vector clocks only order events within one machine's domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// `bind` / `spmd_bind` resolving an object reference.
    Bind,
    /// Marshaling a request or reply body.
    Marshal,
    /// Centralized argument transfer (gather/scatter at the
    /// communicating threads).
    XferCentralized,
    /// Multi-port argument transfer (per-thread fragment streams).
    XferMultiport,
    /// Servant dispatch on a server computing thread.
    Dispatch,
    /// Reply delivery (server send or client receive).
    Reply,
    /// One whole collective invocation as seen by one client rank.
    Invoke,
}

impl SpanKind {
    /// Stable lower-case name used in span logs.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Bind => "bind",
            SpanKind::Marshal => "marshal",
            SpanKind::XferCentralized => "xfer.centralized",
            SpanKind::XferMultiport => "xfer.multiport",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Reply => "reply",
            SpanKind::Invoke => "invoke",
        }
    }

    /// Inverse of [`SpanKind::as_str`].
    pub fn parse(s: &str) -> Option<SpanKind> {
        Some(match s {
            "bind" => SpanKind::Bind,
            "marshal" => SpanKind::Marshal,
            "xfer.centralized" => SpanKind::XferCentralized,
            "xfer.multiport" => SpanKind::XferMultiport,
            "dispatch" => SpanKind::Dispatch,
            "reply" => SpanKind::Reply,
            "invoke" => SpanKind::Invoke,
            _ => return None,
        })
    }

    /// Phase order within one trace: bind < marshal < transfer <
    /// dispatch < reply < invoke (the enclosing span closes last).
    pub fn phase(self) -> u8 {
        match self {
            SpanKind::Bind => 0,
            SpanKind::Marshal => 1,
            SpanKind::XferCentralized => 2,
            SpanKind::XferMultiport => 2,
            SpanKind::Dispatch => 3,
            SpanKind::Reply => 4,
            SpanKind::Invoke => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardis_cdr::Endian;

    #[test]
    fn context_roundtrips_both_endians() {
        let ctx = SpanContext {
            trace_id: (7u64 << 48) | (2 << 32) | 9,
            parent_span: 0xDEAD_BEEF,
            rank: 3,
            epoch: 2,
        };
        for endian in [Endian::Big, Endian::Little] {
            let mut w = CdrWriter::new(endian);
            ctx.encode(&mut w).unwrap();
            let bytes = w.into_bytes();
            let mut r = CdrReader::new(&bytes, endian);
            assert_eq!(SpanContext::decode(&mut r).unwrap(), ctx);
        }
    }

    #[test]
    fn truncated_context_rejected() {
        let ctx = SpanContext {
            trace_id: 1,
            parent_span: 2,
            rank: 3,
            epoch: 4,
        };
        let mut w = CdrWriter::new(Endian::native());
        ctx.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = CdrReader::new(&bytes[..cut], Endian::native());
            assert!(SpanContext::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in [
            SpanKind::Bind,
            SpanKind::Marshal,
            SpanKind::XferCentralized,
            SpanKind::XferMultiport,
            SpanKind::Dispatch,
            SpanKind::Reply,
            SpanKind::Invoke,
        ] {
            assert_eq!(SpanKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }
}
