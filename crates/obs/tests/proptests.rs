//! Property tests for the span-context wire form: encode/decode is
//! the identity for arbitrary contexts, and every strict prefix of an
//! encoding is rejected with a typed error (never a panic).

use pardis_cdr::{CdrReader, CdrWriter, Decode, Encode, Endian};
use pardis_obs::SpanContext;
use proptest::prelude::*;

fn endian_strategy() -> impl Strategy<Value = Endian> {
    prop_oneof![Just(Endian::Big), Just(Endian::Little)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn span_context_roundtrips(
        trace_id in any::<u64>(),
        parent_span in any::<u64>(),
        rank in any::<u32>(),
        epoch in any::<u64>(),
        endian in endian_strategy(),
    ) {
        let ctx = SpanContext { trace_id, parent_span, rank, epoch };
        let mut w = CdrWriter::new(endian);
        ctx.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, endian);
        prop_assert_eq!(SpanContext::decode(&mut r).unwrap(), ctx);
    }

    #[test]
    fn truncated_span_context_rejected(
        trace_id in any::<u64>(),
        parent_span in any::<u64>(),
        rank in any::<u32>(),
        epoch in any::<u64>(),
        endian in endian_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let ctx = SpanContext { trace_id, parent_span, rank, epoch };
        let mut w = CdrWriter::new(endian);
        ctx.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        // Any strict prefix must fail to decode — typed, not a panic.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < bytes.len());
        let mut r = CdrReader::new(&bytes[..cut], endian);
        prop_assert!(SpanContext::decode(&mut r).is_err());
    }
}
