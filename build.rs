//! Build script: compile every IDL file under `examples/idl/` with the
//! PARDIS IDL compiler and drop the generated Rust stubs into
//! `OUT_DIR`, where `src/lib.rs` includes them. This is the real CORBA
//! workflow — interface first, stubs generated at build time — and it
//! doubles as a compile-time test that `pardis-idl`'s generated code is
//! valid Rust.

use std::path::Path;

fn main() {
    println!("cargo:rerun-if-changed=examples/idl");
    let out_dir = std::env::var("OUT_DIR").expect("OUT_DIR set by cargo");
    let idl_dir = Path::new("examples/idl");
    let mut entries: Vec<_> = std::fs::read_dir(idl_dir)
        .expect("examples/idl exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().map(|e| e == "idl").unwrap_or(false))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no IDL files found in examples/idl");
    for path in entries {
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let name = path.file_stem().expect("file stem").to_string_lossy();
        let code = pardis_idl::compile_to_rust(&source, &path.display().to_string())
            .unwrap_or_else(|diags| panic!("IDL compilation failed:\n{diags}"));
        let out = Path::new(&out_dir).join(format!("{name}.rs"));
        std::fs::write(&out, code)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    }
}
