//! Quickstart: the paper's §2.1 scenario in ~60 lines.
//!
//! Parallel application A computes a diffusion simulation on an array
//! distributed over the nodes it executes on; parallel application B
//! wants to compute diffusion on its own data using A. A becomes an SPMD
//! object (`diff_object`), B its collective client.
//!
//! Run with: `cargo run --example quickstart`

use pardis::apps::diffusion::{hot_spot, DiffusionServant};
use pardis::prelude::*;
use pardis::stubs::diffusion::{diff_objectProxy, diff_objectSkeleton};

fn main() {
    // One shared (unthrottled) link between the machines, one naming
    // domain — the smallest possible PARDIS world.
    let world = World::new(LinkSpec::unlimited());

    // Application A: a 4-thread SPMD object on HOST1.
    let server = world.spawn_machine("HOST1", 4, |ctx| {
        diff_objectSkeleton::register(&ctx, "example", DiffusionServant::new(), vec![])
            .expect("register diffusion object");
        ctx.serve_forever().expect("serve");
    });

    // Application B: a 2-thread SPMD client on HOST2.
    let client = world.spawn_machine("HOST2", 2, |ctx| {
        // As in the paper:
        //   diff_object* diff = diff_object::_spmd_bind("example", HOST1);
        //   diff->diffusion(64, my_diff_array);
        let diff = diff_objectProxy::_spmd_bind(&ctx, "example", Some("HOST1"))
            .expect("bind to the diffusion object");

        // Build a distributed sequence: a hot spot in a cold bar,
        // blockwise-distributed over B's two computing threads.
        let len = 1 << 12;
        let global = hot_spot(len);
        let mut my_diff_array = DSequence::<f64>::new(ctx.rts(), len, None).expect("dseq");
        let range = my_diff_array.local_range();
        my_diff_array
            .local_data_mut()
            .copy_from_slice(&global[range]);

        let heat_before: f64 = global.iter().sum();
        diff.diffusion(&ctx, 64, &mut my_diff_array)
            .expect("invoke diffusion");
        let heat_after = diff.total_heat(&ctx, &my_diff_array).expect("total_heat");
        let steps = diff._get_steps_completed(&ctx).expect("attribute read");

        if ctx.is_comm_thread() {
            println!("ran 64 diffusion steps on a {len}-element distributed array");
            println!("heat before = {heat_before:.3}, after = {heat_after:.3} (conserved)");
            println!("server reports steps_completed = {steps}");
            assert!((heat_before - heat_after).abs() < 1e-6);
            ctx.send_shutdown(diff.proxy.objref()).expect("shutdown");
        }
    });

    client.join();
    server.join();
    println!("quickstart OK");
}
