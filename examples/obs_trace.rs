//! Seeded chaos run with observability on: writes per-rank span logs
//! and a metrics snapshot for `pardis-trace` to merge.
//!
//! A 2-thread SPMD client invokes a 2-thread SPMD server over a faulty
//! link (seeded frame drops, a data-port kill mid-run), exactly like
//! the chaos tests — but with the `obs` feature recording causal spans
//! on every computing thread. After the run the accumulated spans are
//! drained and written as one JSONL file per `(machine, rank)`, plus a
//! `metrics.json` snapshot:
//!
//! ```text
//! cargo run --features obs --example obs_trace -- target/obs-trace [seed]
//! pardis-trace merge target/obs-trace/spans-*.jsonl
//! ```
//!
//! Every fault decision is a pure function of the seed, so two runs of
//! the same seed produce bit-for-bit identical merged timelines.

use pardis_cdr::{CdrReader, Decode};
use pardis_core::prelude::*;
use pardis_net::FaultPlan;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

const OBJ_TYPE: &str = "IDL:chaos_sum:1.0";
const INVOCATIONS: usize = 20;
const KILL_AT: usize = 10;
const LEN: usize = 64;
const THREADS: usize = 2;
const DEFAULT_SEED: u64 = 0x5EED_CAFE;

struct SumServant;

impl Servant for SumServant {
    fn type_id(&self) -> &str {
        OBJ_TYPE
    }

    fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()> {
        let arr: pardis_core::DSequence<f64> = req.dist_seq(0)?;
        let local: f64 = arr.local_data().iter().sum();
        let total = req
            .ctx()
            .rts()
            .allreduce_f64(&[local], pardis_rts::ReduceOp::Sum)
            .map_err(PardisError::from)?[0];
        req.set_result(|w| {
            w.put_f64(total);
            Ok(())
        })
    }
}

/// One seeded run; the spans it recorded stay in the process-global
/// recorder until drained.
fn run_once(seed: u64) -> usize {
    let world = World::new(LinkSpec::unlimited());

    let server_opts = OrbOptions {
        frag_timeout: Some(std::time::Duration::from_millis(80)),
        ..Default::default()
    };
    let server = world.spawn_machine_with("server", THREADS, server_opts, |ctx| {
        ctx.register("example", Box::new(SumServant), vec![])
            .unwrap();
        ctx.serve_forever().unwrap();
    });

    let client = world.spawn_machine("client", THREADS, move |ctx| {
        let mut proxy = ctx
            .spmd_bind("example", Some("server"), Some(OBJ_TYPE))
            .unwrap();
        proxy.set_mode(TransferMode::MultiPort).unwrap();
        proxy.set_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: std::time::Duration::from_millis(2),
            ..RetryPolicy::default()
        });
        proxy.set_deadline(Some(std::time::Duration::from_millis(150)));

        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            ctx.host()
                .fabric()
                .install_faults(FaultPlan::new(seed).with_frame_drop(20_000));
        }
        ctx.rts().barrier();

        let mut completed = 0usize;
        for i in 0..INVOCATIONS {
            if i == KILL_AT {
                // Kill a server data port between invocations: every
                // multi-port request from here on probes, notices, and
                // falls back to centralized transfer.
                ctx.rts().barrier();
                if ctx.is_comm_thread() {
                    let o = proxy.objref();
                    let dead = *o.data_ports.last().unwrap();
                    ctx.host().fabric().kill_port(o.host, dead);
                }
                ctx.rts().barrier();
            }

            let mut seq = DSequence::<f64>::new(ctx.rts(), LEN, None).unwrap();
            let off = seq.local_range().start;
            for (j, x) in seq.local_data_mut().iter_mut().enumerate() {
                *x = i as f64 + (off + j) as f64 * 0.25;
            }
            let mut spec = RequestSpec::simple("sum").idempotent();
            spec.dist_args = vec![proxy.dist_arg("sum", 0, ArgDir::In, &seq).unwrap()];

            if let Ok(reply) = proxy.invoke(&ctx, spec) {
                let mut r = CdrReader::new(&reply.nondist_body, ctx.endian());
                let _ = f64::decode(&mut r).unwrap();
                completed += 1;
            }
        }

        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            ctx.host().fabric().clear_faults();
            ctx.send_shutdown(proxy.objref()).unwrap();
        }
        completed
    });

    let completed: usize = client.join().iter().sum();
    server.join();
    completed
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("target/obs-trace");
    let seed: u64 = args
        .get(2)
        .map(|s| s.parse().expect("seed must be an unsigned integer"))
        .unwrap_or(DEFAULT_SEED);

    let completed = run_once(seed);

    std::fs::create_dir_all(out_dir).expect("create output directory");

    // One JSONL file per (machine, rank).
    let mut per_rank: BTreeMap<(String, usize), Vec<String>> = BTreeMap::new();
    let spans = pardis_obs::drain_all();
    let total = spans.len();
    for s in &spans {
        per_rank
            .entry((s.machine.clone(), s.rank))
            .or_default()
            .push(s.to_json_line());
    }
    for ((machine, rank), lines) in &per_rank {
        let path = Path::new(out_dir).join(format!("spans-{machine}-{rank}.jsonl"));
        let mut f = std::fs::File::create(&path).expect("create span log");
        for line in lines {
            writeln!(f, "{line}").expect("write span log");
        }
    }

    let metrics = pardis_obs::snapshot_json();
    std::fs::write(Path::new(out_dir).join("metrics.json"), &metrics)
        .expect("write metrics snapshot");

    println!(
        "seed {seed:#x}: {completed}/{} invocations completed ({THREADS} client threads)",
        INVOCATIONS * THREADS
    );
    println!(
        "wrote {total} spans across {} rank logs + metrics.json to {out_dir}",
        per_rank.len()
    );
}
