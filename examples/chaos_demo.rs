//! Fault-injection demo: a parallel client invokes a parallel SPMD
//! object while the fabric drops frames from a seeded [`FaultPlan`] and
//! one server data port dies mid-run. Deadlines, retry, and the
//! multi-port → centralized fallback carry the run to completion.
//!
//! The whole fault schedule is a pure function of the seed — run this
//! twice with the same seed and the summary line is identical.
//!
//! ```text
//! cargo run --release --example chaos_demo [seed] [drop_ppm] [max_attempts]
//! ```

use pardis::pardis_net::FaultPlan;
use pardis::pardis_rts::ReduceOp;
use pardis::prelude::*;

const OBJ_TYPE: &str = "IDL:chaos_sum:1.0";
const INVOCATIONS: usize = 40;
const KILL_AT: usize = 20;
const LEN: usize = 64;

struct SumServant;

impl Servant for SumServant {
    fn type_id(&self) -> &str {
        OBJ_TYPE
    }

    fn dispatch(&mut self, req: &mut ServerRequest<'_>) -> PardisResult<()> {
        match req.operation() {
            "sum" => {
                let arr: DSequence<f64> = req.dist_seq(0)?;
                let local: f64 = arr.local_data().iter().sum();
                let total = req
                    .ctx()
                    .rts()
                    .allreduce_f64(&[local], ReduceOp::Sum)
                    .map_err(PardisError::from)?[0];
                req.set_result(|w| {
                    w.put_f64(total);
                    Ok(())
                })
            }
            other => Err(PardisError::BadOperation(other.to_string())),
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
        .unwrap_or(0x5EED);
    let drop_ppm: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let max_attempts: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let world = World::new(LinkSpec::unlimited());
    let server_opts = OrbOptions {
        frag_timeout: Some(std::time::Duration::from_millis(80)),
        ..Default::default()
    };
    let server = world.spawn_machine_with("server", 2, server_opts, |ctx| {
        ctx.register("example", Box::new(SumServant), vec![])
            .unwrap();
        ctx.serve_forever().unwrap();
        ctx.serve_decode_errors()
    });

    let client = world.spawn_machine("client", 2, move |ctx| {
        let mut proxy = ctx
            .spmd_bind("example", Some("server"), Some(OBJ_TYPE))
            .unwrap();
        proxy.set_mode(TransferMode::MultiPort).unwrap();
        proxy.set_retry(RetryPolicy {
            max_attempts,
            base_backoff: std::time::Duration::from_millis(2),
            ..RetryPolicy::default()
        });
        proxy.set_deadline(Some(std::time::Duration::from_millis(150)));

        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            ctx.host()
                .fabric()
                .install_faults(FaultPlan::new(seed).with_frame_drop(drop_ppm));
        }
        ctx.rts().barrier();

        let mut succeeded = 0usize;
        for i in 0..INVOCATIONS {
            if i == KILL_AT {
                ctx.rts().barrier();
                if ctx.is_comm_thread() {
                    let o = proxy.objref();
                    let dead = *o.data_ports.last().unwrap();
                    ctx.host().fabric().kill_port(o.host, dead);
                    println!("-- killed server data port {dead} before invocation {i}");
                }
                ctx.rts().barrier();
            }

            let mut seq = DSequence::<f64>::new(ctx.rts(), LEN, None).unwrap();
            let off = seq.local_range().start;
            for (j, x) in seq.local_data_mut().iter_mut().enumerate() {
                *x = i as f64 + (off + j) as f64 * 0.25;
            }
            let mut spec = RequestSpec::simple("sum").idempotent();
            spec.dist_args = vec![proxy.dist_arg("sum", 0, ArgDir::In, &seq).unwrap()];

            match proxy.invoke(&ctx, spec) {
                Ok(_) => succeeded += 1,
                Err(e) => {
                    if ctx.is_comm_thread() {
                        println!("   invocation {i} failed: {e}");
                    }
                }
            }
        }

        ctx.rts().barrier();
        if ctx.is_comm_thread() {
            let fabric = ctx.host().fabric();
            let s = fabric.fault_stats().unwrap();
            fabric.clear_faults();
            ctx.send_shutdown(proxy.objref()).unwrap();
            println!(
                "seed=0x{seed:X} drop_ppm={drop_ppm}: {succeeded}/{INVOCATIONS} ok, \
                 retries={}, fallbacks={}, frames_dropped={}, dead_port_hits={}",
                proxy.retry_count(),
                proxy.fallback_count(),
                s.frames_dropped,
                s.dead_port_hits,
            );
        }
    });

    client.join();
    server.join();
}
