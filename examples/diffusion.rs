//! The paper's evaluation scenario as a runnable program: a parallel
//! client on one machine invoking `diffusion` on an SPMD object on
//! another, over a single rate-limited link, comparing the **centralized**
//! (§3.2) and **multi-port** (§3.3) argument transfer methods.
//!
//! ```text
//! cargo run --release --example diffusion -- [clients] [servers] [log2_len] [steps]
//! e.g.  cargo run --release --example diffusion -- 4 8 17 4
//! ```
//!
//! With the default ATM-like link the multi-port method should win for
//! large sequences, exactly as the paper's figure 4 shows.

use pardis::apps::diffusion::{hot_spot, reference_diffusion, DiffusionServant};
use pardis::prelude::*;
use pardis::stubs::diffusion::{diff_objectProxy, diff_objectSkeleton};
use std::time::Instant;

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let clients = arg(1, 4);
    let servers = arg(2, 8);
    let log2_len = arg(3, 15);
    let steps = arg(4, 2);
    let len = 1usize << log2_len;

    // A faster-than-ATM link so the example completes quickly; scale
    // with PARDIS_LINK_SCALE=1.0 for the authentic 17 MB/s experience.
    let scale: f64 = std::env::var("PARDIS_LINK_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8.0);
    let link = LinkSpec::atm_155().scaled(scale);

    println!(
        "diffusion example: c={clients} client threads, n={servers} server threads, \
         2^{log2_len} = {len} doubles, {steps} steps, link ≈ {:.1} MB/s",
        link.bandwidth.unwrap_or(f64::INFINITY) / 1e6
    );

    let world = World::new(link);

    let server = world.spawn_machine("challenge", servers, |ctx| {
        diff_objectSkeleton::register(&ctx, "example", DiffusionServant::new(), vec![])
            .expect("register");
        ctx.serve_forever().expect("serve");
    });

    let client = world.spawn_machine("onyx", clients, move |ctx| {
        let mut diff =
            diff_objectProxy::_spmd_bind(&ctx, "example", Some("challenge")).expect("bind");

        // Sequential reference for validation.
        let golden = {
            let mut g = hot_spot(len);
            reference_diffusion(&mut g, steps);
            g
        };

        for mode in [TransferMode::Centralized, TransferMode::MultiPort] {
            diff._set_transfer_mode(mode).expect("set mode");

            let global = hot_spot(len);
            let mut arr = DSequence::<f64>::new(ctx.rts(), len, None).expect("dseq");
            let range = arr.local_range();
            arr.local_data_mut().copy_from_slice(&global[range.clone()]);

            ctx.rts().barrier();
            let t0 = Instant::now();
            diff.diffusion(&ctx, steps as i32, &mut arr)
                .expect("invoke");
            let elapsed = t0.elapsed();

            // Validate this thread's slice against the reference.
            for (got, want) in arr.local_data().iter().zip(&golden[range]) {
                assert!((got - want).abs() < 1e-9, "mode {mode:?} mismatch");
            }

            // Report the max across threads from the communicating one.
            let max_s = ctx
                .rts()
                .allreduce_f64(&[elapsed.as_secs_f64()], pardis_rts::ReduceOp::Max)
                .expect("reduce")[0];
            if ctx.is_comm_thread() {
                let mb = (len * 8) as f64 / 1e6;
                println!(
                    "  {mode:<12?}  T = {:8.2} ms   effective {:6.2} MB/s (in+out {:.1} MB)",
                    max_s * 1e3,
                    2.0 * mb / max_s, // inout: data crosses twice
                    2.0 * mb
                );
            }
        }
        if ctx.is_comm_thread() {
            ctx.send_shutdown(diff.proxy.objref()).expect("shutdown");
        }
    });

    client.join();
    server.join();
    println!("results validated against the sequential reference");
}
