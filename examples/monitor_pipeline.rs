//! A multi-application scenario with a monitoring unit (§2.1: "more
//! complex interactions composed of multiple parallel applications, as
//! well as units visualizing or otherwise monitoring their progress"),
//! exercising oneway operations and futures:
//!
//! * `vectors` — a 4-thread SPMD vector service,
//! * `monitor` — a 1-thread visualization/monitoring unit,
//! * a 2-thread client running a little iterative solver that offloads
//!   dot products to the service with **non-blocking invocations**,
//!   overlapping them with local work, and streams progress to the
//!   monitor with **oneway** reports.
//!
//! Run with: `cargo run --example monitor_pipeline`

use pardis::apps::vector::{MonitorServant, VectorServant};
use pardis::prelude::*;
use pardis::stubs::simulation::pardis_demo::{
    monitorProxy, monitorSkeleton, vector_serviceProxy, vector_serviceSkeleton,
};

fn main() {
    let world = World::new(LinkSpec::unlimited());

    let svc = world.spawn_machine("vectors", 4, |ctx| {
        vector_serviceSkeleton::register(&ctx, "vectors", VectorServant::new(), vec![])
            .expect("register");
        ctx.serve_forever().expect("serve");
    });

    let monitor = world.spawn_machine("monitor", 1, |ctx| {
        monitorSkeleton::register(&ctx, "monitor", MonitorServant::new(), vec![])
            .expect("register");
        ctx.serve_forever().expect("serve");
    });

    let client = world.spawn_machine("solver", 2, |ctx| {
        let vectors = vector_serviceProxy::_spmd_bind(&ctx, "vectors", None).expect("bind svc");
        // The monitor is driven from the communicating thread only,
        // through a per-thread binding.
        let mon = if ctx.is_comm_thread() {
            Some(monitorProxy::_bind(&ctx, "monitor", None).expect("bind monitor"))
        } else {
            None
        };

        let len = 4096;
        let mut v = DSequence::<f64>::new(ctx.rts(), len, None).expect("dseq");
        let off = v.local_range().start;
        for (i, x) in v.local_data_mut().iter_mut().enumerate() {
            *x = 1.0 / (1.0 + (off + i) as f64);
        }

        let mut norm2 = 0.0;
        for iter in 0..5 {
            // Kick off the dot product without blocking…
            let fut = vectors.dot_nb(&ctx, &v, &v).expect("dot_nb");
            // …overlap with local work (the paper's motivation for
            // futures)…
            let local_work: f64 = v.local_data().iter().map(|x| x.abs()).sum();
            // …then collect the remote result.
            norm2 = fut.wait().expect("dot future").ret;

            // Rescale the vector remotely (collective inout).
            let mut v2 = v.clone();
            vectors
                .scale(&ctx, 1.0 / norm2.sqrt(), &mut v2)
                .expect("scale");
            v = v2;

            // Stream progress; oneway, so this never blocks the solver.
            if let Some(mon) = &mon {
                mon.report(&ctx, &format!("iter-{iter}"), norm2)
                    .expect("report");
                let _ = local_work;
            }
        }

        // After normalization the norm should converge to 1.
        if ctx.is_comm_thread() {
            println!("final ||v||^2 = {norm2:.6}");
            let mon = mon.expect("comm thread bound the monitor");
            // oneway reports are asynchronous: poll the readonly
            // attribute until all five have landed.
            loop {
                let n = mon._get_reports_received(&ctx).expect("attr");
                if n >= 5 {
                    println!("monitor received {n} progress reports");
                    break;
                }
                std::thread::yield_now();
            }
            ctx.send_shutdown(vectors.proxy.objref())
                .expect("shutdown svc");
            ctx.send_shutdown(mon.proxy.objref())
                .expect("shutdown monitor");
        }
    });

    client.join();
    svc.join();
    monitor.join();
    println!("monitor_pipeline OK");
}
