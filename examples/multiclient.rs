//! Per-thread bindings: "This kind of interaction can be useful to
//! parallel clients which want to interact in parallel with multiple
//! distributed objects" (§2.1).
//!
//! Three vector-service objects run on three machines; a 3-thread
//! client uses non-collective `_bind` so each of its computing threads
//! drives a *different* object concurrently through the `_nd`
//! (non-distributed) argument mapping.
//!
//! Run with: `cargo run --example multiclient`

use pardis::apps::vector::VectorServant;
use pardis::prelude::*;
use pardis::stubs::simulation::pardis_demo::{vector_serviceProxy, vector_serviceSkeleton};

fn main() {
    let world = World::new(LinkSpec::unlimited());

    // Three independent SPMD vector services, various widths.
    let mut servers = Vec::new();
    for (name, threads) in [("svc-a", 2), ("svc-b", 3), ("svc-c", 4)] {
        servers.push(world.spawn_machine(name, threads, move |ctx| {
            vector_serviceSkeleton::register(&ctx, "vectors", VectorServant::new(), vec![])
                .expect("register");
            ctx.serve_forever().expect("serve");
        }));
    }

    // One parallel client; thread i talks to service i.
    let hosts = ["svc-a", "svc-b", "svc-c"];
    let client = world.spawn_machine("client", 3, move |ctx| {
        let host = hosts[ctx.rank()];
        // Non-collective bind: one binding *per thread* (paper §2.1).
        let svc = vector_serviceProxy::_bind(&ctx, "vectors", Some(host)).expect("bind");

        let n = 1000 * (ctx.rank() + 1);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();

        // dot(x, x) — the _nd mapping ships the whole vector from this
        // one thread; the server still sees it blockwise-distributed.
        let dot = svc.dot_nd(&ctx, &x, &x).expect("dot");
        let want: f64 = x.iter().map(|v| v * v).sum();
        assert_eq!(dot, want);

        // scale in place through an inout argument.
        let mut y = x.clone();
        svc.scale_nd(&ctx, 2.0, &mut y).expect("scale");
        assert!(y.iter().zip(&x).all(|(a, b)| *a == 2.0 * b));

        // Distributed statistics.
        let stats = svc.stats_nd(&ctx, &y).expect("stats");
        println!(
            "thread {} -> {host}: n={n}, dot={dot:.0}, stats: min={} max={} mean={:.1}",
            ctx.rank(),
            stats.min,
            stats.max,
            stats.mean
        );

        // Every thread shuts down its own service.
        ctx.send_shutdown(svc.proxy.objref()).expect("shutdown");
    });

    client.join();
    for s in servers {
        s.join();
    }
    println!("multiclient OK: three objects driven concurrently by one parallel client");
}
