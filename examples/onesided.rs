//! The paper's future-work item, implemented: the **one-sided run-time
//! system interface** (§2.3) and asynchronous element access to
//! distributed sequences (§2.2).
//!
//! With the message-passing interface, `operator[]` on a distributed
//! sequence must be called collectively by all computing threads. After
//! [`DSequence::expose`], any single thread reads or writes any element
//! without the owner participating — the global-pointer style of Nexus
//! and ABC++ the paper points to.
//!
//! The demo runs an irregular workload that message-passing handles
//! awkwardly: a single "master" thread performs random accesses over
//! the whole distributed array while the other threads do nothing but
//! own their data.
//!
//! Run with: `cargo run --example onesided`

use pardis::prelude::*;
use pardis_core::dseq::ExposedSeq;
use pardis_rts::Domain;

fn main() {
    let len = 1 << 10;
    let threads = 4;

    let results = Domain::run(threads, move |ep| {
        // Build a blockwise-distributed sequence filled with its global
        // indices.
        let mut seq = DSequence::<f64>::new(&ep, len, None).expect("dseq");
        let off = seq.local_range().start;
        for (i, x) in seq.local_data_mut().iter_mut().enumerate() {
            *x = (off + i) as f64;
        }

        // Enter a one-sided exposure epoch (collective).
        let ex: ExposedSeq = seq.expose(&ep).expect("expose");

        // Non-collective phase: only thread 0 works; the owners of the
        // data do not participate in any of these accesses.
        let mut checksum = 0.0;
        if ep.rank() == 0 {
            // A deterministic "random" walk over the whole array.
            let mut idx = 7usize;
            for _ in 0..500 {
                checksum += ex.get(idx).expect("one-sided get");
                idx = (idx * 31 + 17) % len;
            }
            // Scatter a few updates, again one-sided.
            for k in 0..threads {
                let target_idx = k * (len / threads); // first element of each owner
                ex.put(target_idx, -1.0).expect("one-sided put");
            }
            // Bulk read spanning several owners.
            let mid = ex.get_range(len / 2 - 8, 16).expect("one-sided range");
            assert_eq!(mid.len(), 16);
        }

        // Epoch boundary: updates become visible everywhere.
        ex.fence(&ep);
        let seq = ex.into_seq(&ep).expect("recover sequence");
        assert_eq!(seq.local_data()[0], -1.0, "owner sees the remote put");
        checksum
    });

    println!(
        "one-sided demo: master thread walked {len}-element distributed array, checksum = {}",
        results[0]
    );
    println!("owners observed remote updates after the fence");
    println!("onesided OK");
}
