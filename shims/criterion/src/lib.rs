//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `Throughput`, `BenchmarkId`, `iter`, `iter_custom`) and measures
//! with plain wall-clock timing: a short calibration pass picks an
//! iteration count per sample, then the median over samples is
//! reported with mean/min/max and derived throughput. No statistics
//! engine, no HTML reports — numbers on stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark driver; one per process, handed to each group function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 50,
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut g = self.benchmark_group(name.clone());
        g.bench_function_inner(&name, f);
        g.finish();
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Work-per-iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let id = id.into_benchmark_id();
        self.bench_function_inner(&id.id, f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function_inner(&id.id, |b| f(b, input));
    }

    pub fn finish(self) {}

    fn bench_function_inner(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        // Calibrate: grow the per-sample iteration count until one
        // sample takes ~5 ms (or we hit a cap for very slow bodies).
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed / iters as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];

        let full = format!("{}/{}", self.name, id);
        let rate = self.throughput.map(|t| {
            let per_sec = |units: u64| units as f64 / median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => format!(" {:>10.1} MiB/s", per_sec(n) / (1 << 20) as f64),
                Throughput::Elements(n) => format!(" {:>10.0} elem/s", per_sec(n)),
            }
        });
        println!(
            "bench {full:<40} median {median:>12?} (min {min:?}, max {max:?}, {iters} iters x {} samples){}",
            samples.len(),
            rate.unwrap_or_default(),
        );
    }
}

/// Conversion so `bench_function` accepts both `&str` and `BenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// The closure runs `iters` iterations itself and reports the
    /// total elapsed time.
    pub fn iter_custom(&mut self, f: impl FnOnce(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

/// Re-export mirroring the real crate; benches mostly use
/// `std::hint::black_box` directly.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
