//! Offline stand-in for the `bytes` crate.
//!
//! Provides the one type this workspace uses: [`Bytes`], an immutable,
//! reference-counted byte slice whose `clone` and `slice` are O(1).

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty byte slice.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (copied into shared storage; the real crate
    /// borrows it, but nothing here depends on that distinction).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy a slice into new shared storage.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// An O(1) sub-view of this view.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range out of bounds: {begin}..{end} of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy the view out into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_clone_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2), Bytes::copy_from_slice(&[2, 3]));
        assert_eq!(b.len(), 5);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "range out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }
}
