//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std primitives and strips lock poisoning, which is the
//! only API difference this workspace relies on (`lock()` / `read()` /
//! `write()` return guards directly, not `Result`s).

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Instant;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard wrapping the std guard in an `Option` so [`Condvar`] can
/// temporarily take it back for `wait_timeout` without unsafe code.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard active")
    }
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable matching parking_lot's `&mut guard` API.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard active");
        let back = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(back);
    }

    /// Wait until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard active");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (back, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(back);
        WaitTimeoutResult(res.timed_out())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
