//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace uses:
//! the [`proptest!`] macro, `any::<T>()`, integer-range and
//! character-class string strategies, `prop::collection::vec`,
//! `Just`, `prop_oneof!`, `prop_filter`/`prop_map`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, on purpose:
//! - **Deterministic seeding.** Every test's RNG seed is derived from
//!   the test's name, so a failure reproduces by simply re-running the
//!   test — no regression files, no environment variables.
//! - **No shrinking.** On failure the harness reports the case index
//!   and the generated inputs instead of minimizing them.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

/// Namespace mirror so `prop::collection::vec(..)` works as in the
/// real crate.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let reporter = $crate::test_runner::CaseReporter::new(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $(reporter.record(stringify!($arg), &$arg);)+
                    $body
                    reporter.passed();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}
