//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// Something that can generate values of one type from an RNG.
pub trait Strategy: Sized {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Keep only values satisfying `pred`; gives up (panics) after
    /// 10 000 consecutive rejections.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Transform generated values.
    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase, for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among erased strategies (the `prop_oneof!` backend).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 candidates", self.reason);
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `any::<T>()` — the full-domain strategy for primitives.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitives that `any` can generate.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix special values with raw bit patterns, like the real crate.
        match rng.below(10) {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => -1.0,
            4 => f64::NAN,
            5 => f64::INFINITY,
            6 => f64::NEG_INFINITY,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as i128) + off as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Float ranges sample uniformly over `[start, end)` (53 random
/// mantissa bits scaled into the interval).
impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Collection sizes accepted by [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// `prop::collection::vec` — vectors of generated elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Tuples of strategies generate tuples of values (component-wise,
/// left to right), mirroring upstream proptest.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> (A::Value, B::Value) {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> (A::Value, B::Value, C::Value) {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// String literals act as character-class patterns: a sequence of
/// `[class]{m,n}` (or single chars / fixed `{m}` counts), e.g.
/// `"[ -~]{0,64}"` or `"[a-z_]{1,12}"`. This is the only regex subset
/// the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let items = compile_pattern(self);
        let mut out = String::new();
        for (set, min, max) in &items {
            let n = *min + rng.below((*max - *min) as u64 + 1) as usize;
            for _ in 0..n {
                out.push(set.sample(rng));
            }
        }
        out
    }
}

struct CharSet {
    ranges: Vec<(char, char)>, // inclusive
}

impl CharSet {
    fn single(c: char) -> CharSet {
        CharSet {
            ranges: vec![(c, c)],
        }
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        let total: u64 = self
            .ranges
            .iter()
            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
            .sum();
        let mut r = rng.below(total);
        for &(lo, hi) in &self.ranges {
            let span = hi as u64 - lo as u64 + 1;
            if r < span {
                return char::from_u32(lo as u32 + r as u32).expect("valid char in range");
            }
            r -= span;
        }
        unreachable!("sample within total weight")
    }
}

fn compile_pattern(pat: &str) -> Vec<(CharSet, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut items = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pat:?}"));
            let mut ranges = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    ranges.push((chars[j], chars[j + 2]));
                    j += 3;
                } else {
                    ranges.push((chars[j], chars[j]));
                    j += 1;
                }
            }
            assert!(!ranges.is_empty(), "empty character class in {pat:?}");
            i = close + 1;
            CharSet { ranges }
        } else {
            let c = chars[i];
            i += 1;
            CharSet::single(c)
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("pattern min count"),
                    hi.trim().parse().expect("pattern max count"),
                ),
                None => {
                    let n = body.trim().parse().expect("pattern count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier in {pat:?}");
        items.push((set, min, max));
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_generates_within_class() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..200 {
            let s = "[a-z_]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            let p = "[ -~]{0,64}".generate(&mut rng);
            assert!(p.len() <= 64);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_vecs_are_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..500 {
            let x = (5usize..17).generate(&mut rng);
            assert!((5..17).contains(&x));
            let y = (-40i64..40).generate(&mut rng);
            assert!((-40..40).contains(&y));
            let v = vec(0u32..10, 1..16).generate(&mut rng);
            assert!((1..16).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = TestRng::from_seed(seed);
            (0..32).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(gen(123), gen(123));
        assert_ne!(gen(123), gen(124));
    }
}
